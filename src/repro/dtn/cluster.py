"""The §IV-E data-motion driver: an 8-node DTN cluster running 32 rsync
streams per node (256-way parallel transfer), plus the sequential baseline.

Structure mirrors the paper exactly: ``find`` produces the file list, the
Listing-1 driver shards it cyclically across the DTN nodes, and each node
runs one GNU Parallel instance with ``-j32 -X`` — 32 rsync processes, each
handed a *batch* of files (``-X`` argument batching amortizes rsync's
startup across many files).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import SimMachine
from repro.driver.distribute import shard_cyclic
from repro.errors import ReproError
from repro.sim.resources import FairShareLink
from repro.storage.filesystem import FileEntry, Filesystem
from repro.storage.rsync import RsyncCostModel, RsyncStats, rsync_process

__all__ = ["DataMotionReport", "run_dtn_transfer", "run_sequential_transfer"]


@dataclass
class DataMotionReport:
    """Outcome of a data-motion run."""

    n_files: int
    total_bytes: int
    duration: float
    n_nodes: int
    streams_per_node: int
    per_node_bytes: list[int] = field(default_factory=list)
    rsync_stats: list[RsyncStats] = field(default_factory=list)

    @property
    def aggregate_mbit_s(self) -> float:
        """Aggregate throughput, megabits/s (the paper's unit)."""
        return self.total_bytes * 8 / 1e6 / self.duration if self.duration > 0 else 0.0

    @property
    def per_node_mbit_s(self) -> float:
        """Mean per-node throughput, Mb/s (paper: 2,385 Mb/s per node)."""
        return self.aggregate_mbit_s / self.n_nodes if self.n_nodes else 0.0


def _batches(items: list, n_batches: int) -> list[list]:
    """Split ``items`` into ``n_batches`` round-robin batches (GNU Parallel
    ``-X`` distributes arguments across the slot pool)."""
    out: list[list] = [[] for _ in range(n_batches)]
    for i, item in enumerate(items):
        out[i % n_batches].append(item)
    return [b for b in out if b]


def run_dtn_transfer(
    machine: SimMachine,
    src: Filesystem,
    dst: Filesystem,
    files: list[FileEntry],
    n_nodes: int = 8,
    streams_per_node: int = 32,
    cost: RsyncCostModel = RsyncCostModel(),
) -> DataMotionReport:
    """The 256-process parallel transfer; runs the machine's env to completion.

    Each DTN node gets a cyclic shard of the file list; within a node the
    shard is split into ``streams_per_node`` rsync batches that run
    concurrently, sharing the node's NIC.
    """
    if n_nodes < 1 or streams_per_node < 1:
        raise ReproError("n_nodes and streams_per_node must be >= 1")
    env = machine.env
    report = DataMotionReport(
        n_files=len(files),
        total_bytes=sum(f.size for f in files),
        duration=0.0,
        n_nodes=n_nodes,
        streams_per_node=streams_per_node,
    )

    def node_process(nodeid: int):
        shard = list(shard_cyclic(files, n_nodes, nodeid))
        report.per_node_bytes.append(sum(f.size for f in shard))
        if not shard:
            return
        node = machine.node(nodeid)
        nic = FairShareLink(env, rate=node.spec.nic_bw, name=f"{node.name}:nic")
        streams = [
            env.process(
                rsync_process(env, src, dst, batch, cost=cost, nic=nic),
                name=f"rsync@{node.name}",
            )
            for batch in _batches(shard, streams_per_node)
        ]
        stats = yield env.all_of(streams)
        report.rsync_stats.extend(stats.values())

    start = env.now
    procs = [env.process(node_process(i), name=f"dtn{i}") for i in range(n_nodes)]
    env.run(until=env.all_of(procs))
    report.duration = env.now - start
    return report


def run_sequential_transfer(
    machine: SimMachine,
    src: Filesystem,
    dst: Filesystem,
    files: list[FileEntry],
    cost: RsyncCostModel = RsyncCostModel(),
) -> DataMotionReport:
    """The baseline: one rsync stream over the whole file list."""
    env = machine.env
    node = machine.node(0)
    nic = FairShareLink(env, rate=node.spec.nic_bw, name=f"{node.name}:nic")
    start = env.now
    p = env.process(
        rsync_process(env, src, dst, files, cost=cost, nic=nic), name="rsync-seq"
    )
    stats = env.run(until=p)
    return DataMotionReport(
        n_files=len(files),
        total_bytes=sum(f.size for f in files),
        duration=env.now - start,
        n_nodes=1,
        streams_per_node=1,
        per_node_bytes=[sum(f.size for f in files)],
        rsync_stats=[stats],
    )
