"""DTN-cluster parallel data motion (§IV-E)."""

from repro.dtn.cluster import (
    DataMotionReport,
    run_dtn_transfer,
    run_sequential_transfer,
)

__all__ = ["DataMotionReport", "run_dtn_transfer", "run_sequential_transfer"]
