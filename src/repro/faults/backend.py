"""``FaultyBackend`` — wrap any backend with deterministic fault injection.

The decorator sits between the scheduler and a real backend, consulting a
:class:`~repro.faults.plan.FaultPlan` for every ``(seq, attempt)``.  Jobs
the plan does not target pass straight through; targeted jobs get a
synthetic failure result (crash / signal), wedge until the effective
timeout (hang), start late (slow), or fail transiently then pass through
(flaky).  Because the plan is a pure function of the seed, a chaos run's
retry and success counts are identical on every invocation.

The injected failures are *results*, never exceptions, exactly as the
:class:`~repro.core.backends.base.Backend` contract demands, so the
scheduler's retry / halt / joblog machinery sees them as indistinguishable
from real-world failures — which is the point.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options
from repro.faults.plan import (
    DEFAULT_HANG_S,
    TRANSPORT_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = ["FaultyBackend"]


class FaultyBackend(Backend):
    """Decorator injecting :class:`FaultPlan` faults around ``inner``."""

    def __init__(self, inner: Backend, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.host = getattr(inner, "host", "local")
        self._cancelled = threading.Event()
        self._lock = threading.Lock()
        self._injected: Counter = Counter()

    # -- Backend interface -------------------------------------------------
    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        spec = self.plan.fault_for(job.seq, job.attempt)
        if spec is None or spec.kind in TRANSPORT_FAULT_KINDS:
            # Transport faults fire inside a FaultyTransport (host-level);
            # at the backend layer they are not ours to inject.
            return self.inner.run_job(job, slot, options, timeout=timeout)
        with self._lock:
            self._injected[spec.kind] += 1
        if self._tracer is not None:
            # Chaos runs are traceable: every injected fault is a point
            # event, so a trace shows *why* an attempt failed.
            self._tracer.instant(
                "fault_injected", seq=job.seq, slot=slot,
                kind=spec.kind, attempt=job.attempt,
            )
        start = time.time()

        if spec.kind == "slow":
            # Slow start: dead time before the real job; the recorded
            # runtime includes it, as a straggler's would.
            self._interruptible_sleep(spec.delay)
            result = self.inner.run_job(job, slot, options, timeout=timeout)
            return _restamp_start(result, start)

        if spec.kind == "hang":
            limit = timeout if timeout is not None else (spec.delay or DEFAULT_HANG_S)
            cancelled = self._interruptible_sleep(limit)
            state = JobState.KILLED if cancelled else JobState.TIMED_OUT
            return self._synthetic(
                job, slot, start, exit_code=-1, state=state,
                stderr=f"fault injection: hung for {limit:.4g}s "
                       f"(attempt {job.attempt})",
            )

        if spec.kind == "signal":
            # Negative exit code = killed by signal (subprocess convention).
            return self._synthetic(
                job, slot, start, exit_code=-spec.signal, state=JobState.FAILED,
                stderr=f"fault injection: spurious signal {spec.signal} "
                       f"(attempt {job.attempt})",
            )

        # crash / flaky: exit nonzero without running the real job.
        return self._synthetic(
            job, slot, start, exit_code=spec.exit_code, state=JobState.FAILED,
            stderr=f"fault injection: {spec.kind} exit {spec.exit_code} "
                   f"(attempt {job.attempt})",
        )

    def prepare_run(self, options: Options) -> None:
        # Per-run setup (env caches, pools) must reach the real backend
        # even when the fault wrapper sits in between.
        prepare = getattr(self.inner, "prepare_run", None)
        if prepare is not None:
            prepare(options)

    def bind_tracer(self, tracer) -> None:
        # Both layers observe: the wrapper reports injections, the inner
        # backend reports real process spawns/kills.
        super().bind_tracer(tracer)
        bind = getattr(self.inner, "bind_tracer", None)
        if bind is not None:
            bind(tracer)

    def intern_template(self, template, options: Options) -> None:
        # Template interning reaches the real (sharded) backend; the
        # wrapper itself renders nothing.
        intern = getattr(self.inner, "intern_template", None)
        if intern is not None:
            intern(template, options)

    def control_plane_stats(self) -> dict:
        stats = getattr(self.inner, "control_plane_stats", None)
        return stats() if stats is not None else {}

    def cancel_all(self) -> None:
        self._cancelled.set()
        self.inner.cancel_all()

    def reset(self) -> None:
        """Clear per-run cancellation state before a reuse.

        Injected-fault counters are cumulative across runs by design —
        callers hold onto the wrapper to read them afterwards.
        """
        self._cancelled = threading.Event()
        self.host = getattr(self.inner, "host", "local")

    def close(self) -> None:
        self.inner.close()

    # -- introspection -----------------------------------------------------
    @property
    def injected(self) -> dict[str, int]:
        """Faults injected so far, by kind (a snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    # -- helpers -----------------------------------------------------------
    def _interruptible_sleep(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; True when cut short by ``cancel_all``."""
        if seconds <= 0:
            return self._cancelled.is_set()
        return self._cancelled.wait(seconds)

    def _synthetic(
        self,
        job: Job,
        slot: int,
        start: float,
        exit_code: int,
        state: JobState,
        stderr: str,
    ) -> JobResult:
        end = time.time()
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=exit_code,
            stderr=stderr,
            start_time=start,
            end_time=end,
            slot=slot,
            host=self.host,
            attempt=job.attempt,
            state=state,
        )


def _restamp_start(result: JobResult, start: float) -> JobResult:
    """Rebuild a (frozen) result so its runtime covers the injected delay."""
    import dataclasses

    return dataclasses.replace(result, start_time=min(start, result.start_time))
