"""Deterministic, seedable fault plans.

The paper's core claim is that GNU Parallel survives messy extreme-scale
reality — stragglers, failed jobs re-queued via ``--retries``/``--resume``,
nodes dying mid-allocation.  A :class:`FaultPlan` makes those scenarios
*reproducible*: every fault decision is a pure function of
``(seed, seq, attempt)``, independent of thread scheduling, wall-clock
time, or dispatch order, so a chaos run with a fixed seed produces
identical retry/success counts on every invocation.

Two ways to target jobs:

* ``by_seq`` — pin an exact fault to an exact sequence number;
* ``random_faults`` — ``(probability, spec)`` pairs evaluated per job from
  a hash of ``(seed, seq)``.  The draw never consults a shared RNG stream,
  so concurrency cannot perturb which jobs are selected.

:class:`NodeFaultPlan` is the node-granularity analogue used by the
drivers (:func:`~repro.driver.local_multi.run_local_sharded`,
:func:`~repro.driver.multinode.run_multinode`): node *i* dies after
completing *k* jobs of its shard, and the driver re-runs the lost input
lines on the survivors — the paper's independent-failure-domain recovery
pattern.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "TRANSPORT_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "NodeFaultPlan",
]

#: Supported fault kinds:
#:
#: ``crash``
#:     The job exits nonzero (``exit_code``) without running.
#: ``flaky``
#:     Like ``crash`` but transient by default: fails the first
#:     ``times`` attempts (default 1), then the real job runs.
#: ``hang``
#:     The job wedges until the effective ``--timeout`` expires (or
#:     ``delay`` seconds when no timeout is set) and reports TIMED_OUT.
#: ``slow``
#:     A slow start: ``delay`` seconds of dead time before the real job.
#: ``signal``
#:     The job dies to a spurious signal (negative exit code, the
#:     ``subprocess`` convention for signal deaths).
#: ``connect_timeout``
#:     Transport-level (remote runs, via ``FaultyTransport``): the
#:     connection to the chosen host times out before the job starts; the
#:     backend re-places the job on another host.
#: ``drop``
#:     Transport-level: the connection drops *mid-job* — the command may
#:     have run, but the coordinator never hears back.
FAULT_KINDS = (
    "crash", "flaky", "hang", "slow", "signal", "connect_timeout", "drop",
)

#: The subset of :data:`FAULT_KINDS` injected at the transport layer
#: (host-level failures) rather than as job results.  A plain
#: :class:`~repro.faults.backend.FaultyBackend` passes these through
#: untouched — they only fire inside a
#: :class:`~repro.faults.transport.FaultyTransport`.
TRANSPORT_FAULT_KINDS = ("connect_timeout", "drop")

#: Hang duration when the run has no timeout and the spec no delay —
#: bounded so a plan can never wedge a test suite forever.
DEFAULT_HANG_S = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One fault behaviour, applied to whichever jobs a plan selects.

    ``times`` limits how many *attempts* of a job are affected: ``1``
    means transient-then-success, ``None`` means the kind's default
    (1 for ``flaky``, unlimited for everything else).
    """

    kind: str
    exit_code: int = 1
    signal: int = 15
    delay: float = 0.0
    times: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ("crash", "flaky") and self.exit_code == 0:
            raise ReproError(f"{self.kind} fault needs a nonzero exit_code")
        if self.signal < 1:
            raise ReproError(f"fault signal must be >= 1, got {self.signal}")
        if self.delay < 0:
            raise ReproError(f"fault delay must be >= 0, got {self.delay}")
        if self.times is not None and self.times < 1:
            raise ReproError(f"fault times must be >= 1, got {self.times}")

    @property
    def attempts_affected(self) -> float:
        """How many attempts this fault hits (``inf`` = every attempt).

        Transport faults default to transient (1) like ``flaky``: a
        permanent connect failure for one seq would otherwise survive
        every re-placement *and* every scheduler retry.
        """
        if self.times is not None:
            return float(self.times)
        transient = ("flaky",) + TRANSPORT_FAULT_KINDS
        return 1.0 if self.kind in transient else math.inf

    def to_dict(self) -> dict:
        d: dict = {"kind": self.kind}
        if self.kind in ("crash", "flaky") and self.exit_code != 1:
            d["exit_code"] = self.exit_code
        if self.kind == "signal" and self.signal != 15:
            d["signal"] = self.signal
        if self.delay:
            d["delay"] = self.delay
        if self.times is not None:
            d["times"] = self.times
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "FaultSpec":
        try:
            kind = d["kind"]
        except KeyError:
            raise ReproError(f"fault spec needs a 'kind': {dict(d)!r}") from None
        return cls(
            kind=kind,
            exit_code=int(d.get("exit_code", 1)),
            signal=int(d.get("signal", 15)),
            delay=float(d.get("delay", 0.0)),
            times=None if d.get("times") is None else int(d["times"]),
        )


def _draw(seed: int, *parts: object) -> float:
    """A uniform [0,1) draw that is a pure function of its arguments.

    ``random.Random`` seeds strings through SHA-512, so the result is
    stable across processes, platforms and ``PYTHONHASHSEED`` — the
    property that makes chaos runs byte-reproducible.
    """
    key = ":".join(str(p) for p in (seed, *parts))
    return random.Random(key).random()


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by job seq.

    Parameters
    ----------
    seed:
        Fixed seed for the probabilistic selections.
    by_seq:
        Mapping of sequence number → :class:`FaultSpec` (exact targeting).
    random_faults:
        ``(probability, spec)`` pairs; each job's selection is decided by
        a hash of ``(seed, seq, entry index)``.  The first matching entry
        wins; ``by_seq`` outranks all of them.
    """

    def __init__(
        self,
        seed: int = 0,
        by_seq: Optional[Mapping[int, FaultSpec]] = None,
        random_faults: Sequence[tuple[float, FaultSpec]] = (),
    ):
        self.seed = int(seed)
        self.by_seq: dict[int, FaultSpec] = {
            int(k): v for k, v in (by_seq or {}).items()
        }
        self.random_faults: list[tuple[float, FaultSpec]] = []
        for prob, spec in random_faults:
            prob = float(prob)
            if not 0.0 <= prob <= 1.0:
                raise ReproError(f"fault probability must be in [0, 1], got {prob}")
            if not isinstance(spec, FaultSpec):
                spec = FaultSpec.from_dict(spec)
            self.random_faults.append((prob, spec))
        for k, v in self.by_seq.items():
            if not isinstance(v, FaultSpec):
                self.by_seq[k] = FaultSpec.from_dict(v)

    # -- selection ---------------------------------------------------------
    def spec_for(self, seq: int) -> Optional[FaultSpec]:
        """The fault targeting ``seq`` (regardless of attempt), or None."""
        spec = self.by_seq.get(seq)
        if spec is not None:
            return spec
        for i, (prob, cand) in enumerate(self.random_faults):
            if prob > 0.0 and _draw(self.seed, seq, i, cand.kind) < prob:
                return cand
        return None

    def fault_for(self, seq: int, attempt: int) -> Optional[FaultSpec]:
        """The fault to inject into attempt ``attempt`` (1-based) of ``seq``."""
        spec = self.spec_for(seq)
        if spec is None or attempt > spec.attempts_affected:
            return None
        return spec

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "by_seq": {str(k): v.to_dict() for k, v in sorted(self.by_seq.items())},
            "random": [
                {"p": prob, **spec.to_dict()} for prob, spec in self.random_faults
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: Mapping) -> "FaultPlan":
        random_faults = []
        for entry in d.get("random", []):
            entry = dict(entry)
            try:
                prob = float(entry.pop("p"))
            except KeyError:
                raise ReproError(
                    f"random fault entry needs a probability 'p': {entry!r}"
                ) from None
            random_faults.append((prob, FaultSpec.from_dict(entry)))
        return cls(
            seed=int(d.get("seed", 0)),
            by_seq={
                int(k): FaultSpec.from_dict(v)
                for k, v in (d.get("by_seq") or {}).items()
            },
            random_faults=random_faults,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"bad fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ReproError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, spec: str) -> "FaultPlan":
        """Build a plan from inline JSON or a path to a JSON file.

        This is what the hidden ``--fault-plan`` CLI flag accepts.
        """
        if os.path.exists(spec):
            with open(spec, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        if not spec.lstrip().startswith("{"):
            # Looks like a path, not inline JSON: name the real problem.
            raise ReproError(f"fault plan file not found: {spec}")
        return cls.from_json(spec)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, by_seq={len(self.by_seq)} pinned, "
            f"random={len(self.random_faults)} rules)"
        )


@dataclass(frozen=True)
class NodeFaultPlan:
    """Deterministic node-death schedule for multi-instance drivers.

    ``die_after[i] = k`` kills instance/node ``i`` after it completes
    exactly ``k`` jobs of its shard (``k >= shard length`` means it
    finished first and survives).  ``death_prob`` additionally rolls a
    seeded die per node not pinned in ``die_after``; a selected node's
    death point is drawn from the same hash, so two runs with the same
    seed lose exactly the same work.
    """

    die_after: Mapping[int, int] = field(default_factory=dict)
    death_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.death_prob <= 1.0:
            raise ReproError(
                f"death_prob must be in [0, 1], got {self.death_prob}"
            )
        for node, k in self.die_after.items():
            if k < 0:
                raise ReproError(f"die_after[{node}] must be >= 0, got {k}")

    def death_point(self, node_id: int, shard_len: int) -> Optional[int]:
        """Jobs node ``node_id`` completes before dying, or None (survives)."""
        if node_id in self.die_after:
            point = self.die_after[node_id]
            return point if point < shard_len else None
        if self.death_prob > 0.0 and shard_len > 0:
            if _draw(self.seed, "node-death", node_id) < self.death_prob:
                return int(_draw(self.seed, "death-point", node_id) * shard_len)
        return None
