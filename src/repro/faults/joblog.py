"""Joblog damage injection: simulate crashes and disk corruption.

A run that dies mid-write leaves its ``--joblog`` with a torn final
record (the writer appends + flushes, so only the tail can be partial);
bit rot or a concurrent writer can garbage an interior line.  These
helpers produce both conditions deterministically so ``--resume``
recovery is testable:

* :func:`truncate_joblog` — cut the final record partway through its
  numeric fields (guaranteed unparseable), exactly what a crashed run
  leaves behind;
* :func:`corrupt_joblog` — overwrite seeded interior record(s) with
  garbage, the disk-corruption case.

Both return enough information to assert the damage, and both are pure
functions of ``(file contents, seed)``.
"""

from __future__ import annotations

import random

from repro.core.joblog import JOBLOG_HEADER
from repro.errors import ReproError

__all__ = ["truncate_joblog", "corrupt_joblog"]

#: Garbage written over corrupted records — deliberately tab-free so the
#: tolerant parser counts it as malformed rather than mis-reading fields.
GARBAGE = "\x00\x7f CORRUPTED RECORD \x7f\x00"


def truncate_joblog(path: str, seed: int = 0) -> int:
    """Tear the final joblog record as a mid-write crash would.

    The cut lands inside the record's numeric fields (before the 8th
    tab), so the torn line can never masquerade as a complete entry.
    Returns the number of bytes removed.  Raises if the log holds no
    data records to tear.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    lines = text.splitlines(keepends=True)
    data_idx = [
        i for i, line in enumerate(lines)
        if line.strip() and not line.startswith("Seq\t")
    ]
    if not data_idx:
        raise ReproError(f"joblog {path!r} has no records to truncate")
    last = data_idx[-1]
    record = lines[last].rstrip("\n")
    tabs = [i for i, ch in enumerate(record) if ch == "\t"]
    if len(tabs) < 8:
        raise ReproError(f"joblog record is already torn: {record!r}")
    cut = random.Random(f"{seed}:truncate").randrange(1, tabs[7] + 1)
    torn = record[:cut]  # no trailing newline: the write never finished
    new_text = "".join(lines[:last]) + torn
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(new_text)
    return len(text) - len(new_text)


def corrupt_joblog(path: str, seed: int = 0, n_lines: int = 1) -> list[int]:
    """Overwrite ``n_lines`` seeded interior records with garbage.

    Returns the (1-based) file line numbers that were corrupted, so a
    test can assert exactly which seqs fell out of ``completed_seqs``.
    """
    if n_lines < 1:
        raise ReproError(f"n_lines must be >= 1, got {n_lines}")
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    data_idx = [
        i for i, line in enumerate(lines)
        if line.strip() and line != JOBLOG_HEADER and not line.startswith("Seq\t")
    ]
    if not data_idx:
        raise ReproError(f"joblog {path!r} has no records to corrupt")
    rng = random.Random(f"{seed}:corrupt")
    chosen = sorted(rng.sample(data_idx, min(n_lines, len(data_idx))))
    for i in chosen:
        lines[i] = GARBAGE
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return [i + 1 for i in chosen]
