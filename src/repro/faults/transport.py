"""``FaultyTransport`` — deterministic host-level fault injection.

The transport analogue of :class:`~repro.faults.backend.FaultyBackend`:
it wraps any :class:`~repro.remote.transport.Transport` and raises
:class:`~repro.errors.TransportError` where the plan says a *host* (not a
job) fails, so the :class:`~repro.remote.backend.RemoteBackend`'s
re-placement and banning machinery is exercised by reproducible chaos:

``connect_timeout``
    Raised *before* the command runs (phase ``connect``) — the clean case:
    nothing executed, re-placement is free.
``drop``
    Raised *after* the inner transport ran the command (phase
    ``execute``) — the nasty case: the work may have happened but the
    coordinator never hears back, modelling a mid-job connection loss
    (re-placement re-executes, exactly the real-world hazard).

Each plan fault fires **once per (seq, attempt, kind)**: the first
placement of an attempt hits it, the re-placement succeeds — which is how
a *transient* network blip looks to the backend.  Permanent outages are
modelled separately with ``host_down_after``: after host *h* completes
``k`` executes, every later operation on *h* fails with a ``connect``
error until the backend bans it — the deterministic "node dies mid-run"
scenario of the chaos suite.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Mapping, Optional

from repro.errors import TransportError
from repro.faults.plan import TRANSPORT_FAULT_KINDS, FaultPlan, FaultSpec
from repro.remote.hosts import HostSpec
from repro.remote.transport import ExecResult, Transport

__all__ = ["FaultyTransport"]


class FaultyTransport(Transport):
    """Decorator injecting transport faults around ``inner``."""

    def __init__(
        self,
        inner: Transport,
        plan: Optional[FaultPlan] = None,
        host_down_after: Optional[Mapping[str, int]] = None,
    ):
        self.inner = inner
        self.plan = plan
        #: host name -> number of completed executes after which the host
        #: is permanently dead (0 = dead from the start).
        self.host_down_after = dict(host_down_after or {})
        self._lock = threading.Lock()
        self._fired: set[tuple[int, int, str]] = set()
        self._exec_count: Counter = Counter()
        self._injected: Counter = Counter()

    # -- introspection -------------------------------------------------------
    @property
    def injected(self) -> dict[str, int]:
        """Transport faults injected so far, by kind (snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    def completed_on(self, name: str) -> int:
        """Commands the inner transport finished on host ``name``."""
        with self._lock:
            return self._exec_count[name]

    # -- fault selection -----------------------------------------------------
    def _check_down(self, host: HostSpec) -> None:
        with self._lock:
            down_at = self.host_down_after.get(host.name)
            if down_at is not None and self._exec_count[host.name] >= down_at:
                self._injected["host_down"] += 1
                raise TransportError(
                    f"injected outage: host {host.name!r} is down",
                    phase="connect",
                )

    def _plan_fault(self, seq: int, attempt: int) -> Optional[FaultSpec]:
        if self.plan is None or seq <= 0:
            return None
        spec = self.plan.fault_for(seq, attempt)
        if spec is None or spec.kind not in TRANSPORT_FAULT_KINDS:
            return None
        # Fire once per (seq, attempt, kind): the backend's host-hop of
        # this same attempt must then succeed — a transient blip.
        key = (seq, attempt, spec.kind)
        with self._lock:
            if key in self._fired:
                return None
            self._fired.add(key)
            self._injected[spec.kind] += 1
        return spec

    # -- Transport interface -------------------------------------------------
    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        return self.inner.ensure_workdir(host, workdir)

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        self._check_down(host)
        spec = self._plan_fault(seq, attempt)
        if spec is not None and spec.kind == "connect_timeout":
            raise TransportError(
                f"injected connect timeout to {host.name!r} "
                f"(seq {seq}, attempt {attempt})",
                phase="connect",
            )
        res = self.inner.execute(
            host, command, workdir=workdir, stdin=stdin, env=env,
            timeout=timeout, seq=seq, attempt=attempt,
        )
        with self._lock:
            self._exec_count[host.name] += 1
        if spec is not None and spec.kind == "drop":
            # The command ran; the result is lost in transit.
            raise TransportError(
                f"injected mid-job connection drop on {host.name!r} "
                f"(seq {seq}, attempt {attempt})",
                phase="execute",
            )
        return res

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        self._check_down(host)
        return self.inner.put(host, src, relpath, workdir)

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        self._check_down(host)
        return self.inner.get(host, relpath, dest, workdir)

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        return self.inner.remove(host, relpaths, workdir)

    def cancel_all(self) -> None:
        self.inner.cancel_all()

    def close(self) -> None:
        self.inner.close()
