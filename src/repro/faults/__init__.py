"""Deterministic fault injection for the execution engine.

The chaos-engineering layer of the reproduction: seedable fault plans
(:class:`FaultPlan`), a backend decorator that injects them
(:class:`FaultyBackend`), node-death schedules for the multi-instance
drivers (:class:`NodeFaultPlan`), and joblog damage helpers
(:func:`truncate_joblog`, :func:`corrupt_joblog`).

Quickstart::

    from repro import Parallel
    from repro.faults import FaultPlan, FaultSpec, FaultyBackend
    from repro.core.backends.local import LocalShellBackend

    plan = FaultPlan(seed=42, random_faults=[
        (0.05, FaultSpec("flaky", times=2)),   # fails twice, then passes
        (0.02, FaultSpec("hang")),             # wedges until --timeout
    ])
    backend = FaultyBackend(LocalShellBackend(), plan)
    summary = Parallel("process {}", jobs=32, retries=3, timeout=10,
                       retry_delay=0.5, backend=backend).run(inputs)

Same seed → identical retry/success counts, regardless of thread timing.
"""

from repro.faults.backend import FaultyBackend
from repro.faults.joblog import corrupt_joblog, truncate_joblog
from repro.faults.plan import (
    FAULT_KINDS,
    TRANSPORT_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    NodeFaultPlan,
)
from repro.faults.transport import FaultyTransport

__all__ = [
    "FAULT_KINDS",
    "TRANSPORT_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "NodeFaultPlan",
    "FaultyBackend",
    "FaultyTransport",
    "truncate_joblog",
    "corrupt_joblog",
]
