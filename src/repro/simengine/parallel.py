"""A simulated GNU Parallel instance running on a :class:`SimNode`.

Models the structure that sets the engine's measured launch rates:

* one *dispatcher* per instance — a serialized loop that takes a free job
  slot, spends ``1/dispatch_rate`` seconds of bookkeeping (the ~2.1 ms/job
  that caps a single instance at ~470 jobs/s in Fig. 3), then hands the
  job to the node;
* every job start then passes through the node-wide *fork station*
  (~6,400/s) and, when containerized, the runtime's own serialization
  point (Shifter ~5,200/s, Podman-HPC ~65/s) — so running N instances
  raises throughput until the node-wide station saturates, exactly the
  multi-instance scaling of Figs. 3-5;
* slots are numbered 1..jobs and reused lowest-first, feeding the
  GPU-isolation mapping ``device = slot - 1`` when ``gpu_isolation`` is
  on; the :class:`~repro.gpu.GpuPool` raises if isolation is ever
  violated, making the invariant checkable.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from repro.cluster.machines import ENGINE_DISPATCH_RATE
from repro.cluster.node import SimNode
from repro.containers.runtime import BARE_METAL, ContainerRuntime
from repro.errors import SimulationError
from repro.gpu.device import slot_to_device
from repro.sim.kernel import Environment, Process
from repro.sim.resources import RateStation, Resource, Store
from repro.simengine.task import SimTask, SimTaskResult

__all__ = ["SimParallel"]

#: Work-queue sentinel: wakes the dispatcher once all jobs are final.
_DONE = object()


class SimParallel:
    """One GNU Parallel instance bound to a node."""

    def __init__(
        self,
        node: SimNode,
        jobs: int,
        dispatch_rate: float = ENGINE_DISPATCH_RATE,
        runtime: ContainerRuntime = BARE_METAL,
        gpu_isolation: bool = False,
        retries: int = 0,
        name: str = "parallel",
        monitor: "object | None" = None,
    ):
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise SimulationError(f"retries must be >= 0, got {retries}")
        if gpu_isolation and jobs > len(node.gpus):
            raise SimulationError(
                f"GPU isolation requires -j <= {len(node.gpus)} on {node.name}, got -j{jobs}"
            )
        self.node = node
        self.env: Environment = node.env
        self.jobs = jobs
        self.runtime = runtime
        self.gpu_isolation = gpu_isolation
        #: GNU Parallel ``--retries`` semantics: total attempts per job
        #: (0 and 1 both mean "run once").  Applies to container-launch
        #: failures and injected task failures alike.
        self.retries = retries
        self.name = name
        #: Optional :class:`~repro.sim.monitor.Monitor`: the instance
        #: records per-launch events into series ``"<name>:launches"`` so
        #: launch-rate timeseries can be analyzed after a run.
        self.monitor = monitor
        self.dispatcher = RateStation(self.env, dispatch_rate, name=f"{name}:dispatch")
        self._slots = Resource(self.env, jobs)
        self._free_slot_numbers = list(range(1, jobs + 1))
        heapq.heapify(self._free_slot_numbers)
        self.results: list[SimTaskResult] = []

    def run(self, tasks: Iterable[SimTask]) -> Process:
        """Start the instance; the returned process yields the result list."""
        return self.env.process(self._dispatch_loop(list(tasks)), name=self.name)

    # -- internals --------------------------------------------------------------
    def _dispatch_loop(self, tasks: list[SimTask]):
        expected = len(tasks)
        if expected == 0:
            return []
        queue = Store(self.env)
        self._finals = 0
        self._expected = expected
        self._queue = queue
        for seq, task in enumerate(tasks, start=1):
            queue.put((seq, task, 1))
        while self._finals < expected:
            item = yield queue.get()
            if item is _DONE:
                break
            seq, task, attempt = item
            req = self._slots.request()
            yield req
            slot = heapq.heappop(self._free_slot_numbers)
            # The dispatcher's own serialized per-job work (~1/470 s).
            yield self.dispatcher.serve()
            self.env.process(
                self._job(task, seq, slot, req, attempt),
                name=f"{self.name}:job{seq}.{attempt}",
            )
        return list(self.results)

    def _finalize(self, result: SimTaskResult) -> None:
        """Record a final outcome and wake the dispatcher when all done."""
        self.results.append(result)
        self._finals += 1
        if self._finals >= self._expected:
            self._queue.put(_DONE)

    def _fail_or_retry(self, task, seq, attempt, mode, launch_time) -> None:
        """Route a failed attempt: back to the queue, or a final failure."""
        if 0 < attempt < max(self.retries, 1):
            self._queue.put((seq, task, attempt + 1))
            return
        self._finalize(
            SimTaskResult(
                seq=seq, node=self.node.name, slot=0,
                launch_time=launch_time, start_time=launch_time,
                end_time=self.env.now, ok=False, failure_mode=mode,
                attempt=attempt,
            )
        )

    def _job(self, task: SimTask, seq: int, slot: int, slot_req, attempt: int = 1):
        node = self.node
        gpu_index: Optional[int] = None
        failure: Optional[str] = None
        try:
            # Kernel fork path (node-wide ceiling).
            yield node.fork()
            # Container runtime serialization + per-launch setup + failures.
            node.launches_in_flight += 1
            try:
                station = node.runtime_station(self.runtime)
                if station is not None:
                    yield station.serve()
                failure = self.runtime.draw_failure(
                    node.rng, node.launches_in_flight
                )
                if self.runtime.per_launch_latency > 0:
                    yield self.env.timeout(self.runtime.per_launch_latency)
            finally:
                node.launches_in_flight -= 1
            launch_time = self.env.now
            if self.monitor is not None:
                self.monitor.record(
                    f"{self.name}:launches", launch_time, seq, tag=self.node.name
                )
            if failure is not None:
                node.record_launch_failure(failure)
                self._fail_or_retry(task, seq, attempt, failure, launch_time)
                return
            # GPU isolation: claim the slot's device for the task's lifetime.
            owner = f"{self.name}:job{seq}"
            if self.gpu_isolation and task.gpu:
                gpu_index = slot_to_device(slot, len(node.gpus))
                node.gpus.device(gpu_index).claim(owner)
            core_req = node.cores.request()
            yield core_req
            try:
                if task.nvme_read:
                    yield node.nvme.read(task.nvme_read)
                if task.lustre_read:
                    yield self._lustre().read(task.lustre_read)
                start_time = self.env.now
                if task.duration > 0:
                    yield self.env.timeout(task.duration)
                if task.nvme_write:
                    yield node.nvme.write(task.nvme_write)
                if task.lustre_metadata_ops:
                    yield self._lustre().metadata_op(task.lustre_metadata_ops)
                if task.lustre_write:
                    yield self._lustre().write(task.lustre_write)
            finally:
                node.cores.release(core_req)
                if gpu_index is not None:
                    node.gpus.device(gpu_index).release(owner)
            # Injected task failure (crash at completion): retry or record.
            if task.fail_prob > 0 and node.rng.random() < task.fail_prob:
                self._fail_or_retry(task, seq, attempt, "task_error", launch_time)
                return
            node.tasks_completed += 1
            self._finalize(
                SimTaskResult(
                    seq=seq, node=node.name, slot=slot,
                    launch_time=launch_time, start_time=start_time,
                    end_time=self.env.now, ok=True, gpu_index=gpu_index,
                    attempt=attempt,
                )
            )
        finally:
            heapq.heappush(self._free_slot_numbers, slot)
            self._slots.release(slot_req)

    def _lustre(self):
        if self.node.lustre is None:
            raise SimulationError(
                f"task on {self.node.name} needs Lustre but the machine was "
                "built with with_lustre=False"
            )
        return self.node.lustre
