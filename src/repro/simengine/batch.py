"""Vectorized per-node batch model for extreme-scale weak-scaling runs.

Simulating 9,000 nodes × 128 tasks with full per-job processes means
millions of kernel events — needlessly slow when, inside one node, the
behaviour of one GNU Parallel instance over short tasks is exactly
computable: the dispatcher serializes starts at ``dispatch_rate`` while
job slots bound concurrency.  :func:`batch_completion_times` computes the
same completion times the detailed :class:`~repro.simengine.parallel.SimParallel`
would produce, in O(n log j), and is validated against it in the test
suite (``tests/simengine/test_batch_vs_detailed.py``).

This follows the repo's HPC-guide discipline: make it correct with the
kernel, then replace the measured hot loop with an equivalent vectorized
computation.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cluster.machines import ENGINE_DISPATCH_RATE, NODE_FORK_RATE

__all__ = ["batch_completion_times", "batch_makespan"]


def batch_completion_times(
    durations: np.ndarray,
    jobs: int,
    dispatch_rate: float = ENGINE_DISPATCH_RATE,
    fork_rate: float = NODE_FORK_RATE,
    start: float = 0.0,
) -> np.ndarray:
    """Completion times of one engine instance's tasks on an idle node.

    Model (matching :class:`SimParallel` with an uncontended fork station):
    the dispatcher takes the next free slot, spends ``1/dispatch_rate``,
    the job then pays ``1/fork_rate`` fork latency and runs ``durations[i]``.

    Parameters mirror the detailed engine; ``start`` offsets the node's
    readiness time (allocation + straggler delays).
    """
    durations = np.asarray(durations, dtype=float)
    if durations.ndim != 1:
        raise ValueError("durations must be a 1-D array")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    n = durations.shape[0]
    out = np.empty(n, dtype=float)
    dispatch_dt = 1.0 / dispatch_rate
    fork_dt = 1.0 / fork_rate

    # Fast path: slots never bind when peak concurrency stays below `jobs`.
    # Peak concurrency for serialized dispatch is bounded by
    # ceil(max_duration / dispatch_dt) + 1.
    if n and ((durations.max() + fork_dt) / dispatch_dt) + 2.0 < jobs:
        dispatch_done = start + dispatch_dt * np.arange(1, n + 1)
        out = dispatch_done + fork_dt + durations
        return out

    free: list[float] = [start] * jobs
    heapq.heapify(free)
    t_dispatcher = start
    for i in range(n):
        slot_free = heapq.heappop(free)
        t_dispatcher = max(t_dispatcher, slot_free) + dispatch_dt
        end = t_dispatcher + fork_dt + durations[i]
        out[i] = end
        heapq.heappush(free, end)
    return out


def batch_makespan(
    durations: np.ndarray,
    jobs: int,
    dispatch_rate: float = ENGINE_DISPATCH_RATE,
    fork_rate: float = NODE_FORK_RATE,
    start: float = 0.0,
) -> float:
    """Makespan of the batch (last completion), same model as above."""
    times = batch_completion_times(durations, jobs, dispatch_rate, fork_rate, start)
    return float(times.max()) if times.size else start
