"""The simulated GNU Parallel engine and its vectorized batch model."""

from repro.simengine.batch import batch_completion_times, batch_makespan
from repro.simengine.export import to_profile, write_joblog
from repro.simengine.parallel import SimParallel
from repro.simengine.task import SimTask, SimTaskResult

__all__ = [
    "SimParallel",
    "SimTask",
    "SimTaskResult",
    "batch_completion_times",
    "batch_makespan",
    "write_joblog",
    "to_profile",
]
