"""Export simulated results in real-tool formats.

Simulated runs become most useful when they flow into the same analysis
tooling as real runs:

* :func:`write_joblog` — a GNU Parallel-compatible ``--joblog`` file from
  :class:`~repro.simengine.task.SimTaskResult` records (readable by
  :func:`repro.core.joblog.read_joblog` and by GNU Parallel itself);
* :func:`to_profile` — a :class:`~repro.analysis.profile.ParallelProfile`
  of the simulated run.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.profile import ParallelProfile, profile_intervals
from repro.core.joblog import JOBLOG_HEADER
from repro.simengine.task import SimTaskResult

__all__ = ["write_joblog", "to_profile"]


def write_joblog(path: str, results: Sequence[SimTaskResult], command: str = "sim-task") -> None:
    """Write simulated results as a GNU Parallel joblog.

    Failed launches get exit value 1; the command column records the
    failure mode so post-mortems can group by cause.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(JOBLOG_HEADER + "\n")
        for r in sorted(results, key=lambda x: x.seq):
            exitval = 0 if r.ok else 1
            cmd = command if r.ok else f"{command} [{r.failure_mode}]"
            fh.write(
                "\t".join(
                    [
                        str(r.seq),
                        r.node,
                        f"{r.launch_time:.3f}",
                        f"{r.runtime:.3f}",
                        "0",
                        "0",
                        str(exitval),
                        "0",
                        cmd,
                    ]
                )
                + "\n"
            )


def to_profile(results: Sequence[SimTaskResult]) -> ParallelProfile:
    """The simulated run's parallel profile (successful tasks only)."""
    ok = [r for r in results if r.ok]
    return profile_intervals(
        [r.launch_time for r in ok], [r.end_time for r in ok]
    )
