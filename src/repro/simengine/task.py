"""Task descriptors for the simulated engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SimTask", "SimTaskResult"]


@dataclass(frozen=True)
class SimTask:
    """One simulated job: compute time plus optional GPU/container/I/O needs.

    ``duration`` is the task's pure compute time holding one core.  I/O
    fields add bandwidth-shared transfers (bytes) to the named filesystem
    around the compute phase: reads happen before compute, writes after —
    the fetch/compute/store structure of the paper's workloads.
    """

    duration: float
    gpu: bool = False
    nvme_read: int = 0
    nvme_write: int = 0
    lustre_read: int = 0
    lustre_write: int = 0
    #: Metadata ops on Lustre (file creates — the small-file anti-pattern).
    lustre_metadata_ops: int = 0
    #: Probability the task itself crashes (failure injection for
    #: resilience experiments; independent of container-launch failures).
    fail_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative task duration: {self.duration}")
        if not 0.0 <= self.fail_prob <= 1.0:
            raise ValueError(f"fail_prob must be in [0, 1], got {self.fail_prob}")
        for name in ("nvme_read", "nvme_write", "lustre_read", "lustre_write"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")


@dataclass(frozen=True)
class SimTaskResult:
    """Outcome of one simulated job."""

    seq: int
    node: str
    slot: int
    #: Simulated time the process existed (post-fork) — the "launched" stamp
    #: used for launch-rate metrics.
    launch_time: float
    start_time: float  # compute began (core held, inputs staged)
    end_time: float
    ok: bool = True
    failure_mode: Optional[str] = None
    gpu_index: Optional[int] = None
    #: 1-based attempt number (with ``retries``, the recorded final attempt).
    attempt: int = 1

    @property
    def runtime(self) -> float:
        return self.end_time - self.launch_time
