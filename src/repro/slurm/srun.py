"""The ``srun`` cost model — the baseline GNU Parallel replaces.

§IV of the paper explains why per-task ``srun`` does not scale: "srun may
initially create a resource allocation for each run, and a large number of
srun invocations can impact the overall scheduler performance."  Two costs
model that:

* ``step_setup_s`` — per-invocation client-side setup (fork srun, build
  the step credential, set up I/O plumbing);
* a cluster-wide **controller station**: every step-creation RPC is
  serialized at slurmctld, so thousands of concurrent sruns queue there.

Listing 4 additionally sleeps 0.2 s between launches — reproduced by the
:func:`srun_loop` driver used in the ease-of-use/overhead benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Environment, Event
from repro.sim.resources import RateStation

__all__ = ["SrunCostModel", "SlurmController", "DEFAULT_SRUN_COST"]


@dataclass(frozen=True)
class SrunCostModel:
    """Per-invocation srun costs (seconds / rates).

    Defaults: ~50 ms client setup and a controller that can create ~200
    steps/s — generous for production Slurm, and still catastrophically
    slower than GNU Parallel's in-process dispatch when multiplied by
    10^5 tasks.
    """

    step_setup_s: float = 0.05
    controller_rate: float = 200.0
    #: Listing 4's defensive `sleep 0.2` between background sruns.
    inter_launch_sleep_s: float = 0.2


DEFAULT_SRUN_COST = SrunCostModel()


class SlurmController:
    """The cluster's slurmctld: a serialized step-creation service."""

    def __init__(self, env: Environment, cost: SrunCostModel = DEFAULT_SRUN_COST):
        self.env = env
        self.cost = cost
        self._station = RateStation(env, cost.controller_rate, name="slurmctld")

    def create_step(self) -> Event:
        """One step-creation RPC (serialized cluster-wide)."""
        return self._station.serve()

    @property
    def steps_created(self) -> int:
        return self._station.served

    def srun(self, duration: float):
        """One blocking ``srun`` of a task lasting ``duration`` seconds.

        A generator: ``yield from controller.srun(0.5)`` inside a process.
        """
        yield self.env.timeout(self.cost.step_setup_s)
        yield self.create_step()
        if duration > 0:
            yield self.env.timeout(duration)
