"""Batch-script parsing: ``#SBATCH`` directives + runnable body.

Closes the loop on the paper's listings: a job script like Listing 5 can
be parsed, its resource directives inspected, and its ``parallel``
command line executed through the engine (via :mod:`repro.compat`)::

    job = parse_sbatch(LISTING_5_PARALLEL_SCRIPT)
    assert job.nodes == 1
    summary = job.run_parallel_lines(dry_run=True)

Only the directives the paper's scripts use are interpreted
(``-N/--nodes``, ``-n/--ntasks``, ``-t/--time``, ``-J/--job-name``);
everything else is retained verbatim in ``directives``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import SlurmError

__all__ = ["SbatchJob", "parse_sbatch", "parse_walltime"]

_SBATCH_RE = re.compile(r"^#SBATCH\s+(.*)$")


def parse_walltime(spec: str) -> int:
    """Parse a Slurm time limit into seconds.

    Accepted: ``MM``, ``MM:SS``, ``HH:MM:SS``, ``D-HH``, ``D-HH:MM``,
    ``D-HH:MM:SS`` (the forms ``man sbatch`` documents).
    """
    spec = spec.strip()
    days = 0
    if "-" in spec:
        day_part, spec = spec.split("-", 1)
        try:
            days = int(day_part)
        except ValueError:
            raise SlurmError(f"bad walltime: {spec!r}") from None
        parts = spec.split(":")
        try:
            nums = [int(p) for p in parts]
        except ValueError:
            raise SlurmError(f"bad walltime: {spec!r}") from None
        if len(nums) == 1:
            h, m, s = nums[0], 0, 0
        elif len(nums) == 2:
            h, m, s = nums[0], nums[1], 0
        elif len(nums) == 3:
            h, m, s = nums
        else:
            raise SlurmError(f"bad walltime: {spec!r}")
    else:
        parts = spec.split(":")
        try:
            nums = [int(p) for p in parts]
        except ValueError:
            raise SlurmError(f"bad walltime: {spec!r}") from None
        if len(nums) == 1:
            h, m, s = 0, nums[0], 0
        elif len(nums) == 2:
            h, m, s = 0, nums[0], nums[1]
        elif len(nums) == 3:
            h, m, s = nums
        else:
            raise SlurmError(f"bad walltime: {spec!r}")
    return ((days * 24 + h) * 60 + m) * 60 + s


@dataclass
class SbatchJob:
    """A parsed batch script."""

    directives: list[str] = field(default_factory=list)
    body: list[str] = field(default_factory=list)
    nodes: int = 1
    ntasks: int | None = None
    job_name: str | None = None
    walltime_s: int | None = None
    modules: list[str] = field(default_factory=list)

    def parallel_lines(self) -> list[str]:
        """The body lines that invoke GNU Parallel (possibly multi-line)."""
        joined: list[str] = []
        acc = ""
        for line in self.body:
            stripped = line.rstrip()
            if acc:
                acc += " " + stripped.rstrip("\\").strip()
                if not stripped.endswith("\\"):
                    joined.append(acc)
                    acc = ""
                continue
            if stripped.lstrip().startswith("parallel"):
                if stripped.endswith("\\"):
                    acc = stripped.rstrip("\\").strip()
                else:
                    joined.append(stripped.strip())
        if acc:
            joined.append(acc)
        return joined

    def run_parallel_lines(self, dry_run: bool = True, output=None):
        """Execute every ``parallel`` invocation in the body via the engine.

        Returns the list of :class:`~repro.core.job.RunSummary` objects,
        one per invocation.  ``dry_run=True`` (default) renders commands
        without running them — batch scripts reference site binaries.
        """
        from repro.compat import run_gnu_parallel

        lines = self.parallel_lines()
        if not lines:
            raise SlurmError("script contains no `parallel` invocation")
        return [
            run_gnu_parallel(line, dry_run=dry_run, output=output) for line in lines
        ]


def parse_sbatch(script: str) -> SbatchJob:
    """Parse a batch script's directives and body."""
    job = SbatchJob()
    for raw in script.splitlines():
        m = _SBATCH_RE.match(raw.strip())
        if m:
            directive = m.group(1).strip()
            job.directives.append(directive)
            _apply_directive(job, directive)
            continue
        stripped = raw.strip()
        if stripped.startswith("#!") or not stripped:
            continue
        if stripped.startswith("module load"):
            job.modules.extend(stripped.split()[2:])
        if not stripped.startswith("#"):
            job.body.append(raw)
    return job


def _apply_directive(job: SbatchJob, directive: str) -> None:
    tokens = directive.split()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        value = None
        if "=" in tok:
            tok, value = tok.split("=", 1)
        elif i + 1 < len(tokens) and not tokens[i + 1].startswith("-"):
            value = tokens[i + 1]
            i += 1
        if tok in ("-N", "--nodes") and value is not None:
            try:
                job.nodes = int(value)
            except ValueError:
                raise SlurmError(f"bad node count: {value!r}") from None
        elif tok in ("-n", "--ntasks") and value is not None:
            job.ntasks = int(value)
        elif tok in ("-J", "--job-name") and value is not None:
            job.job_name = value
        elif tok in ("-t", "--time") and value is not None:
            job.walltime_s = parse_walltime(value)
        i += 1
