"""Slurm allocations and the per-node environment.

An :class:`Allocation` holds N nodes of a machine, each becoming ready
after its drawn delay (allocation + straggler models).  Per-node
environments expose ``SLURM_NNODES`` and ``SLURM_NODEID`` — the two
variables the paper's Listing-1 driver script consumes to shard inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import SimMachine
from repro.cluster.node import SimNode
from repro.cluster.variability import node_ready_times
from repro.errors import SlurmError

__all__ = ["Allocation", "NodeEnv"]


@dataclass(frozen=True)
class NodeEnv:
    """The Slurm environment visible on one node of an allocation."""

    nnodes: int
    nodeid: int

    def as_dict(self) -> dict[str, str]:
        """Environment-variable form, as a job script would see it."""
        return {
            "SLURM_NNODES": str(self.nnodes),
            "SLURM_NODEID": str(self.nodeid),
        }


class Allocation:
    """N nodes of a machine, with per-node readiness times."""

    def __init__(self, machine: SimMachine, n_nodes: int, job_id: int = 1):
        if n_nodes < 1:
            raise SlurmError(f"allocation needs >= 1 node, got {n_nodes}")
        if n_nodes > machine.spec.total_nodes:
            raise SlurmError(
                f"requested {n_nodes} nodes but {machine.spec.name} has "
                f"{machine.spec.total_nodes}"
            )
        self.machine = machine
        self.n_nodes = n_nodes
        self.job_id = job_id
        rng = machine.rng_registry.stream(f"alloc:{job_id}")
        #: Seconds after allocation start at which each node is usable.
        self.ready_times: np.ndarray = node_ready_times(
            machine.spec, n_nodes, rng
        )

    def node(self, nodeid: int) -> SimNode:
        """The compute node for ``nodeid`` (0-based within the allocation)."""
        if not 0 <= nodeid < self.n_nodes:
            raise SlurmError(f"nodeid {nodeid} out of range 0..{self.n_nodes - 1}")
        return self.machine.node(nodeid)

    def env_for(self, nodeid: int) -> NodeEnv:
        """The Slurm environment on node ``nodeid``."""
        if not 0 <= nodeid < self.n_nodes:
            raise SlurmError(f"nodeid {nodeid} out of range 0..{self.n_nodes - 1}")
        return NodeEnv(nnodes=self.n_nodes, nodeid=nodeid)

    def ready_time(self, nodeid: int) -> float:
        """When node ``nodeid`` becomes usable (s after allocation start)."""
        if not 0 <= nodeid < self.n_nodes:
            raise SlurmError(f"nodeid {nodeid} out of range 0..{self.n_nodes - 1}")
        return float(self.ready_times[nodeid])
