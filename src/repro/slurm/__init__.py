"""Slurm substrate: allocations, env vars, srun cost model, sbatch scripts."""

from repro.slurm.allocation import Allocation, NodeEnv
from repro.slurm.queue import QueuedJob, QueueSchedule, schedule_fifo_backfill
from repro.slurm.sbatch import SbatchJob, parse_sbatch, parse_walltime
from repro.slurm.srun import DEFAULT_SRUN_COST, SlurmController, SrunCostModel

__all__ = [
    "Allocation",
    "NodeEnv",
    "SlurmController",
    "SrunCostModel",
    "DEFAULT_SRUN_COST",
    "QueuedJob",
    "QueueSchedule",
    "schedule_fifo_backfill",
    "SbatchJob",
    "parse_sbatch",
    "parse_walltime",
]
