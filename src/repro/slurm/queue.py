"""A Slurm batch-queue model: FIFO scheduling with conservative backfill.

Why it exists: the paper's §IV argues for *one* allocation driven by GNU
Parallel over per-task scheduler jobs ("a large number of srun
invocations can impact the overall scheduler performance").  This queue
model lets the benchmark harness quantify the other half of that
trade-off — the *queueing* cost of submitting many small jobs versus one
node-count-sized job.

The model: a machine with ``total_nodes`` interchangeable nodes; jobs
request (nodes, walltime); the scheduler starts the queue head whenever
enough nodes are free, and backfills later jobs that fit *now* without
delaying the head's earliest possible start (EASY backfill, using each
job's walltime as its runtime bound).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SlurmError

__all__ = ["QueuedJob", "QueueSchedule", "schedule_fifo_backfill"]


@dataclass(frozen=True)
class QueuedJob:
    """One batch job: resource request plus actual runtime."""

    job_id: int
    nodes: int
    runtime_s: float
    #: Requested walltime (>= runtime); used for backfill reservations.
    walltime_s: Optional[float] = None
    submit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SlurmError(f"job {self.job_id}: nodes must be >= 1")
        if self.runtime_s < 0:
            raise SlurmError(f"job {self.job_id}: negative runtime")
        if self.walltime_s is not None and self.walltime_s < self.runtime_s:
            raise SlurmError(f"job {self.job_id}: walltime below runtime")

    @property
    def bound_s(self) -> float:
        """The scheduler's runtime bound (walltime, or actual runtime)."""
        return self.walltime_s if self.walltime_s is not None else self.runtime_s


@dataclass
class QueueSchedule:
    """The outcome of scheduling a job list."""

    start_times: dict[int, float] = field(default_factory=dict)
    end_times: dict[int, float] = field(default_factory=dict)

    def wait_time(self, job: QueuedJob) -> float:
        return self.start_times[job.job_id] - job.submit_s

    @property
    def makespan(self) -> float:
        return max(self.end_times.values()) if self.end_times else 0.0

    def mean_wait(self, jobs: list[QueuedJob]) -> float:
        if not jobs:
            return 0.0
        return sum(self.wait_time(j) for j in jobs) / len(jobs)


def schedule_fifo_backfill(
    jobs: list[QueuedJob], total_nodes: int, backfill: bool = True
) -> QueueSchedule:
    """Schedule ``jobs`` (in submission order) onto ``total_nodes`` nodes.

    Event-driven: free-node count evolves as jobs end; the FIFO head
    starts as soon as it fits; with ``backfill`` on, jobs behind the head
    may start early if (using walltime bounds) they cannot delay the
    head's reservation.
    """
    if total_nodes < 1:
        raise SlurmError("total_nodes must be >= 1")
    for job in jobs:
        if job.nodes > total_nodes:
            raise SlurmError(
                f"job {job.job_id} wants {job.nodes} nodes, machine has {total_nodes}"
            )
    schedule = QueueSchedule()
    pending = sorted(jobs, key=lambda j: (j.submit_s, j.job_id))
    running: list[tuple[float, int, int]] = []  # (end_bound, job_id, nodes)
    actual_ends: list[tuple[float, int]] = []  # (actual end, job_id)
    free = total_nodes
    now = 0.0

    def start(job: QueuedJob, at: float) -> None:
        nonlocal free
        schedule.start_times[job.job_id] = at
        schedule.end_times[job.job_id] = at + job.runtime_s
        heapq.heappush(running, (at + job.bound_s, job.job_id, job.nodes))
        heapq.heappush(actual_ends, (at + job.runtime_s, job.job_id))
        free -= job.nodes

    while pending or actual_ends:
        # Release nodes for jobs whose *actual* runtime has elapsed.
        while actual_ends and actual_ends[0][0] <= now + 1e-12:
            _, jid = heapq.heappop(actual_ends)
            # Remove its reservation from `running`.
            for i, (eb, rid, n) in enumerate(running):
                if rid == jid:
                    free += n
                    running.pop(i)
                    heapq.heapify(running)
                    break
        progressed = True
        while progressed and pending:
            progressed = False
            head = pending[0]
            if head.submit_s <= now + 1e-12 and head.nodes <= free:
                start(pending.pop(0), now)
                progressed = True
                continue
            if not backfill:
                break
            # Head can't start: compute its earliest start ("shadow" time)
            # from running jobs' walltime bounds, then backfill any later,
            # already-submitted job that fits now and ends (by bound)
            # before the shadow, or uses nodes the head won't need.
            if head.submit_s > now + 1e-12 or not running:
                break
            shadow, needed = _shadow_time(running, free, head.nodes)
            for i in range(1, len(pending)):
                cand = pending[i]
                if cand.submit_s > now + 1e-12 or cand.nodes > free:
                    continue
                fits_before_shadow = now + cand.bound_s <= shadow + 1e-12
                spare = free - needed if free > needed else 0
                if fits_before_shadow or cand.nodes <= spare:
                    start(pending.pop(i), now)
                    progressed = True
                    break
        # Advance time to the next interesting instant.
        candidates = []
        if actual_ends:
            candidates.append(actual_ends[0][0])
        if pending and pending[0].submit_s > now:
            candidates.append(pending[0].submit_s)
        elif pending and not actual_ends:
            raise SlurmError("scheduler stalled with pending work")  # pragma: no cover
        if not candidates:
            break
        now = min(candidates)
    return schedule


def _shadow_time(
    running: list[tuple[float, int, int]], free: int, needed: int
) -> tuple[float, int]:
    """Earliest time the FIFO head could start, per walltime bounds.

    Returns (shadow_time, nodes_still_needed_at_shadow): walk running
    jobs' bounded ends until enough nodes accumulate.
    """
    avail = free
    for end_bound, _jid, nodes in sorted(running):
        avail += nodes
        if avail >= needed:
            return end_bound, needed - (avail - nodes)
    return float("inf"), needed
