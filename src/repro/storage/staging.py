"""A generic staged prefetch pipeline (the Fig. 7 pattern, parameterized).

The Darshan workflow's structure — process dataset k from fast local
storage while prefetching dataset k+d from the shared filesystem and
deleting k-1 — generalizes to any fetch-process stream.  This executor
makes the prefetch *depth* d a parameter so the design choice can be
ablated: depth 0 = no staging (process everything from the shared FS),
depth 1 = the paper's pipeline, depth ≥ 2 = more lookahead (useful only
when a single copy cannot hide behind one processing stage).

NVMe capacity is enforced: at most ``depth + 1`` datasets may reside on
the local filesystem at once (the in-flight prefetches plus the dataset
being processed), matching the paper's delete-behind discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.sim.kernel import Environment
from repro.sim.resources import Resource
from repro.storage.filesystem import Filesystem

__all__ = ["StagingConfig", "StagingReport", "run_staging_pipeline"]


@dataclass(frozen=True)
class StagingConfig:
    """One staged-pipeline problem."""

    n_datasets: int
    dataset_bytes: int
    compute_s: float
    #: Effective per-client read bandwidth from the shared FS (B/s).
    shared_client_bw: float
    #: Prefetch copy bandwidth shared FS -> local (B/s).
    copy_bw: float
    #: How many datasets to prefetch ahead (0 = no staging).
    depth: int = 1

    def __post_init__(self) -> None:
        if self.n_datasets < 1:
            raise StorageError("need >= 1 dataset")
        if self.depth < 0:
            raise StorageError("depth must be >= 0")
        for name in ("dataset_bytes", "compute_s", "shared_client_bw", "copy_bw"):
            if getattr(self, name) <= 0:
                raise StorageError(f"{name} must be > 0")


@dataclass
class StagingReport:
    """Timings of one pipeline run."""

    depth: int = 0
    stage_times: list[float] = field(default_factory=list)
    total_time: float = 0.0
    shared_fs_stages: int = 0
    peak_local_datasets: int = 0


def run_staging_pipeline(
    env: Environment,
    shared: Filesystem,
    local: Filesystem,
    config: StagingConfig,
) -> StagingReport:
    """Run the pipeline on an idle environment to completion.

    With depth 0 every dataset is processed straight from the shared
    filesystem.  With depth d, prefetches for datasets 1..  run up to d
    ahead of processing; dataset 0 always processes from the shared FS
    (there is nothing local yet when the job starts).
    """
    report = StagingReport(depth=config.depth)
    n = config.n_datasets
    for k in range(n):
        shared.add_file(f"/shared/ds{k}", config.dataset_bytes)

    if config.depth == 0:
        def serial():
            start = env.now
            for _k in range(n):
                report.shared_fs_stages += 1
                t0 = env.now
                yield env.all_of([
                    shared.read(config.dataset_bytes),
                    env.timeout(config.dataset_bytes / config.shared_client_bw),
                ])
                yield env.timeout(config.compute_s)
                report.stage_times.append(env.now - t0)
            report.total_time = env.now - start

        p = env.process(serial(), name="staging-d0")
        env.run(until=p)
        return report

    # Local capacity: the dataset being processed + depth prefetched.
    capacity = Resource(env, config.depth + 1)
    ready = [env.event() for _ in range(n)]
    ready[0].succeed()
    local_count = [0]
    holds: dict[int, object] = {}

    def prefetch(k: int):
        req = capacity.request()
        yield req
        holds[k] = req
        yield env.all_of([
            shared.read(config.dataset_bytes),
            local.write(config.dataset_bytes),
            env.timeout(config.dataset_bytes / config.copy_bw),
        ])
        local.add_file(f"/local/ds{k}", config.dataset_bytes)
        local_count[0] += 1
        report.peak_local_datasets = max(report.peak_local_datasets, local_count[0])
        ready[k].succeed()

    def pipeline():
        start = env.now
        for k in range(1, n):
            env.process(prefetch(k), name=f"prefetch{k}")
        for k in range(n):
            yield ready[k]
            t0 = env.now
            if k == 0:
                report.shared_fs_stages += 1
                yield env.all_of([
                    shared.read(config.dataset_bytes),
                    env.timeout(config.dataset_bytes / config.shared_client_bw),
                ])
            else:
                yield local.read(config.dataset_bytes)
            yield env.timeout(config.compute_s)
            report.stage_times.append(env.now - t0)
            if k >= 1:
                local.remove(f"/local/ds{k}")
                local_count[0] -= 1
                capacity.release(holds.pop(k))
        report.total_time = env.now - start

    p = env.process(pipeline(), name=f"staging-d{config.depth}")
    env.run(until=p)
    return report
