"""An rsync cost-and-semantics model.

Reproduces what §IV-E of the paper relies on:

* ``-R`` (``--relative``): destination paths recreate the source tree;
* ``-a``-ish semantics: copies preserve sizes; already-identical files are
  skipped (the *incremental* property that made petabyte migration safe to
  restart);
* ``-X``-style argument batching from GNU Parallel: one rsync process
  handles many files, amortizing its startup cost;
* a cost model with three paper-relevant components per rsync invocation:
  process startup, per-file protocol overhead (the reason sequential
  transfers of many small files are catastrophically slow), and the actual
  data movement through the source read link, the destination write link
  and the node's NIC.

Cost constants are module-level and documented so the data-motion
benchmark can cite them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.sim.kernel import Environment
from repro.sim.resources import FairShareLink
from repro.storage.filesystem import FileEntry, Filesystem

__all__ = ["RsyncCostModel", "RsyncStats", "rsync_process"]


@dataclass(frozen=True)
class RsyncCostModel:
    """Per-invocation and per-file overheads for one rsync process.

    Defaults reflect common measurements of rsync against a parallel
    filesystem: ~0.3 s process startup + destination handshake, and
    ~25 ms/file of protocol chatter (stat, checksum negotiation, create)
    dominated by metadata latency.  The paper's 200× sequential→parallel
    speed-up emerges from the per-file term: a petabyte in ~1M files
    sequentially pays 1M × 25 ms ≈ 7 h of pure overhead on top of
    single-stream bandwidth, while 256 streams amortize both terms.
    """

    startup_s: float = 0.3
    per_file_s: float = 0.025
    #: rsync single-stream ceiling (bytes/s) — one stream cannot saturate
    #: a fat NIC; ~150 MB/s is typical for rsync-over-ssh on DTNs.
    stream_bw: float = 150e6


@dataclass
class RsyncStats:
    """What one rsync invocation did."""

    files_considered: int = 0
    files_transferred: int = 0
    files_skipped: int = 0
    bytes_transferred: int = 0
    start_time: float = 0.0
    end_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput(self) -> float:
        """Bytes/s over the invocation's lifetime."""
        return self.bytes_transferred / self.duration if self.duration > 0 else 0.0


def rsync_process(
    env: Environment,
    src: Filesystem,
    dst: Filesystem,
    files: Sequence[FileEntry],
    cost: RsyncCostModel = RsyncCostModel(),
    nic: Optional[FairShareLink] = None,
    relative: bool = True,
    delete_source: bool = False,
):
    """Simulate one rsync invocation copying ``files`` from src to dst.

    A generator: run it with ``env.process(rsync_process(...))``; the
    process returns an :class:`RsyncStats`.

    Incremental semantics: a destination file with the same path and size
    is skipped (only the per-file stat cost is paid).  ``relative`` keeps
    source paths; otherwise only the basename lands in the destination.
    ``nic`` optionally throttles this transfer through the DTN node's NIC.
    """
    stats = RsyncStats(start_time=env.now)
    yield env.timeout(cost.startup_s)
    for entry in files:
        if not src.exists(entry.path):
            raise StorageError(f"rsync: source file vanished: {entry.path!r}")
        dst_path = entry.path if relative else entry.path.rsplit("/", 1)[-1]
        stats.files_considered += 1
        # Per-file protocol overhead: paid for every file, skipped or not.
        yield env.timeout(cost.per_file_s)
        yield dst.metadata_op()
        if dst.exists(dst_path) and dst.size_of(dst_path) == entry.size:
            stats.files_skipped += 1
            continue
        # Move the bytes: source read, destination write, NIC, and the
        # stream's own ceiling all apply; the slowest leg dominates
        # (they progress concurrently, as in a real pipeline).
        size = entry.size
        legs = [
            src.read(size),
            dst.write(size),
            env.timeout(size / cost.stream_bw),
        ]
        if nic is not None:
            legs.append(nic.transfer(size))
        yield env.all_of(legs)
        dst.add_file(dst_path, size)
        stats.files_transferred += 1
        stats.bytes_transferred += size
        if delete_source:
            src.remove(entry.path)
    stats.end_time = env.now
    return stats
