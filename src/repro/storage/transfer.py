"""Real-filesystem transfer primitives for remote staging.

The simulated half of :mod:`repro.storage` models rsync *costs*
(:mod:`repro.storage.rsync`); this module is the executable counterpart
the remote-dispatch layer stands on: rsync-able path normalization and
copy/remove helpers with the error split the backend needs —
:class:`~repro.errors.StagingError` for job-local problems (missing
source) vs ``OSError`` pass-through for host-side ones.

Path semantics follow GNU Parallel's ``--transferfile``/``--return``:
a transferred file lands *relative to the remote workdir* with its
leading ``/`` (and any ``./``) stripped, mirroring ``rsync --relative``;
``..`` components are rejected so a crafted input line cannot stage
outside the workdir.
"""

from __future__ import annotations

import os
import shutil

from repro.errors import StagingError

__all__ = ["remote_relpath", "copy_file", "remove_files"]


def remote_relpath(path: str) -> str:
    """Normalize a transfer path to its workdir-relative remote location.

    ``/data/a.txt`` → ``data/a.txt``; ``./in/x`` → ``in/x``; a path
    escaping the workdir (``../x``) raises :class:`StagingError`.
    """
    p = path
    while p.startswith("./"):
        p = p[2:]
    p = p.lstrip("/")
    if not p:
        raise StagingError(f"transfer path {path!r} names no file")
    norm = os.path.normpath(p)
    if norm == ".." or norm.startswith(".." + os.sep):
        raise StagingError(f"transfer path {path!r} escapes the workdir")
    return norm


def copy_file(src: str, dest: str) -> int:
    """Copy ``src`` to ``dest`` (parents created); returns bytes copied.

    A missing source is a :class:`StagingError` (the job's fault, not the
    host's); identical src/dest (a ``:`` localhost "transfer") is a no-op.
    """
    if not os.path.isfile(src):
        raise StagingError(f"transfer source missing: {src!r}")
    if os.path.abspath(src) == os.path.abspath(dest):
        return os.path.getsize(src)
    parent = os.path.dirname(dest)
    if parent:
        os.makedirs(parent, exist_ok=True)
    shutil.copy2(src, dest)
    return os.path.getsize(dest)


def remove_files(paths: list[str], root: str | None = None) -> int:
    """Best-effort removal (``--cleanup``); returns how many were removed.

    Missing files are fine — a job may legitimately have consumed its own
    staged input.  Emptied parent directories under ``root`` are pruned so
    repeated staged runs don't accrete empty trees.
    """
    removed = 0
    for path in paths:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            continue
        if root is None:
            continue
        parent = os.path.dirname(path)
        root_abs = os.path.abspath(root)
        while os.path.abspath(parent).startswith(root_abs) and os.path.abspath(
            parent
        ) != root_abs:
            try:
                os.rmdir(parent)
            except OSError:
                break
            parent = os.path.dirname(parent)
    return removed
