"""Real-filesystem transfer primitives for remote staging.

The simulated half of :mod:`repro.storage` models rsync *costs*
(:mod:`repro.storage.rsync`); this module is the executable counterpart
the remote-dispatch layer stands on: rsync-able path normalization and
copy/remove helpers with the error split the backend needs —
:class:`~repro.errors.StagingError` for job-local problems (missing
source) vs ``OSError`` pass-through for host-side ones.

Path semantics follow GNU Parallel's ``--transferfile``/``--return``:
a transferred file lands *relative to the remote workdir* with its
leading ``/`` (and any ``./``) stripped, mirroring ``rsync --relative``;
``..`` components are rejected so a crafted input line cannot stage
outside the workdir.

Large files copy through multiple concurrent streams (``pread``/
``pwrite`` at disjoint offsets, the rsync ``--whole-file`` + parallel-
chunk idiom DTN tooling uses): one Python thread per chunk, all writing
into a pre-sized destination.  :func:`plan_streams` is the shared policy
for how many streams a payload deserves, so the simulated transport can
charge the same shape.
"""

from __future__ import annotations

import os
import shutil
import threading

from repro.errors import StagingError

__all__ = ["remote_relpath", "copy_file", "remove_files", "plan_streams"]

#: One stream per this many bytes (4 MiB), capped at :data:`MAX_STREAMS`.
#: Below one chunk the thread handoff costs more than the overlap wins.
STREAM_CHUNK = 4 << 20
MAX_STREAMS = 4

#: Read/write block inside one stream.
_IO_BLOCK = 1 << 20


def remote_relpath(path: str) -> str:
    """Normalize a transfer path to its workdir-relative remote location.

    ``/data/a.txt`` → ``data/a.txt``; ``./in/x`` → ``in/x``; a path
    escaping the workdir (``../x``) raises :class:`StagingError`.
    """
    p = path
    while p.startswith("./"):
        p = p[2:]
    p = p.lstrip("/")
    if not p:
        raise StagingError(f"transfer path {path!r} names no file")
    norm = os.path.normpath(p)
    if norm == ".." or norm.startswith(".." + os.sep):
        raise StagingError(f"transfer path {path!r} escapes the workdir")
    return norm


def plan_streams(nbytes: int) -> int:
    """How many concurrent streams a payload of ``nbytes`` warrants."""
    if nbytes <= 0:
        return 1
    return max(1, min(MAX_STREAMS, nbytes // STREAM_CHUNK))


def copy_file(src: str, dest: str, streams: int | None = None) -> int:
    """Copy ``src`` to ``dest`` (parents created); returns bytes copied.

    A missing source is a :class:`StagingError` (the job's fault, not the
    host's); identical src/dest (a ``:`` localhost "transfer") is a no-op.
    ``streams`` overrides :func:`plan_streams`; 1 is a plain ``copy2``.

    The byte count is the *source* size at copy time: the destination may
    already be growing (a job appending to its staged input) by the time
    a post-copy ``getsize`` would run.
    """
    if not os.path.isfile(src):
        raise StagingError(f"transfer source missing: {src!r}")
    size = os.path.getsize(src)
    if os.path.abspath(src) == os.path.abspath(dest):
        return size
    parent = os.path.dirname(dest)
    if parent:
        os.makedirs(parent, exist_ok=True)
    n = plan_streams(size) if streams is None else max(1, streams)
    if n <= 1:
        shutil.copy2(src, dest)
        return size
    _copy_streamed(src, dest, size, n)
    shutil.copystat(src, dest)  # copy2 parity (permissions, mtime)
    return size


def _copy_streamed(src: str, dest: str, size: int, streams: int) -> None:
    """Concurrent disjoint-offset copy into a pre-sized destination."""
    fd_in = os.open(src, os.O_RDONLY)
    try:
        fd_out = os.open(dest, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o666)
        try:
            os.truncate(fd_out, size)
            span = -(-size // streams)
            failures: list[OSError] = []

            def pump(offset: int, end: int) -> None:
                try:
                    while offset < end:
                        block = os.pread(
                            fd_in, min(_IO_BLOCK, end - offset), offset
                        )
                        if not block:
                            break  # src shrank under us; partial copy stands
                        os.pwrite(fd_out, block, offset)
                        offset += len(block)
                except OSError as exc:
                    failures.append(exc)

            threads = [
                threading.Thread(
                    target=pump,
                    args=(i * span, min(size, (i + 1) * span)),
                    daemon=True,
                )
                for i in range(streams)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if failures:
                raise failures[0]
        finally:
            os.close(fd_out)
    finally:
        os.close(fd_in)


def remove_files(paths: list[str], root: str | None = None) -> int:
    """Best-effort removal (``--cleanup``); returns how many were removed.

    Missing files are fine — a job may legitimately have consumed its own
    staged input.  Emptied parent directories strictly under ``root`` are
    pruned so repeated staged runs don't accrete empty trees; the
    containment check is component-wise (``root=/a/b`` never prunes
    inside a sibling ``/a/b2``).
    """
    removed = 0
    root_abs = os.path.abspath(root) if root is not None else None
    for path in paths:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            continue
        if root_abs is None:
            continue
        parent = os.path.abspath(os.path.dirname(path))
        while parent != root_abs and parent.startswith(root_abs + os.sep):
            try:
                os.rmdir(parent)
            except OSError:
                break
            parent = os.path.dirname(parent)
    return removed
