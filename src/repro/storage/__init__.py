"""Simulated storage substrate: Lustre, NVMe, rsync, synthetic datasets."""

from repro.storage.datasets import lognormal_tree, uniform_files
from repro.storage.filesystem import FileEntry, Filesystem, make_lustre, make_nvme
from repro.storage.rsync import RsyncCostModel, RsyncStats, rsync_process
from repro.storage.staging import StagingConfig, StagingReport, run_staging_pipeline
from repro.storage.transfer import copy_file, remote_relpath, remove_files

__all__ = [
    "remote_relpath",
    "copy_file",
    "remove_files",
    "FileEntry",
    "Filesystem",
    "make_lustre",
    "make_nvme",
    "RsyncCostModel",
    "RsyncStats",
    "rsync_process",
    "StagingConfig",
    "StagingReport",
    "run_staging_pipeline",
    "lognormal_tree",
    "uniform_files",
]
