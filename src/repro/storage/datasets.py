"""Synthetic dataset generators for the storage-centric experiments.

The paper's data-motion and Darshan workloads operate on real file trees
(project archives, five years of Darshan logs).  These generators build
statistically similar synthetic trees: lognormal file sizes (the canonical
HPC file-size distribution) spread over nested directories.
"""

from __future__ import annotations

import numpy as np

from repro.storage.filesystem import FileEntry

__all__ = ["lognormal_tree", "uniform_files"]


def lognormal_tree(
    n_files: int,
    mean_size: float = 8 * 1024**2,
    sigma: float = 2.0,
    prefix: str = "/gpfs/proj/data",
    fanout: int = 64,
    seed: int = 0,
) -> list[FileEntry]:
    """A file tree with lognormal sizes averaging ``mean_size`` bytes.

    ``sigma=2`` gives the heavy right tail typical of project archives:
    most files are small, a few are enormous — the regime where per-file
    transfer overhead dominates sequential rsync (§IV-E).
    """
    if n_files < 0:
        raise ValueError(f"n_files must be >= 0, got {n_files}")
    rng = np.random.default_rng(seed)
    # Choose mu so that the distribution mean is mean_size:
    # E[X] = exp(mu + sigma^2/2).
    mu = np.log(mean_size) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n_files)
    sizes = np.maximum(sizes.astype(np.int64), 1)
    dirs = rng.integers(0, fanout, size=n_files)
    subdirs = rng.integers(0, fanout, size=n_files)
    return [
        FileEntry(f"{prefix}/d{dirs[i]:03d}/s{subdirs[i]:03d}/f{i:08d}.dat", int(sizes[i]))
        for i in range(n_files)
    ]


def uniform_files(
    n_files: int, size: int, prefix: str = "/data", suffix: str = ".bin"
) -> list[FileEntry]:
    """``n_files`` equal-sized files (simple workloads and tests)."""
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    return [FileEntry(f"{prefix}/f{i:08d}{suffix}", size) for i in range(n_files)]
