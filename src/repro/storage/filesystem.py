"""Simulated filesystems: shared parallel FS (Lustre) and node-local NVMe.

A :class:`Filesystem` combines

* a read and a write :class:`~repro.sim.resources.FairShareLink`
  (processor-sharing bandwidth, optionally flow-capped), and
* a :class:`~repro.sim.resources.RateStation` for metadata operations
  (create/stat/unlink), which is what actually melts under "writing small
  files to Lustre" — the anti-pattern the paper's NVMe staging avoids,

plus a lightweight namespace (path → size) so dataset-level workflows
(rsync trees, Darshan archives) can enumerate real file lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.sim.kernel import Environment, Event
from repro.sim.resources import FairShareLink, RateStation

__all__ = ["FileEntry", "Filesystem", "make_lustre", "make_nvme"]

_GB = 1024**3


@dataclass(frozen=True)
class FileEntry:
    """One file in a simulated namespace."""

    path: str
    size: int  # bytes

    def __post_init__(self) -> None:
        if self.size < 0:
            raise StorageError(f"negative file size: {self.size}")


class Filesystem:
    """A bandwidth + metadata model with a flat path namespace."""

    def __init__(
        self,
        env: Environment,
        name: str,
        read_bw: float,
        write_bw: float,
        metadata_rate: float = 1e9,
        max_flows: Optional[int] = None,
    ):
        self.env = env
        self.name = name
        self.read_link = FairShareLink(env, read_bw, max_flows=max_flows, name=f"{name}:read")
        self.write_link = FairShareLink(env, write_bw, max_flows=max_flows, name=f"{name}:write")
        self.metadata = RateStation(env, metadata_rate, name=f"{name}:mds")
        self._files: dict[str, int] = {}
        #: Counters for I/O accounting (the "fewer Lustre hits" claim).
        self.n_reads = 0
        self.n_writes = 0
        self.n_metadata_ops = 0

    # -- namespace ------------------------------------------------------------
    def add_file(self, path: str, size: int) -> None:
        """Register a file without simulating I/O (dataset setup)."""
        if size < 0:
            raise StorageError(f"negative file size: {size}")
        self._files[path] = size

    def add_files(self, entries: Iterable[FileEntry]) -> None:
        """Bulk-register files."""
        for e in entries:
            self.add_file(e.path, e.size)

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> int:
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"{self.name}: no such file {path!r}") from None

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise StorageError(f"{self.name}: cannot remove missing {path!r}")
        del self._files[path]

    def list_files(self, prefix: str = "") -> Iterator[FileEntry]:
        """All files under ``prefix`` (sorted for determinism)."""
        for path in sorted(self._files):
            if path.startswith(prefix):
                yield FileEntry(path, self._files[path])

    @property
    def total_bytes(self) -> int:
        """Sum of all registered file sizes."""
        return sum(self._files.values())

    @property
    def file_count(self) -> int:
        return len(self._files)

    # -- simulated I/O ----------------------------------------------------------
    def read(self, nbytes: float, weight: float = 1.0) -> Event:
        """Stream ``nbytes`` from the filesystem (shares read bandwidth)."""
        self.n_reads += 1
        return self.read_link.transfer(nbytes, weight=weight)

    def write(self, nbytes: float, weight: float = 1.0) -> Event:
        """Stream ``nbytes`` to the filesystem (shares write bandwidth)."""
        self.n_writes += 1
        return self.write_link.transfer(nbytes, weight=weight)

    def metadata_op(self, count: float = 1.0) -> Event:
        """Perform ``count`` metadata operations (serialized at the MDS)."""
        self.n_metadata_ops += int(count)
        return self.metadata.serve(count)

    def create(self, path: str, size: int):
        """Simulated file creation: one metadata op + a data write.

        A generator — use as ``yield from fs.create(...)`` inside a sim
        process.
        """
        yield self.metadata_op()
        yield self.write(size)
        self.add_file(path, size)


def make_lustre(
    env: Environment,
    read_bw: float = 5e12,
    write_bw: float = 5e12,
    metadata_rate: float = 50_000.0,
    max_flows: int = 512,
    name: str = "lustre",
) -> Filesystem:
    """A site-wide Lustre: huge aggregate bandwidth, finite MDS, flow cap."""
    return Filesystem(env, name, read_bw, write_bw, metadata_rate, max_flows)


def make_nvme(
    env: Environment,
    read_bw: float = 5.5 * _GB,
    write_bw: float = 3.5 * _GB,
    name: str = "nvme",
) -> Filesystem:
    """A node-local NVMe: private bandwidth, effectively free metadata."""
    return Filesystem(env, name, read_bw, write_bw, metadata_rate=1e6, max_flows=None)
