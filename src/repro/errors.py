"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class InterruptError(SimulationError):
    """Raised inside a simulated process when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class TemplateError(ReproError):
    """Raised for malformed command templates or replacement strings."""


class InputSourceError(ReproError):
    """Raised for malformed or inconsistent input-source specifications."""


class OptionsError(ReproError):
    """Raised for invalid or conflicting engine options."""


class HaltError(ReproError):
    """Raised when a ``--halt`` policy stops the run early.

    Mirrors GNU Parallel's behaviour of ``--halt now,fail=1`` and friends:
    the run terminates and the exit status reflects the failing job.
    """

    def __init__(self, message: str, exit_code: int = 1):
        super().__init__(message)
        self.exit_code = exit_code


class BackendError(ReproError):
    """Raised when an execution backend cannot run a job."""


class StorageError(ReproError):
    """Raised for filesystem-model misuse (missing paths, double create)."""


class ContainerError(ReproError):
    """Raised when a simulated container launch fails.

    The ``reason`` attribute names the failure mode (e.g. ``"user_namespace"``,
    ``"db_lock"``, ``"setgid"``, ``"tmpdir"``) matching the Podman-HPC
    reliability issues reported in the paper.
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


class SlurmError(ReproError):
    """Raised for scheduler-model misuse (bad allocation, unknown node)."""
