"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class InterruptError(SimulationError):
    """Raised inside a simulated process when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class TemplateError(ReproError):
    """Raised for malformed command templates or replacement strings."""


class InputSourceError(ReproError):
    """Raised for malformed or inconsistent input-source specifications."""


class OptionsError(ReproError):
    """Raised for invalid or conflicting engine options."""


class HaltError(ReproError):
    """Raised when a ``--halt`` policy stops the run early.

    Mirrors GNU Parallel's behaviour of ``--halt now,fail=1`` and friends:
    the run terminates and the exit status reflects the failing job.
    """

    def __init__(self, message: str, exit_code: int = 1):
        super().__init__(message)
        self.exit_code = exit_code


class BackendError(ReproError):
    """Raised when an execution backend cannot run a job."""


class StorageError(ReproError):
    """Raised for filesystem-model misuse (missing paths, double create)."""


class TransportError(ReproError):
    """Raised when a remote-execution transport fails at the *host* level.

    Distinct from a job failing (nonzero exit), which is a result, not an
    exception: a :class:`TransportError` means the host could not be
    reached or the connection died, so the job should be re-placed on a
    different host.  ``phase`` names where it broke (``"connect"``,
    ``"execute"``, ``"transfer"``, ``"return"``, ``"cleanup"``).
    """

    def __init__(self, message: str, phase: str = "execute"):
        super().__init__(message)
        self.phase = phase


class StagingError(ReproError):
    """Raised when file staging fails for *job-local* reasons.

    A missing ``--transferfile`` source or an absent ``--return`` output is
    the job's problem, not the host's: the job fails, the host stays
    healthy, and no re-placement happens.
    """


class ContainerError(ReproError):
    """Raised when a simulated container launch fails.

    The ``reason`` attribute names the failure mode (e.g. ``"user_namespace"``,
    ``"db_lock"``, ``"setgid"``, ``"tmpdir"``) matching the Podman-HPC
    reliability issues reported in the paper.
    """

    def __init__(self, message: str, reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


class SlurmError(ReproError):
    """Raised for scheduler-model misuse (bad allocation, unknown node)."""
