"""Stochastic delay models: allocation readiness and straggler nodes.

Fig. 1's tail behaviour ("greater variance ... in 9,000-node runs due to
outlier nodes, possibly caused by allocation delays, NVMe availability
delays, and I/O delays") is reproduced by two mechanisms:

* **allocation readiness** — nodes in a fresh Slurm allocation become
  ready at slightly different times (gamma-distributed, a few seconds);
* **stragglers** — with a small per-node probability, a node suffers a
  heavy-tailed (lognormal) extra delay: a slow NVMe mount, a cold image
  cache, an I/O hiccup.  Above the machine's ``contention_threshold``
  node count the straggler probability scales up with the fraction of the
  machine in use, reflecting shared-resource contention at near-full-scale
  runs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machines import MachineSpec

__all__ = ["allocation_delays", "straggler_delays", "node_ready_times"]


def allocation_delays(
    spec: MachineSpec, n_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-node readiness delay (seconds) when an allocation starts.

    Gamma(shape=4) around the machine's mean — always positive, mildly
    right-skewed, matching launch-jitter measurements on production
    systems.  The mean grows with the fraction of the machine requested
    (bigger allocations take longer to assemble, image, and mount NVMe
    on): ``mean * (1 + n/total)``, so a full-machine Frontier job sees
    roughly double the per-node readiness spread of a small one — the
    mechanism behind Fig. 1's medians sitting near a minute at scale.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    shape = 4.0
    mean = spec.alloc_delay_mean * (1.0 + n_nodes / spec.total_nodes)
    scale = mean / shape
    return rng.gamma(shape, scale, size=n_nodes)


def straggler_delays(
    spec: MachineSpec, n_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-node extra delay (seconds); zero for non-stragglers.

    The straggler probability grows once the run uses more of the machine
    than ``contention_threshold`` nodes: at 9,000 of 9,408 nodes even rare
    per-node events are near-certain to appear somewhere, and shared
    infrastructure (Lustre, the NVMe provisioning path) adds pressure.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    prob = spec.straggler_prob
    if n_nodes >= spec.contention_threshold and spec.contention_threshold > 0:
        # Contention multiplier: 1x at the threshold, growing with the
        # fraction of the machine in use beyond it.
        overshoot = (n_nodes - spec.contention_threshold) / max(
            spec.total_nodes - spec.contention_threshold, 1
        )
        prob = prob * (1.0 + 3.0 * overshoot)
    hits = rng.random(n_nodes) < prob
    delays = np.zeros(n_nodes)
    n_hits = int(hits.sum())
    if n_hits:
        delays[hits] = rng.lognormal(
            mean=np.log(spec.straggler_scale), sigma=spec.straggler_sigma, size=n_hits
        )
    return delays


def node_ready_times(
    spec: MachineSpec, n_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    """Absolute per-node ready times (s after allocation start)."""
    return allocation_delays(spec, n_nodes, rng) + straggler_delays(spec, n_nodes, rng)
