"""A simulated machine: nodes + shared Lustre + deterministic RNG streams."""

from __future__ import annotations

from typing import Optional

from repro.cluster.machines import MachineSpec
from repro.cluster.node import SimNode
from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.monitor import Monitor
from repro.sim.random import RngRegistry
from repro.storage.filesystem import Filesystem, make_lustre

__all__ = ["SimMachine"]


class SimMachine:
    """A machine instance bound to one simulation environment.

    Nodes are created lazily (``machine.node(i)``) so that a 9,408-node
    Frontier model costs nothing until an experiment actually touches a
    node — experiments at 9,000 nodes create 9,000 node objects, no more.
    """

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        seed: int = 0,
        with_lustre: bool = True,
    ):
        self.env = env
        self.spec = spec
        self.rng_registry = RngRegistry(seed)
        self.monitor = Monitor()
        self.lustre: Optional[Filesystem] = (
            make_lustre(
                env,
                read_bw=spec.pfs_read_bw,
                write_bw=spec.pfs_write_bw,
                metadata_rate=spec.pfs_metadata_rate,
                max_flows=spec.pfs_max_flows,
                name=f"{spec.name}:lustre",
            )
            if with_lustre
            else None
        )
        self._nodes: dict[int, SimNode] = {}

    def node(self, index: int) -> SimNode:
        """Node ``index`` (0-based), created on first use."""
        if not 0 <= index < self.spec.total_nodes:
            raise SimulationError(
                f"node index {index} out of range for {self.spec.name} "
                f"({self.spec.total_nodes} nodes)"
            )
        node = self._nodes.get(index)
        if node is None:
            node = SimNode(
                self.env,
                self.spec.node,
                name=f"{self.spec.name}-{index:05d}",
                rng=self.rng_registry.stream(f"node:{index}"),
                lustre=self.lustre,
            )
            self._nodes[index] = node
        return node

    def nodes(self, count: int) -> list[SimNode]:
        """The first ``count`` nodes (an allocation's worth)."""
        return [self.node(i) for i in range(count)]

    @property
    def instantiated_nodes(self) -> int:
        """How many node objects exist so far."""
        return len(self._nodes)
