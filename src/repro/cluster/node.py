"""A simulated compute node: cores, GPUs, fork path, NVMe, container runtimes.

The node is where all the launch-rate physics lives:

* ``cores`` — a counted :class:`~repro.sim.resources.Resource`; a running
  task holds one core (hardware thread) for its duration;
* ``fork_station`` — the kernel's process-start path, a
  :class:`~repro.sim.resources.RateStation` at the node's ``fork_rate``
  (≈6,400/s on the paper's Perlmutter node);
* ``runtime_station(runtime)`` — per-container-runtime serialization
  (Shifter's image setup at ~5,200/s, Podman-HPC's database lock at
  ~65/s), created lazily per runtime;
* ``gpus`` — a :class:`~repro.gpu.GpuPool` enforcing the isolation
  invariant (two concurrent claims on one device raise);
* ``nvme`` — a private :class:`~repro.storage.Filesystem`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.machines import NodeSpec
from repro.containers.runtime import ContainerRuntime
from repro.gpu.device import GpuPool
from repro.sim.kernel import Environment, Event
from repro.sim.resources import RateStation, Resource
from repro.storage.filesystem import Filesystem, make_nvme

__all__ = ["SimNode"]


class SimNode:
    """One compute node inside a simulation."""

    def __init__(
        self,
        env: Environment,
        spec: NodeSpec,
        name: str,
        rng: np.random.Generator,
        lustre: Optional[Filesystem] = None,
    ):
        self.env = env
        self.spec = spec
        self.name = name
        self.rng = rng
        self.cores = Resource(env, spec.cores)
        self.gpus = GpuPool(spec.gpus)
        self.fork_station = RateStation(env, spec.fork_rate, name=f"{name}:fork")
        self.nvme = make_nvme(
            env,
            read_bw=spec.nvme_read_bw,
            write_bw=spec.nvme_write_bw,
            name=f"{name}:nvme",
        )
        #: The shared parallel filesystem this node mounts (may be None for
        #: single-node stress tests that never touch Lustre).
        self.lustre = lustre
        self._runtime_stations: dict[str, RateStation] = {}
        #: Launches currently in flight (for container failure models).
        self.launches_in_flight = 0
        #: Counters.
        self.tasks_completed = 0
        self.launch_failures: dict[str, int] = {}

    def runtime_station(self, runtime: ContainerRuntime) -> Optional[RateStation]:
        """The node's serialization point for ``runtime`` (None if lock-free)."""
        if runtime.serial_rate is None:
            return None
        station = self._runtime_stations.get(runtime.name)
        if station is None:
            station = RateStation(
                self.env, runtime.serial_rate, name=f"{self.name}:{runtime.name}"
            )
            self._runtime_stations[runtime.name] = station
        return station

    def fork(self) -> Event:
        """One pass through the kernel process-start path."""
        return self.fork_station.serve()

    def record_launch_failure(self, mode: str) -> None:
        """Count a failed container launch by failure mode."""
        self.launch_failures[mode] = self.launch_failures.get(mode, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.name} cores={self.spec.cores} gpus={self.spec.gpus}>"
