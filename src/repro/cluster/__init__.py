"""Simulated cluster substrate: machine specs, nodes, variability models."""

from repro.cluster.machine import SimMachine
from repro.cluster.machines import (
    DTN_CLUSTER,
    DTN_NODE,
    ENGINE_DISPATCH_RATE,
    FRONTIER,
    FRONTIER_NODE,
    NODE_FORK_RATE,
    PERLMUTTER_CPU,
    PERLMUTTER_CPU_NODE,
    PODMAN_LAUNCH_RATE,
    SHIFTER_LAUNCH_RATE,
    MachineSpec,
    NodeSpec,
)
from repro.cluster.node import SimNode
from repro.cluster.variability import (
    allocation_delays,
    node_ready_times,
    straggler_delays,
)

__all__ = [
    "SimMachine",
    "SimNode",
    "MachineSpec",
    "NodeSpec",
    "FRONTIER",
    "FRONTIER_NODE",
    "PERLMUTTER_CPU",
    "PERLMUTTER_CPU_NODE",
    "DTN_CLUSTER",
    "DTN_NODE",
    "ENGINE_DISPATCH_RATE",
    "NODE_FORK_RATE",
    "SHIFTER_LAUNCH_RATE",
    "PODMAN_LAUNCH_RATE",
    "allocation_delays",
    "node_ready_times",
    "straggler_delays",
]
