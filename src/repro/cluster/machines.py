"""Machine presets and calibration constants.

Every constant here is traceable to a number the paper (or its cited
references) reports.  The simulator's job is to reproduce the *shape* of
the paper's figures from these first-principles rates, so keeping them in
one annotated module is the core of the calibration story.

Calibration sources
-------------------
* ``ENGINE_DISPATCH_RATE`` = 470 jobs/s — §III "Stress Tests": "a single
  instance of GNU Parallel can launch approximately 470 processes per
  second".
* ``NODE_FORK_RATE`` = 6,400 jobs/s — same section: "Multiple parallel
  instances ... with an upper bound of approximately 6,400 processes per
  second" (the node-wide kernel fork/exec ceiling).
* ``SHIFTER_LAUNCH_RATE`` = 5,200 launches/s — §III "Containers": Shifter
  ceiling, "startup overhead of only 19% compared to bare metal"
  (1 − 5200/6400 = 18.75%).
* ``PODMAN_LAUNCH_RATE`` = 65 launches/s — §III: Podman-HPC ceiling, two
  orders of magnitude below Shifter, with reliability failures at scale.
* Frontier node: 64 dual-threaded cores = 128 schedulable CPUs, 8
  schedulable GPUs (MI250X GCDs) — §III "Scalability Runs".
* Perlmutter CPU node: 256 CPU threads — §III: "Using 256 CPU threads on a
  Perlmutter CPU-only compute node, full utilization is achieved if tasks
  run for at least 545 milliseconds" (256/470 ≈ 0.545 s) and "tasks as
  short as 40 milliseconds" with many instances (256/6400 = 0.040 s).
* Frontier scale: up to 9,000 nodes = 96% of Frontier (§III), i.e. 9,408
  total.
* Darshan pipeline (§IV-B): one dataset processes in 86 min from Lustre
  and 68 min from NVMe; the NVMe/Lustre effective-throughput ratio for
  that read-heavy workload is therefore 86/68 ≈ 1.26.
* DTN transfer (§IV-E): 2,385 Mb/s measured per DTN node with 32 rsync
  streams; 8-node cluster = 256-way transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ENGINE_DISPATCH_RATE",
    "NODE_FORK_RATE",
    "SHIFTER_LAUNCH_RATE",
    "PODMAN_LAUNCH_RATE",
    "NodeSpec",
    "MachineSpec",
    "FRONTIER_NODE",
    "PERLMUTTER_CPU_NODE",
    "DTN_NODE",
    "FRONTIER",
    "PERLMUTTER_CPU",
    "DTN_CLUSTER",
    "fork_rate_from_curve",
]

from repro.constants import (  # noqa: F401  (re-exported calibration rates)
    ENGINE_DISPATCH_RATE,
    NODE_FORK_RATE,
    PODMAN_LAUNCH_RATE,
    SHIFTER_LAUNCH_RATE,
)

_MB = 1024 * 1024
_GB = 1024 * _MB


def fork_rate_from_curve(curve: "dict[str | int, float]") -> float:
    """Calibrate a node's fork-rate ceiling from a measured contention curve.

    ``curve`` maps concurrent-spawner count K to the *aggregate* spawn
    rate those K processes achieved (the ``fork_contention`` variant in
    ``benchmarks/bench_dispatch.py`` produces exactly this).  The node's
    fork-bandwidth ceiling — what :attr:`NodeSpec.fork_rate` models as a
    :class:`~repro.sim.resources.RateStation` — is the curve's peak
    aggregate: the paper's ~6,400/s is the flat top of its Fig. 3 curve,
    reached before K exhausts the cores.  On a 1-vCPU box the curve is
    flat-to-falling from K=1, so the peak correctly degenerates to the
    single-dispatcher ceiling.

    Usage::

        contention = bench_fork_contention()["curve"]
        node = NodeSpec(name="dev", cores=os.cpu_count(),
                        fork_rate=fork_rate_from_curve(
                            {k: v["aggregate_jobs_per_s"]
                             for k, v in contention.items()}))
    """
    if not curve:
        raise ValueError("empty fork-contention curve")
    rates = [float(v) for v in curve.values()]
    if any(r <= 0 for r in rates):
        raise ValueError(f"non-positive aggregate rate in curve: {curve}")
    return max(rates)


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute-node type."""

    name: str
    #: Schedulable CPU threads (GNU Parallel slots at -j<cores>).
    cores: int
    #: Schedulable GPU devices (8 GCDs on Frontier).
    gpus: int = 0
    #: Node-wide process-start ceiling (forks/s).
    fork_rate: float = NODE_FORK_RATE
    #: Node-local NVMe bandwidths (bytes/s).
    nvme_read_bw: float = 5.0 * _GB
    nvme_write_bw: float = 3.0 * _GB
    #: NIC bandwidth (bytes/s) for data-motion modeling.
    nic_bw: float = 25.0 * _GB / 8  # 25 Gb/s Slingshot-ish per direction

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"node must have >= 1 core, got {self.cores}")
        if self.fork_rate <= 0:
            raise ValueError("fork_rate must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine: homogeneous nodes + shared storage."""

    name: str
    node: NodeSpec
    total_nodes: int
    #: Aggregate parallel-filesystem bandwidths (bytes/s).
    pfs_read_bw: float = 5.0e12
    pfs_write_bw: float = 5.0e12
    #: Concurrent client I/O flows the PFS serves before queueing
    #: (models per-OST RPC limits; keeps the fluid model tractable too).
    pfs_max_flows: int = 512
    #: Metadata operations/s (file create/stat) at the MDS.
    pfs_metadata_rate: float = 50_000.0
    #: Mean per-node readiness delay when an allocation starts (s).
    alloc_delay_mean: float = 2.0
    #: Straggler model: per-node probability of an outlier delay, and the
    #: lognormal parameters of that delay (seconds).  Calibrated against
    #: Fig. 1's 9,000-node tail (max 561 s for 1.152 M tasks).
    straggler_prob: float = 0.004
    straggler_sigma: float = 1.0
    straggler_scale: float = 60.0
    #: Node counts above which extra contention-driven stragglers appear
    #: (the paper saw outliers at >= 7,000 nodes).
    contention_threshold: int = 7000

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValueError("machine needs at least one node")


#: One Frontier compute node: 64 dual-threaded EPYC cores (128 threads),
#: 8 schedulable MI250X GCDs, ~2×1.9 TB NVMe.
FRONTIER_NODE = NodeSpec(
    name="frontier-node",
    cores=128,
    gpus=8,
    fork_rate=NODE_FORK_RATE,
    nvme_read_bw=5.5 * _GB,
    nvme_write_bw=3.5 * _GB,
)

#: One Perlmutter CPU-only node: 2×64-core EPYC, 256 threads, no GPUs.
PERLMUTTER_CPU_NODE = NodeSpec(
    name="perlmutter-cpu-node",
    cores=256,
    gpus=0,
    fork_rate=NODE_FORK_RATE,
)

#: One scheduled Data Transfer Node (DTN): modest core count, fast NICs.
DTN_NODE = NodeSpec(
    name="dtn-node",
    cores=32,
    gpus=0,
    nic_bw=2 * 12.5 * _GB / 8,  # dual 100GbE-class links, bytes/s
)

#: OLCF Frontier (9,408 nodes; the paper used up to 9,000 = 96%).
FRONTIER = MachineSpec(
    name="frontier",
    node=FRONTIER_NODE,
    total_nodes=9408,
    pfs_read_bw=9.0e12,   # Orion-class aggregate
    pfs_write_bw=4.5e12,
    # Fig. 1 calibration: per-node readiness averages ~30 s on small
    # allocations, approaching ~60 s at full scale (median completion
    # "less than a minute", p75 "less than two minutes" at 8,000 nodes);
    # the straggler tail produces the 561 s maximum at 9,000 nodes.
    alloc_delay_mean=30.0,
    straggler_prob=0.002,
    straggler_scale=70.0,
    straggler_sigma=0.75,
)

#: NERSC Perlmutter CPU partition (stress tests use a single node).
PERLMUTTER_CPU = MachineSpec(
    name="perlmutter-cpu",
    node=PERLMUTTER_CPU_NODE,
    total_nodes=3072,
    pfs_read_bw=5.0e12,
    pfs_write_bw=5.0e12,
)

#: The 8-node scheduled DTN cluster from §IV-E.
DTN_CLUSTER = MachineSpec(
    name="dtn-cluster",
    node=DTN_NODE,
    total_nodes=8,
    pfs_read_bw=1.0e12,
    pfs_write_bw=1.0e12,
    alloc_delay_mean=1.0,
    straggler_prob=0.0,
)
