"""The Fig. 1 payload: "record the hostname and timestamp to stdout".

Both forms are provided:

* :func:`payload` — the real Python callable (used with the engine's
  callable backend locally);
* :data:`PAYLOAD_SHELL` — the shell one-liner form (used with the
  subprocess backend, matching the paper's ``payload.sh``);
* :func:`payload_duration_sampler` — the simulated-duration model: a few
  milliseconds of shell startup + clock/hostname work, lognormally
  jittered, as measured for `/bin/sh -c 'hostname; date +%s.%N'`.
"""

from __future__ import annotations

import socket
import time

import numpy as np

__all__ = [
    "payload",
    "PAYLOAD_SHELL",
    "payload_duration_sampler",
    "PAYLOAD_MEAN_S",
    "PAYLOAD_STDOUT_BYTES",
]

#: The shell form from the paper's driver (Listing 1's ./payload.sh {}).
PAYLOAD_SHELL = 'echo "$(hostname) $(date +%s.%N) {}"'

#: Mean simulated payload duration (s): fork/exec of a shell plus two
#: trivial commands.
PAYLOAD_MEAN_S = 0.012

#: Bytes of stdout one payload task emits (hostname + timestamp + arg).
PAYLOAD_STDOUT_BYTES = 48


def payload(tag: str = "") -> str:
    """Run the payload for real: returns ``"<hostname> <unixtime> <tag>"``."""
    return f"{socket.gethostname()} {time.time():.9f} {tag}".rstrip()


def payload_duration_sampler(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` simulated payload durations (seconds).

    Lognormal around :data:`PAYLOAD_MEAN_S` with sigma 0.35 — short tasks
    with occasional slow forks, always positive.
    """
    sigma = 0.35
    mu = np.log(PAYLOAD_MEAN_S) - sigma**2 / 2
    return rng.lognormal(mean=mu, sigma=sigma, size=n)
