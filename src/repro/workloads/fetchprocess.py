"""The §IV-A fetch-process workflow: producer/consumer through a queue file.

The paper's motivating example overlaps I/O with compute:

* ``getdata`` downloads 8 regions' satellite images every cycle (GNU
  Parallel ``-j8``) and appends the batch timestamp to ``q.proc``;
* ``procdata`` runs ``tail -n+0 -f q.proc | parallel -k -j8 convert ...``,
  computing a brightness statistic per batch as soon as it lands.

We reproduce all the moving parts with local substitutes (no network in
this environment; DESIGN.md documents the substitution):

* :func:`synth_region_image` generates a synthetic "GOES sector" image
  deterministically from (region, timestamp);
* :func:`fetch_batch` plays ``getdata``'s inner ``parallel -j8 curl``:
  it maps :func:`synth_region_image` over the regions with the real
  engine and writes ``<region>_<ts>.npy`` files;
* :class:`FileQueue` + :func:`follow` give ``q.proc`` / ``tail -f``
  semantics across threads or processes;
* :func:`brightness_metric` is the ImageMagick one-liner's statistic
  (``-fuzz 10% ... -format "%[fx:100*mean]"``): the percentage of
  non-white pixels' mean intensity, computed with NumPy.
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.engine import Parallel

__all__ = [
    "REGIONS",
    "synth_region_image",
    "fetch_batch",
    "brightness_metric",
    "process_batch",
    "FileQueue",
    "follow",
]

#: The 8 GOES-16 sectors the paper's getdata script downloads.
REGIONS = ("cgl", "ne", "nr", "se", "sp", "sr", "pr", "pnw")


def synth_region_image(
    region: str, ts: int, size: int = 64, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """A synthetic grayscale sector image in [0, 1], deterministic in
    (region, ts) unless an explicit ``rng`` is supplied.

    Structure: a smooth 'cloud field' (low-frequency cosine mix) plus
    noise, so brightness statistics vary by region and time the way real
    imagery does.
    """
    if rng is None:
        seed = (hash_region(region) * 1_000_003 + ts) % (2**32)
        rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size] / size
    phase = rng.uniform(0, 2 * np.pi, size=3)
    field = (
        0.5
        + 0.25 * np.cos(2 * np.pi * xx + phase[0])
        + 0.15 * np.sin(4 * np.pi * yy + phase[1])
        + 0.10 * np.cos(6 * np.pi * (xx + yy) + phase[2])
    )
    noise = rng.normal(0, 0.05, size=(size, size))
    return np.clip(field + noise, 0.0, 1.0)


def hash_region(region: str) -> int:
    """Stable small hash of a region code (Python's hash() is salted)."""
    h = 0
    for c in region:
        h = (h * 131 + ord(c)) % 1_000_000_007
    return h


def fetch_batch(
    data_dir: str,
    ts: int,
    regions: Sequence[str] = REGIONS,
    jobs: int = 8,
    size: int = 64,
) -> list[str]:
    """One ``getdata`` cycle: fetch all regions concurrently, save to disk.

    Uses the real engine (callable backend, ``-j8``) exactly as the paper
    uses ``parallel -j8 curl``; returns the written paths.
    """
    os.makedirs(data_dir, exist_ok=True)

    def fetch_one(region: str) -> str:
        img = synth_region_image(region, ts, size=size)
        path = os.path.join(data_dir, f"{region}_{ts}.npy")
        np.save(path, img)
        return path

    summary = Parallel(fetch_one, jobs=jobs).run(list(regions))
    if summary.n_failed:
        raise RuntimeError(f"{summary.n_failed} fetches failed")
    return [str(r.value) for r in summary.sorted_results()]


def brightness_metric(image: np.ndarray, fuzz: float = 0.10) -> float:
    """The convert one-liner's statistic: 100 * mean of the thresholded image.

    Pixels within ``fuzz`` of white are treated as white (masked out,
    value 0 — the paper's ``-fuzz 10% -opaque white`` + fill-black step);
    the result is 100 × the mean of what remains.
    """
    img = np.asarray(image, dtype=float)
    masked = np.where(img >= 1.0 - fuzz, 0.0, img)
    return float(100.0 * masked.mean())


def process_batch(
    data_dir: str, ts: str, regions: Sequence[str] = REGIONS
) -> dict[str, float]:
    """One ``procdata`` work item: brightness per region for batch ``ts``."""
    out: dict[str, float] = {}
    for region in regions:
        path = os.path.join(data_dir, f"{region}_{ts}.npy")
        out[region] = brightness_metric(np.load(path))
    return out


class FileQueue:
    """The ``q.proc`` queue file: append-only lines, durable across processes."""

    def __init__(self, path: str):
        self.path = path
        open(path, "a", encoding="utf-8").close()  # touch q.proc

    def append(self, item: str) -> None:
        """Append one line (atomic for line-sized writes on POSIX)."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(f"{item}\n")
            fh.flush()
            os.fsync(fh.fileno())


def follow(
    path: str,
    poll_s: float = 0.02,
    stop: Optional[callable] = None,
    timeout_s: float = 60.0,
) -> Iterator[str]:
    """``tail -n+0 -f`` semantics: yield every line, then wait for more.

    Stops when ``stop()`` returns True *and* the file is fully drained,
    or after ``timeout_s`` without progress (a safety net so tests can
    never hang).
    """
    last_progress = time.monotonic()
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            line = fh.readline()
            if line.endswith("\n"):
                last_progress = time.monotonic()
                yield line.rstrip("\n")
                continue
            if stop is not None and stop():
                return
            if time.monotonic() - last_progress > timeout_s:
                raise TimeoutError(f"follow({path}): no new lines for {timeout_s}s")
            time.sleep(poll_s)
