"""The paper's application workloads (§IV), real and simulated forms."""

from repro.workloads.celeritas import (
    CELERITAS_TASK_MEAN_S,
    TransportConfig,
    TransportResult,
    celeritas_duration_sampler,
    run_input_file,
    transport,
    write_input_file,
)
from repro.workloads.darshan import (
    DarshanPipelineConfig,
    DarshanRecord,
    PipelineReport,
    aggregate_records,
    darshan_arch,
    generate_archive,
    generate_darshan_log,
    parse_darshan_log,
    run_staged_pipeline,
)
from repro.workloads.fetchprocess import (
    REGIONS,
    FileQueue,
    brightness_metric,
    fetch_batch,
    follow,
    process_batch,
    synth_region_image,
)
from repro.workloads.forge import curate_corpus  # noqa: E402
from repro.workloads.forge_dedup import deduplicate, find_duplicate_pairs, minhash_signature, shingles
from repro.workloads.generator import bimodal, constant, lognormal, uniform, with_stragglers
from repro.workloads.forge import (
    CuratedArticle,
    RawArticle,
    clean_text,
    curate_article,
    curation_stats,
    extract_abstract,
    extract_body,
    is_english,
    synthetic_corpus,
)
from repro.workloads.payload import (
    PAYLOAD_MEAN_S,
    PAYLOAD_SHELL,
    PAYLOAD_STDOUT_BYTES,
    payload,
    payload_duration_sampler,
)

__all__ = [
    # payload
    "payload",
    "PAYLOAD_SHELL",
    "PAYLOAD_MEAN_S",
    "PAYLOAD_STDOUT_BYTES",
    "payload_duration_sampler",
    # celeritas
    "TransportConfig",
    "TransportResult",
    "transport",
    "write_input_file",
    "run_input_file",
    "celeritas_duration_sampler",
    "CELERITAS_TASK_MEAN_S",
    # darshan
    "DarshanRecord",
    "generate_darshan_log",
    "generate_archive",
    "parse_darshan_log",
    "aggregate_records",
    "darshan_arch",
    "DarshanPipelineConfig",
    "PipelineReport",
    "run_staged_pipeline",
    # forge
    "RawArticle",
    "CuratedArticle",
    "extract_abstract",
    "extract_body",
    "is_english",
    "clean_text",
    "curate_article",
    "synthetic_corpus",
    "curation_stats",
    # forge dedup + generators
    "curate_corpus",
    "deduplicate",
    "find_duplicate_pairs",
    "minhash_signature",
    "shingles",
    "bimodal",
    "constant",
    "lognormal",
    "uniform",
    "with_stragglers",
    # fetch-process
    "REGIONS",
    "synth_region_image",
    "fetch_batch",
    "brightness_metric",
    "process_batch",
    "FileQueue",
    "follow",
]
