"""Darshan log processing (§IV-B): synthetic logs, a real parser/aggregator,
and the staged NVMe-prefetch pipeline of Fig. 7.

Three layers:

1. **Log substrate** — Darshan [16] records per-job I/O counters.  We
   define a compact synthetic format ("DSYN1"), a generator producing
   statistically plausible archives (one file per job, grouped by month),
   and a real parser.
2. **The analysis task** — :func:`darshan_arch` is our ``darshan_arch.py
   <month> <app>``: aggregate one (month, app) slice of the archive into
   a summary JSON.  It is a plain callable/CLI so both Listing 4 (srun
   loop) and Listing 5 (engine one-liner) can drive it.
3. **The pipeline** — :func:`run_staged_pipeline` reproduces Fig. 7's
   five-stage workflow: process dataset k from NVMe while prefetching
   k+1 from Lustre and deleting k-1, with stage 1 processed directly from
   Lustre.  Returns per-stage timings and the all-Lustre baseline for the
   17%-improvement comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.sim.kernel import Environment
from repro.storage.filesystem import Filesystem

__all__ = [
    "DarshanRecord",
    "generate_darshan_log",
    "generate_archive",
    "parse_darshan_log",
    "aggregate_records",
    "darshan_arch",
    "DarshanPipelineConfig",
    "PipelineReport",
    "run_staged_pipeline",
]

_HEADER = "DSYN1"
_MODULES = ("POSIX", "MPIIO", "STDIO", "LUSTRE")
_APPS = ("climate_sim", "genomics_pipe", "cfd_solver")


@dataclass(frozen=True)
class DarshanRecord:
    """One per-job I/O summary record."""

    job_id: int
    app: str
    month: int
    nprocs: int
    module: str
    bytes_read: int
    bytes_written: int
    files_opened: int
    runtime_s: float

    def to_line(self) -> str:
        return "\t".join(
            [
                str(self.job_id),
                self.app,
                str(self.month),
                str(self.nprocs),
                self.module,
                str(self.bytes_read),
                str(self.bytes_written),
                str(self.files_opened),
                f"{self.runtime_s:.2f}",
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "DarshanRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) != 9:
            raise ReproError(f"malformed DSYN1 record: {line!r}")
        return cls(
            job_id=int(parts[0]),
            app=parts[1],
            month=int(parts[2]),
            nprocs=int(parts[3]),
            module=parts[4],
            bytes_read=int(parts[5]),
            bytes_written=int(parts[6]),
            files_opened=int(parts[7]),
            runtime_s=float(parts[8]),
        )


def generate_darshan_log(
    path: str, month: int, rng: np.random.Generator, n_jobs: int = 50
) -> list[DarshanRecord]:
    """Write one month's synthetic log file; returns its records."""
    if not 1 <= month <= 12:
        raise ReproError(f"month must be 1..12, got {month}")
    records = []
    for j in range(n_jobs):
        app = _APPS[int(rng.integers(0, len(_APPS)))]
        nprocs = int(2 ** rng.integers(0, 12))
        for module in _MODULES[: int(rng.integers(1, len(_MODULES) + 1))]:
            records.append(
                DarshanRecord(
                    job_id=month * 100_000 + j,
                    app=app,
                    month=month,
                    nprocs=nprocs,
                    module=module,
                    bytes_read=int(rng.lognormal(18, 2)),
                    bytes_written=int(rng.lognormal(17, 2)),
                    files_opened=int(rng.integers(1, 5000)),
                    # Two-decimal precision so the on-disk text roundtrips.
                    runtime_s=round(float(rng.lognormal(5, 1)), 2),
                )
            )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_HEADER + "\n")
        for rec in records:
            fh.write(rec.to_line() + "\n")
    return records


def generate_archive(
    root: str, months: Sequence[int] = range(1, 13), n_jobs: int = 50, seed: int = 0
) -> list[str]:
    """A year's archive: one ``month_MM.dsyn`` file per month under root."""
    os.makedirs(root, exist_ok=True)
    rng = np.random.default_rng(seed)
    paths = []
    for month in months:
        path = os.path.join(root, f"month_{month:02d}.dsyn")
        generate_darshan_log(path, month, rng, n_jobs=n_jobs)
        paths.append(path)
    return paths


def parse_darshan_log(path: str) -> list[DarshanRecord]:
    """Read one synthetic log; validates the header."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise ReproError(f"{path}: not a DSYN1 file (header {header!r})")
        return [DarshanRecord.from_line(line) for line in fh if line.strip()]


def aggregate_records(records: Sequence[DarshanRecord]) -> dict:
    """The per-slice analysis: totals, top module, read/write ratio."""
    if not records:
        return {
            "n_records": 0, "bytes_read": 0, "bytes_written": 0,
            "files_opened": 0, "top_module": None, "read_write_ratio": None,
        }
    by_module: dict[str, int] = {}
    br = bw = fo = 0
    for r in records:
        br += r.bytes_read
        bw += r.bytes_written
        fo += r.files_opened
        by_module[r.module] = by_module.get(r.module, 0) + r.bytes_read + r.bytes_written
    top = max(by_module, key=lambda k: by_module[k])
    return {
        "n_records": len(records),
        "bytes_read": br,
        "bytes_written": bw,
        "files_opened": fo,
        "top_module": top,
        "read_write_ratio": (br / bw) if bw else None,
    }


def darshan_arch(month: str, app: str, archive_dir: str, out_dir: str) -> str:
    """The per-task entry point (our ``darshan_arch.py <month> <app>``).

    Parses the month's log, filters to the app index (0-based into the
    synthetic app list), writes ``<out_dir>/summary_<month>_<app>.json``
    and returns that path.  string-typed month/app parameters match what the
    engine passes from ``::: {1..12} ::: {0..2}``.
    """
    month_i, app_i = int(month), int(app)
    if not 0 <= app_i < len(_APPS):
        raise ReproError(f"app index must be 0..{len(_APPS) - 1}, got {app}")
    path = os.path.join(archive_dir, f"month_{month_i:02d}.dsyn")
    records = [r for r in parse_darshan_log(path) if r.app == _APPS[app_i]]
    summary = aggregate_records(records)
    summary["month"] = month_i
    summary["app"] = _APPS[app_i]
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, f"summary_{month_i:02d}_{app_i}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh)
    return out_path


# ---------------------------------------------------------------------------
# Fig. 7: the five-stage staged-prefetch pipeline (simulated)
# ---------------------------------------------------------------------------

_GB = 1024**3


@dataclass(frozen=True)
class DarshanPipelineConfig:
    """Calibration of the Fig. 7 pipeline (defaults hit the paper's numbers).

    Processing one dataset = streaming it once from its filesystem plus
    CPU work.  With ``dataset_bytes`` at 1,320 GB, a ~1 GB/s effective
    per-client Lustre read and a 5.5 GB/s NVMe read:

    * Lustre stage ≈ 64 min compute + 22 min read ≈ 86 min (paper: 86),
    * NVMe stage ≈ 64 min compute + 4 min read ≈ 68 min (paper: 68).

    Prefetch copies run at ``copy_bw`` (GNU Parallel-driven rsync
    streams), finishing well inside a processing stage so they hide.
    """

    n_datasets: int = 5
    dataset_bytes: int = 1320 * _GB
    compute_s: float = 64 * 60.0
    lustre_client_bw: float = 1.0 * _GB
    copy_bw: float = 0.5 * _GB

    def __post_init__(self) -> None:
        if self.n_datasets < 1:
            raise ReproError("pipeline needs >= 1 dataset")


@dataclass
class PipelineReport:
    """Timings of a staged-pipeline run."""

    stage_times: list[float] = field(default_factory=list)
    total_time: float = 0.0
    baseline_all_lustre: float = 0.0
    prefetch_times: list[float] = field(default_factory=list)
    lustre_reads: int = 0

    @property
    def improvement(self) -> float:
        """Fractional time saved vs processing every stage from Lustre."""
        if self.baseline_all_lustre <= 0:
            return 0.0
        return 1.0 - self.total_time / self.baseline_all_lustre


def run_staged_pipeline(
    env: Environment,
    lustre: Filesystem,
    nvme: Filesystem,
    config: DarshanPipelineConfig = DarshanPipelineConfig(),
) -> PipelineReport:
    """Run Fig. 7's pipeline on the given (idle) environment to completion.

    Stage 1 processes dataset 0 straight from Lustre while dataset 1 is
    prefetched to NVMe; stages 2..N process from NVMe, prefetch the next
    dataset, and delete the previous one — three concurrent operations,
    exactly the paper's description.
    """
    report = PipelineReport()
    n = config.n_datasets
    for k in range(n):
        lustre.add_file(f"/lustre/darshan/ds{k}", config.dataset_bytes)

    ready: list = [env.event() for _ in range(n)]
    ready[0].succeed()  # dataset 0 is processed in place from Lustre

    def prefetch(k: int):
        # rsync-driven copy Lustre -> NVMe at the configured stream rate.
        start = env.now
        size = config.dataset_bytes
        yield env.all_of(
            [
                lustre.read(size, weight=1.0),
                nvme.write(size),
                env.timeout(size / config.copy_bw),
            ]
        )
        nvme.add_file(f"/nvme/darshan/ds{k}", size)
        report.prefetch_times.append(env.now - start)
        ready[k].succeed()

    def process(k: int, from_lustre: bool):
        start = env.now
        if from_lustre:
            report.lustre_reads += 1
            yield env.all_of(
                [
                    lustre.read(config.dataset_bytes),
                    env.timeout(config.dataset_bytes / config.lustre_client_bw),
                ]
            )
        else:
            yield nvme.read(config.dataset_bytes)
        yield env.timeout(config.compute_s)
        report.stage_times.append(env.now - start)

    def pipeline():
        start = env.now
        for k in range(n):
            ops = []
            if k + 1 < n:
                ops.append(env.process(prefetch(k + 1), name=f"prefetch{k+1}"))
            yield ready[k]
            ops.append(env.process(process(k, from_lustre=(k == 0)), name=f"proc{k}"))
            # Delete the previously processed dataset from NVMe (dataset 0
            # was processed in place on Lustre, so deletion starts at k=2).
            if k >= 2:
                nvme.remove(f"/nvme/darshan/ds{k - 1}")
            yield env.all_of(ops)
        report.total_time = env.now - start

    p = env.process(pipeline(), name="darshan-pipeline")
    env.run(until=p)
    # Baseline: every stage processed from Lustre, serially.
    lustre_stage = (
        config.dataset_bytes / config.lustre_client_bw + config.compute_s
    )
    report.baseline_all_lustre = n * lustre_stage
    return report
