"""FORGE data curation (§IV-C): the preprocessing pipeline of Fig. 8.

FORGE [18] trained foundation models on 200M+ scientific articles; the
curation stage "cleans and curates the raw publications data by extracting
abstracts and full texts and removing non-English language and other
extraneous characters".  This module implements that pipeline for real:

* :func:`extract_abstract` / :func:`extract_body` — section splitting;
* :func:`is_english` — a stopword + script heuristic language filter;
* :func:`clean_text` — control/markup/extraneous-character removal;
* :func:`curate_article` — the per-document task (what GNU Parallel maps
  over millions of files);
* :func:`synthetic_corpus` — a generator of raw articles with realistic
  defects (non-English documents, LaTeX debris, control characters,
  missing abstracts) for tests, examples and benchmarks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "RawArticle",
    "CuratedArticle",
    "extract_abstract",
    "extract_body",
    "is_english",
    "clean_text",
    "curate_article",
    "synthetic_corpus",
    "curation_stats",
]

_ENGLISH_STOPWORDS = frozenset(
    """the of and to in a is that for it as was with be by on not he his
    this are or at from have an they which one you were all her she there
    would their we him been has when who will no more if out so said what
    its about than into them can only other time new some could these two
    may then do first any my now such like our over man me even most""".split()
)

_CONTROL_RE = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")
_LATEX_RE = re.compile(r"\\[a-zA-Z]+(\{[^{}]*\})?|[{}$~^]")
_MULTISPACE_RE = re.compile(r"[ \t]+")
_ABSTRACT_RE = re.compile(r"^\s*abstract\s*$", re.IGNORECASE | re.MULTILINE)
_SECTION_RE = re.compile(
    r"^\s*(1\.?\s+)?(introduction|keywords|index terms)\s*$",
    re.IGNORECASE | re.MULTILINE,
)


@dataclass(frozen=True)
class RawArticle:
    """An uncurated publication record."""

    doc_id: str
    text: str


@dataclass(frozen=True)
class CuratedArticle:
    """A curation-pipeline output: clean abstract + body."""

    doc_id: str
    abstract: str
    body: str

    @property
    def n_tokens(self) -> int:
        """Whitespace token count (the training-data accounting unit)."""
        return len(self.abstract.split()) + len(self.body.split())


def extract_abstract(text: str) -> Optional[str]:
    """The text between an 'Abstract' heading and the next section heading.

    Returns None when no abstract heading exists (such documents are
    dropped by the pipeline, matching FORGE's curation rules).
    """
    m = _ABSTRACT_RE.search(text)
    if not m:
        return None
    rest = text[m.end():]
    stop = _SECTION_RE.search(rest)
    abstract = rest[: stop.start()] if stop else rest
    abstract = abstract.strip()
    return abstract or None


def extract_body(text: str) -> str:
    """Everything from the first section heading onward (or all the text)."""
    stop = _SECTION_RE.search(text)
    return text[stop.end():].strip() if stop else text.strip()


def is_english(text: str, min_stopword_rate: float = 0.08) -> bool:
    """Heuristic language ID: Latin-script ratio + English stopword rate.

    Documents dominated by non-Latin scripts fail immediately; otherwise
    at least ``min_stopword_rate`` of tokens must be common English
    stopwords.  On real corpora this two-signal heuristic is the standard
    cheap pre-filter before an expensive model-based pass.
    """
    if not text.strip():
        return False
    letters = [c for c in text if c.isalpha()]
    if not letters:
        return False
    latin = sum(1 for c in letters if c.isascii())
    if latin / len(letters) < 0.8:
        return False
    tokens = re.findall(r"[a-zA-Z']+", text.lower())
    if len(tokens) < 5:
        return False
    hits = sum(1 for t in tokens if t in _ENGLISH_STOPWORDS)
    return hits / len(tokens) >= min_stopword_rate


def clean_text(text: str) -> str:
    """Remove control characters, LaTeX debris, and collapse whitespace."""
    text = _CONTROL_RE.sub(" ", text)
    text = _LATEX_RE.sub(" ", text)
    text = _MULTISPACE_RE.sub(" ", text)
    lines = [ln.strip() for ln in text.splitlines()]
    return "\n".join(ln for ln in lines if ln)


def curate_article(article: RawArticle) -> Optional[CuratedArticle]:
    """The full per-document pipeline; None = document dropped.

    Drop rules (in order): not English; no abstract; abstract or body
    empty after cleaning.
    """
    if not is_english(article.text):
        return None
    abstract = extract_abstract(article.text)
    if abstract is None:
        return None
    abstract = clean_text(abstract)
    body = clean_text(extract_body(article.text))
    if not abstract or not body:
        return None
    return CuratedArticle(doc_id=article.doc_id, abstract=abstract, body=body)


_ENGLISH_WORDS = (
    "energy neutron flux detector plasma lattice quantum spectrum "
    "measurement simulation model analysis results experiment the of and "
    "to in that for with this are from which"
).split()

_CYRILLIC_WORDS = "энергия нейтрон поток детектор плазма решётка квант спектр измерение".split()


def synthetic_corpus(
    n_articles: int, seed: int = 0, english_fraction: float = 0.8,
    abstract_fraction: float = 0.9, noise_fraction: float = 0.5,
) -> list[RawArticle]:
    """Generate raw articles with controlled defect rates.

    ``english_fraction`` of documents are English; ``abstract_fraction``
    of those carry an Abstract section; ``noise_fraction`` get LaTeX
    debris and control characters injected.  Deterministic given ``seed``.
    """
    rng = np.random.default_rng(seed)
    articles = []
    for i in range(n_articles):
        english = rng.random() < english_fraction
        words = _ENGLISH_WORDS if english else _CYRILLIC_WORDS
        def para(n):
            return " ".join(str(rng.choice(words)) for _ in range(n))
        parts = [f"Title of document {i}", ""]
        if english and rng.random() < abstract_fraction:
            parts += ["Abstract", para(40), ""]
        parts += ["Introduction", para(200)]
        text = "\n".join(parts)
        if rng.random() < noise_fraction:
            text = text.replace(" ", " \\alpha{x} ", 3) + "\x07\x00"
        articles.append(RawArticle(doc_id=f"doc{i:06d}", text=text))
    return articles


def curate_corpus(
    articles: "list[RawArticle]",
    jobs: int = 8,
    dedup: bool = True,
    dedup_threshold: float = 0.8,
) -> "list[CuratedArticle]":
    """The full Fig. 8 preprocessing stage, parallelized with the engine.

    Maps :func:`curate_article` over the corpus with ``jobs`` concurrent
    workers (the paper's GNU Parallel role), then optionally drops
    near-duplicates (earliest survivor per cluster) using the MinHash
    pipeline in :mod:`repro.workloads.forge_dedup`.
    """
    from repro.core.engine import Parallel
    from repro.workloads.forge_dedup import deduplicate

    by_id = {a.doc_id: a for a in articles}

    def work(doc_id: str):
        return curate_article(by_id[doc_id])

    summary = Parallel(work, jobs=jobs).run([a.doc_id for a in articles])
    if summary.n_failed:
        raise RuntimeError(f"{summary.n_failed} curation task(s) crashed")
    curated = [r.value for r in summary.sorted_results() if r.value is not None]
    if not dedup or len(curated) < 2:
        return curated
    report = deduplicate(
        [c.abstract + "\n" + c.body for c in curated], threshold=dedup_threshold
    )
    return [curated[i] for i in report.kept_indices]


def curation_stats(
    outputs: list[Optional[CuratedArticle]],
) -> dict[str, float]:
    """Summary of a curation run: kept rate and token counts."""
    kept = [a for a in outputs if a is not None]
    return {
        "n_input": len(outputs),
        "n_kept": len(kept),
        "kept_rate": len(kept) / len(outputs) if outputs else 0.0,
        "total_tokens": sum(a.n_tokens for a in kept),
    }
