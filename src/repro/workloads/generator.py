"""Synthetic task-duration generators for workload studies.

Scaling and utilization results depend heavily on the task-duration
*distribution* — uniform bags behave nothing like straggler-heavy ones.
These samplers cover the canonical HT-HPC shapes; each has the signature
``(rng, n) -> np.ndarray`` expected by
:func:`~repro.driver.run_multinode_batch` and the batch model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "DurationSampler",
    "constant",
    "uniform",
    "lognormal",
    "bimodal",
    "with_stragglers",
]

DurationSampler = Callable[[np.random.Generator, int], np.ndarray]


def constant(duration: float) -> DurationSampler:
    """Every task takes exactly ``duration`` seconds."""
    if duration < 0:
        raise ValueError("duration must be >= 0")

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, float(duration))

    return sample


def uniform(low: float, high: float) -> DurationSampler:
    """Durations uniform in [low, high]."""
    if not 0 <= low <= high:
        raise ValueError("need 0 <= low <= high")

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(low, high, size=n)

    return sample


def lognormal(mean: float, sigma: float = 0.5) -> DurationSampler:
    """Lognormal durations with the given arithmetic ``mean``.

    The right-skewed shape typical of data-dependent analysis tasks.
    """
    if mean <= 0 or sigma <= 0:
        raise ValueError("mean and sigma must be > 0")
    mu = np.log(mean) - sigma**2 / 2

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mean=mu, sigma=sigma, size=n)

    return sample


def bimodal(
    short: float, long: float, long_fraction: float = 0.1
) -> DurationSampler:
    """A two-class mix: mostly ``short`` tasks, some ``long`` ones.

    The shape of filter-then-analyze pipelines (most inputs rejected
    quickly, hits processed thoroughly).
    """
    if not 0 <= long_fraction <= 1:
        raise ValueError("long_fraction must be in [0, 1]")
    if short < 0 or long < 0:
        raise ValueError("durations must be >= 0")

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        is_long = rng.random(n) < long_fraction
        return np.where(is_long, float(long), float(short))

    return sample


def with_stragglers(
    base: DurationSampler, prob: float = 0.01, factor: float = 10.0
) -> DurationSampler:
    """Wrap a sampler: each task independently becomes a straggler with
    probability ``prob``, its duration multiplied by ``factor``.

    The task-level analog of the node-level straggler model — useful for
    studying how ``--timeout N%`` and retry policies interact with slow
    tails.
    """
    if not 0 <= prob <= 1:
        raise ValueError("prob must be in [0, 1]")
    if factor < 1:
        raise ValueError("factor must be >= 1")

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        durations = base(rng, n)
        hits = rng.random(n) < prob
        return np.where(hits, durations * factor, durations)

    return sample
