"""Near-duplicate detection for FORGE curation (§IV-C).

Publication databases are full of near-duplicates (preprints vs camera-
ready, mirrored records); LLM training pipelines deduplicate before
training.  This module implements the standard cheap pipeline:

* word *shingles* (n-grams) per document,
* MinHash signatures (k independent permutations via salted 64-bit
  hashing),
* pairwise Jaccard estimation over signature agreement, with candidate
  pairs found by banding (locality-sensitive hashing), so the comparison
  count stays near-linear instead of O(n²).

Everything is deterministic for a given ``seed``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "shingles",
    "minhash_signature",
    "jaccard",
    "estimated_jaccard",
    "find_duplicate_pairs",
    "deduplicate",
]

_MERSENNE = (1 << 61) - 1


def shingles(text: str, n: int = 3) -> set[str]:
    """Word n-gram shingles of ``text`` (lowercased, whitespace tokens)."""
    if n < 1:
        raise ValueError(f"shingle size must be >= 1, got {n}")
    tokens = text.lower().split()
    if len(tokens) < n:
        return {" ".join(tokens)} if tokens else set()
    return {" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)}


def _hash64(value: str) -> int:
    h = 1469598103934665603
    for b in value.encode("utf-8"):
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


def minhash_signature(
    shingle_set: set[str], k: int = 64, seed: int = 0
) -> np.ndarray:
    """A k-element MinHash signature of a shingle set.

    Uses k universal-hash permutations ``(a*x + b) mod p``; an empty set
    gets an all-max signature (never similar to anything).
    """
    if k < 1:
        raise ValueError(f"signature length must be >= 1, got {k}")
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _MERSENNE, size=k, dtype=np.int64)
    b = rng.integers(0, _MERSENNE, size=k, dtype=np.int64)
    if not shingle_set:
        return np.full(k, np.iinfo(np.int64).max, dtype=np.int64)
    hashes = np.array([_hash64(s) & 0x7FFFFFFFFFFFFFFF for s in shingle_set],
                      dtype=np.int64)
    # (k, n) permuted values -> min along shingles.
    permuted = (a[:, None] * hashes[None, :] + b[:, None]) % _MERSENNE
    return permuted.min(axis=1)


def jaccard(a: set[str], b: set[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def estimated_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """MinHash estimate: fraction of agreeing signature positions."""
    if sig_a.shape != sig_b.shape:
        raise ValueError("signatures must have identical shapes")
    return float((sig_a == sig_b).mean())


def find_duplicate_pairs(
    signatures: Sequence[np.ndarray],
    threshold: float = 0.8,
    bands: int = 16,
) -> list[tuple[int, int]]:
    """Indices of probable-duplicate pairs via LSH banding + verification.

    Documents sharing any identical signature band become candidates;
    candidates are confirmed against ``threshold`` on the full-signature
    estimate.  Pairs are returned (i, j) with i < j, sorted.
    """
    if not signatures:
        return []
    k = signatures[0].shape[0]
    if bands < 1 or k % bands != 0:
        raise ValueError(f"bands ({bands}) must divide the signature length ({k})")
    rows = k // bands
    buckets: dict[tuple[int, bytes], list[int]] = defaultdict(list)
    for idx, sig in enumerate(signatures):
        for band in range(bands):
            key = (band, sig[band * rows : (band + 1) * rows].tobytes())
            buckets[key].append(idx)
    candidates: set[tuple[int, int]] = set()
    for members in buckets.values():
        if len(members) > 1:
            for i_pos, i in enumerate(members):
                for j in members[i_pos + 1 :]:
                    candidates.add((min(i, j), max(i, j)))
    confirmed = [
        pair
        for pair in candidates
        if estimated_jaccard(signatures[pair[0]], signatures[pair[1]]) >= threshold
    ]
    return sorted(confirmed)


@dataclass(frozen=True)
class DedupReport:
    """Outcome of a corpus deduplication pass."""

    n_input: int
    kept_indices: tuple[int, ...]
    dropped_indices: tuple[int, ...]
    duplicate_pairs: tuple[tuple[int, int], ...]


def deduplicate(
    texts: Iterable[str],
    threshold: float = 0.8,
    shingle_n: int = 3,
    k: int = 64,
    bands: int = 16,
    seed: int = 0,
) -> DedupReport:
    """Drop near-duplicates, keeping the earliest document of each cluster."""
    texts = list(texts)
    sigs = [minhash_signature(shingles(t, shingle_n), k=k, seed=seed) for t in texts]
    pairs = find_duplicate_pairs(sigs, threshold=threshold, bands=bands)
    dropped: set[int] = set()
    for i, j in pairs:  # pairs sorted, i < j: later duplicate is dropped
        if i not in dropped:
            dropped.add(j)
    kept = tuple(i for i in range(len(texts)) if i not in dropped)
    return DedupReport(
        n_input=len(texts),
        kept_indices=kept,
        dropped_indices=tuple(sorted(dropped)),
        duplicate_pairs=tuple(pairs),
    )
