"""A Celeritas-like Monte Carlo particle-transport workload.

Celeritas [19, 20] is a GPU Monte Carlo detector-simulation code; the
paper uses it as the GPU workload for Fig. 2 and the GPU-isolation idiom
(§IV-D).  We provide:

* :func:`transport` — a real, vectorized (NumPy) toy photon-transport
  kernel: photons stream through a 1-D slab geometry with exponential
  free paths, scattering/absorption, and a track-length energy tally.
  This is the actual physics loop structure of MC transport, scaled down;
  the NumPy vectorization stands in for the GPU (same SIMT shape).
* :func:`run_input_file` / :func:`write_input_file` — the ``celer-sim
  {}.inp.json`` file interface the paper's command line uses, so the real
  engine can drive it exactly like the paper does.
* :func:`celeritas_duration_sampler` — the simulated task-duration model
  for Fig. 2: near-constant GPU kernels (the paper saw < 10 s variance
  across nodes).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "TransportConfig",
    "TransportResult",
    "transport",
    "write_input_file",
    "run_input_file",
    "celeritas_duration_sampler",
    "CELERITAS_TASK_MEAN_S",
    "CELERITAS_TASK_SIGMA_S",
]

#: Fig. 2 task-duration model: weak-scaled Celeritas problems sized to a
#: few minutes, with seconds-level variance ("less than 10 seconds").
CELERITAS_TASK_MEAN_S = 180.0
CELERITAS_TASK_SIGMA_S = 2.0


@dataclass(frozen=True)
class TransportConfig:
    """One transport problem (the contents of an ``.inp.json``)."""

    n_photons: int = 100_000
    n_slabs: int = 64
    slab_thickness_cm: float = 0.5
    #: Total macroscopic cross-section (1/cm) and absorption fraction.
    sigma_total: float = 1.2
    absorption_fraction: float = 0.3
    initial_energy_mev: float = 1.0
    max_steps: int = 200
    seed: int = 0

    def validate(self) -> None:
        if self.n_photons < 1:
            raise ValueError("n_photons must be >= 1")
        if not 0.0 < self.absorption_fraction <= 1.0:
            raise ValueError("absorption_fraction must be in (0, 1]")
        if self.sigma_total <= 0:
            raise ValueError("sigma_total must be > 0")


@dataclass(frozen=True)
class TransportResult:
    """Tally of one transport run."""

    n_photons: int
    n_absorbed: int
    n_escaped_back: int
    n_escaped_front: int
    n_killed: int
    deposition: list[float]  # per-slab deposited energy (MeV)
    #: Energy carried out of the slab by escaping photons (MeV).
    escaped_energy: float = 0.0
    #: Residual energy of photons killed at max_steps (MeV).
    killed_energy: float = 0.0

    @property
    def total_deposited(self) -> float:
        return float(sum(self.deposition))

    @property
    def balance_ok(self) -> bool:
        """Particle conservation: every photon is accounted for."""
        return (
            self.n_absorbed + self.n_escaped_back + self.n_escaped_front + self.n_killed
            == self.n_photons
        )

    def energy_balance_ok(self, source_energy: float, rtol: float = 1e-9) -> bool:
        """Energy conservation: deposited + escaped + killed == source."""
        total = self.total_deposited + self.escaped_energy + self.killed_energy
        return abs(total - source_energy) <= rtol * max(source_energy, 1.0)


def transport(config: TransportConfig) -> TransportResult:
    """Run the toy MC photon transport (vectorized over all live photons).

    Physics: photons start at the slab's front face moving inward with
    direction cosine μ=1.  Each step samples an exponential free path;
    at each collision a photon is absorbed (depositing its energy in the
    local slab bin) or isotropically re-scattered losing half its energy
    (Compton-ish).  Photons leaving either face escape; ``max_steps``
    kills stragglers (counted separately so conservation is checkable).
    """
    config.validate()
    rng = np.random.default_rng(config.seed)
    n = config.n_photons
    depth = config.n_slabs * config.slab_thickness_cm

    x = np.zeros(n)  # position (cm)
    mu = np.ones(n)  # direction cosine
    energy = np.full(n, config.initial_energy_mev)
    alive = np.ones(n, dtype=bool)

    deposition = np.zeros(config.n_slabs)
    n_absorbed = n_back = n_front = 0
    escaped_energy = 0.0

    for _step in range(config.max_steps):
        idx = np.nonzero(alive)[0]
        if idx.size == 0:
            break
        path = rng.exponential(1.0 / config.sigma_total, size=idx.size)
        x_new = x[idx] + path * mu[idx]

        escaped_back = x_new < 0.0
        escaped_front = x_new >= depth
        n_back += int(escaped_back.sum())
        n_front += int(escaped_front.sum())
        escaped = escaped_back | escaped_front
        escaped_energy += float(energy[idx[escaped]].sum())
        alive[idx[escaped]] = False

        colliders = idx[~escaped]
        if colliders.size == 0:
            continue
        x[colliders] = x_new[~escaped]
        absorbed = rng.random(colliders.size) < config.absorption_fraction
        slabs = np.clip(
            (x[colliders] / config.slab_thickness_cm).astype(int),
            0,
            config.n_slabs - 1,
        )
        # Absorption: deposit full remaining energy.
        ab = colliders[absorbed]
        np.add.at(deposition, slabs[absorbed], energy[ab])
        alive[ab] = False
        n_absorbed += int(ab.size)
        # Scattering: deposit half the energy locally, continue isotropic.
        sc = colliders[~absorbed]
        np.add.at(deposition, slabs[~absorbed], 0.5 * energy[sc])
        energy[sc] *= 0.5
        mu[sc] = rng.uniform(-1.0, 1.0, size=sc.size)

    n_killed = int(alive.sum())
    return TransportResult(
        n_photons=n,
        n_absorbed=n_absorbed,
        n_escaped_back=n_back,
        n_escaped_front=n_front,
        n_killed=n_killed,
        deposition=deposition.tolist(),
        escaped_energy=escaped_energy,
        killed_energy=float(energy[alive].sum()),
    )


def write_input_file(path: str, config: TransportConfig) -> None:
    """Write a ``*.inp.json`` problem description."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(asdict(config), fh, indent=1)


def run_input_file(path: str, out_path: str | None = None) -> TransportResult:
    """The ``celer-sim {}`` entry point: read a problem, run, write results.

    With ``out_path`` None, results go next to the input as ``<stem>.out``
    (mirroring the paper's ``celer-sim {} > outdir/{}.out`` redirection).
    """
    with open(path, "r", encoding="utf-8") as fh:
        config = TransportConfig(**json.load(fh))
    result = transport(config)
    if out_path is None:
        out_path = os.path.splitext(path)[0] + ".out"
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(asdict(result), fh)
    return result


def celeritas_duration_sampler(rng: np.random.Generator, n: int) -> np.ndarray:
    """Simulated Fig. 2 task durations: tight normal, truncated positive."""
    return np.maximum(
        rng.normal(CELERITAS_TASK_MEAN_S, CELERITAS_TASK_SIGMA_S, size=n), 1.0
    )
