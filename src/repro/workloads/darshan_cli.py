"""``darshan_arch.py`` as a real command-line program.

The paper's Listings 4-5 invoke ``python3 darshan_arch.py <month> <app>``;
this module is that program, so the shell-backend engine (and the
``pyparallel`` CLI, and GNU Parallel itself) can drive the analysis
exactly as the paper does::

    pyparallel -j36 python3 -m repro.workloads.darshan_cli \
        --archive ./arch --out ./sums {1} {2} ::: {1..12} ::: {0..2}
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.workloads.darshan import darshan_arch

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="darshan_arch",
        description="Aggregate one (month, app) slice of a Darshan archive.",
    )
    parser.add_argument("month", help="month number 1..12")
    parser.add_argument("app", help="app index 0..2")
    parser.add_argument("--archive", required=True, help="archive directory")
    parser.add_argument("--out", required=True, help="output directory")
    ns = parser.parse_args(argv)
    try:
        out_path = darshan_arch(ns.month, ns.app, ns.archive, ns.out)
    except (ReproError, OSError, ValueError) as exc:
        print(f"darshan_arch: error: {exc}", file=sys.stderr)
        return 1
    print(out_path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
