"""Parameter-sweep utility for experiment harnesses.

Every benchmark in this repo is "run a function over a parameter grid and
tabulate": this module factors that shape out.  :func:`sweep` runs
``fn(**params)`` for each point of the cartesian grid and returns tidy
rows (one dict per run, parameters + outputs merged), ready for
:func:`~repro.analysis.report.render_table`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

__all__ = ["grid_points", "sweep"]


def grid_points(grid: Mapping[str, Sequence[object]]) -> list[dict[str, object]]:
    """The cartesian product of a parameter grid, as dicts.

    Iteration order: the *last* key varies fastest (matching the engine's
    ``:::`` source ordering).  An empty grid yields one empty point.
    """
    if not grid:
        return [{}]
    keys = list(grid.keys())
    for key, values in grid.items():
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise TypeError(f"grid values for {key!r} must be a non-string sequence")
        if len(values) == 0:
            return []
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]


def sweep(
    fn: Callable[..., Mapping[str, object]],
    grid: Mapping[str, Sequence[object]],
    repeats: int = 1,
    repeat_key: str = "repeat",
) -> list[dict[str, object]]:
    """Run ``fn(**point)`` over the grid; merge outputs into tidy rows.

    ``fn`` must return a mapping of result columns; parameter columns are
    added (and must not collide).  ``repeats`` > 1 re-runs each point with
    a ``repeat_key`` column added and passed to ``fn`` if it accepts it —
    the standard shape for seed-replicated stochastic experiments.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rows: list[dict[str, object]] = []
    for point in grid_points(grid):
        for rep in range(repeats):
            kwargs = dict(point)
            if repeats > 1:
                kwargs[repeat_key] = rep
            out = fn(**kwargs)
            if not isinstance(out, Mapping):
                raise TypeError(f"sweep fn must return a mapping, got {type(out)}")
            overlap = set(out) & set(kwargs)
            if overlap:
                raise ValueError(f"result columns collide with parameters: {overlap}")
            row = dict(kwargs)
            row.update(out)
            rows.append(row)
    return rows
