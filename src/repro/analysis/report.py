"""ASCII rendering of experiment tables and simple series "figures".

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output consistent and legible in a
terminal (and in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(value: float) -> str:
    """Human-oriented seconds: ms below 1 s, m/h above 120 s."""
    if value < 0:
        return f"-{format_seconds(-value)}"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    if value < 120.0:
        return f"{value:.1f}s"
    if value < 7200.0:
        return f"{value / 60:.1f}m"
    return f"{value / 3600:.2f}h"


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """A fixed-width table; missing cells render as '-'."""
    def cell(row: Mapping[str, object], col: str) -> str:
        v = row.get(col, "-")
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    body = [[cell(r, c) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(b[i]) for b in body)) if body else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for b in body:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(b, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 48,
) -> str:
    """A horizontal-bar sketch of a (x, y) series — a terminal 'figure'."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    lines = [title, "=" * len(title), f"{x_label:>12} | {y_label}"]
    if not ys:
        return "\n".join(lines + ["(empty)"])
    y_max = max(ys) or 1.0
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * y / y_max))) if y > 0 else ""
        lines.append(f"{x:>12g} | {bar} {y:g}")
    return "\n".join(lines)
