"""Parallel-profile extraction from run results.

The paper's conclusion positions GNU Parallel as "a quick prototyping
tool to design and extract parallel profiles from application
executions".  Given job (start, end) intervals — from a real
:class:`~repro.core.job.RunSummary`, a joblog, or simulated results —
these functions compute the profile: concurrency over time, average
utilization against a slot budget, and the serial fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ParallelProfile",
    "concurrency_timeline",
    "intervals_from_joblog",
    "profile_from_joblog",
    "profile_intervals",
]


def concurrency_timeline(
    starts: Sequence[float], ends: Sequence[float]
) -> "tuple[np.ndarray, np.ndarray]":
    """Step function of in-flight job count.

    Returns ``(times, counts)`` where ``counts[i]`` is the number of jobs
    running in the half-open interval ``[times[i], times[i+1])``.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have equal length")
    if starts.size == 0:
        return np.empty(0), np.empty(0, dtype=int)
    if (ends < starts).any():
        raise ValueError("job with end < start")
    events = np.concatenate(
        [np.stack([starts, np.ones_like(starts)], axis=1),
         np.stack([ends, -np.ones_like(ends)], axis=1)]
    )
    order = np.lexsort((-events[:, 1], events[:, 0]))  # starts before ends at ties
    events = events[order]
    times = events[:, 0]
    counts = np.cumsum(events[:, 1]).astype(int)
    # Merge duplicate timestamps (keep the final count at each instant).
    keep = np.append(times[1:] != times[:-1], True)
    return times[keep], counts[keep]


@dataclass(frozen=True)
class ParallelProfile:
    """Summary of a run's parallel structure."""

    n_jobs: int
    makespan: float
    total_busy: float  # sum of job durations
    peak_concurrency: int
    mean_concurrency: float
    serial_fraction: float  # share of wall time with <= 1 job in flight

    def utilization(self, slots: int) -> float:
        """Average busy fraction of ``slots`` execution slots."""
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if self.makespan <= 0:
            return 0.0
        return min(1.0, self.total_busy / (self.makespan * slots))

    @property
    def speedup_vs_serial(self) -> float:
        """Achieved speedup over running every job back to back."""
        return self.total_busy / self.makespan if self.makespan > 0 else 1.0


def profile_intervals(
    starts: Sequence[float], ends: Sequence[float]
) -> ParallelProfile:
    """Compute a :class:`ParallelProfile` from job intervals."""
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.size == 0:
        return ParallelProfile(0, 0.0, 0.0, 0, 0.0, 1.0)
    times, counts = concurrency_timeline(starts, ends)
    spans = np.diff(times)
    active_counts = counts[:-1]
    makespan = float(ends.max() - starts.min())
    total_busy = float((ends - starts).sum())
    mean_conc = (
        float((active_counts * spans).sum() / spans.sum()) if spans.size else 0.0
    )
    serial_time = float(spans[active_counts <= 1].sum()) if spans.size else 0.0
    return ParallelProfile(
        n_jobs=int(starts.size),
        makespan=makespan,
        total_busy=total_busy,
        peak_concurrency=int(counts.max()),
        mean_concurrency=mean_conc,
        serial_fraction=serial_time / makespan if makespan > 0 else 1.0,
    )


def intervals_from_joblog(path: str) -> "tuple[list[float], list[float]]":
    """Job (start, end) intervals from a GNU Parallel joblog.

    One interval per joblog line, i.e. per *attempt* — the same
    granularity as :func:`repro.obs.attempt_intervals` over a traced
    run's spans, so profiles from either source agree.
    """
    from repro.core.joblog import read_joblog

    entries = read_joblog(path)
    starts = [e.start_time for e in entries]
    ends = [e.start_time + e.runtime for e in entries]
    return starts, ends


def profile_from_joblog(path: str) -> ParallelProfile:
    """Compute a :class:`ParallelProfile` straight from a joblog file."""
    starts, ends = intervals_from_joblog(path)
    return profile_intervals(starts, ends)
