"""ASCII box-plot rendering — the form Figs. 1 and 2 use in the paper.

:func:`render_boxplot` draws one row per group: min/whisker, interquartile
box, median marker, and outlier-region whisker, on a shared horizontal
scale.  Example::

    Fig.1 completion times (s)
     1000 |--[##M####]----------|                       max 113
     9000 |---[###M#####]-------------------------------| max 565
"""

from __future__ import annotations

from typing import Mapping, Sequence  # noqa: F401 (Sequence used in union annotation)

import numpy as np

from repro.analysis.stats import BoxStats, box_stats

__all__ = ["render_boxplot"]


def _position(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(width - 1, max(0, int(round(frac * (width - 1)))))


def render_boxplot(
    title: str,
    groups: "Mapping[object, np.ndarray] | Sequence[tuple[object, np.ndarray]]",
    width: int = 60,
    unit: str = "",
) -> str:
    """Render labelled samples as aligned ASCII box plots.

    ``groups`` maps labels to sample arrays (ordered).  The scale spans
    the global min..max; each row shows ``-`` whiskers, ``#`` for the
    interquartile box, and ``M`` at the median.
    """
    items = list(groups.items()) if isinstance(groups, Mapping) else list(groups)
    if not items:
        raise ValueError("render_boxplot needs at least one group")
    stats: list[tuple[object, BoxStats]] = [
        (label, box_stats(np.asarray(values, dtype=float))) for label, values in items
    ]
    lo = min(s.minimum for _, s in stats)
    hi = max(s.maximum for _, s in stats)
    label_w = max(len(str(label)) for label, _ in stats)

    lines = [title, "=" * len(title)]
    lines.append(
        f"{'':>{label_w}}  scale: {lo:.1f} .. {hi:.1f} {unit}".rstrip()
    )
    for label, s in stats:
        row = [" "] * width
        p_min = _position(s.minimum, lo, hi, width)
        p_q1 = _position(s.q1, lo, hi, width)
        p_med = _position(s.median, lo, hi, width)
        p_q3 = _position(s.q3, lo, hi, width)
        p_max = _position(s.maximum, lo, hi, width)
        for i in range(p_min, p_q1):
            row[i] = "-"
        for i in range(p_q1, p_q3 + 1):
            row[i] = "#"
        for i in range(p_q3 + 1, p_max + 1):
            row[i] = "-"
        row[p_min] = "|"
        row[p_max] = "|"
        row[p_med] = "M"
        lines.append(
            f"{str(label):>{label_w}} {''.join(row)} max {s.maximum:.1f}"
        )
    return "\n".join(lines)
