"""Summary statistics for experiment results (box stats, IQR, percentiles).

Fig. 1 and Fig. 2 present distributions as box plots (median, quartiles,
whiskers, outliers); :func:`box_stats` computes exactly those five numbers
plus mean/count so benchmark output can print the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxStats", "box_stats", "iqr", "trimmed_span"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary (plus mean/count) of a sample."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def whisker_high(self) -> float:
        """Tukey upper whisker (largest point <= q3 + 1.5*IQR)."""
        return self.q3 + 1.5 * self.iqr

    def row(self) -> dict[str, float]:
        """A flat dict for table rendering."""
        return {
            "n": self.count,
            "min": self.minimum,
            "p25": self.q1,
            "median": self.median,
            "p75": self.q3,
            "max": self.maximum,
            "mean": self.mean,
        }


def box_stats(values: np.ndarray) -> BoxStats:
    """Five-number summary of ``values`` (must be non-empty)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("box_stats of an empty sample")
    q1, med, q3 = np.percentile(values, [25, 50, 75])
    return BoxStats(
        count=int(values.size),
        minimum=float(values.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(values.max()),
        mean=float(values.mean()),
    )


def iqr(values: np.ndarray) -> float:
    """Interquartile range of ``values``."""
    q1, q3 = np.percentile(np.asarray(values, dtype=float), [25, 75])
    return float(q3 - q1)


def trimmed_span(values: np.ndarray, lower: float = 0.0, upper: float = 100.0) -> float:
    """Span between two percentiles (e.g. 5-95 "variance" in Fig. 2 terms)."""
    lo, hi = np.percentile(np.asarray(values, dtype=float), [lower, upper])
    return float(hi - lo)
