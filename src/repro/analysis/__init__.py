"""Statistics, metrics, and ASCII reporting for the benchmark harness."""

from repro.analysis.figures import render_boxplot
from repro.analysis.profile import ParallelProfile, concurrency_timeline, profile_intervals
from repro.analysis.metrics import (
    full_utilization_task_floor,
    launch_rate,
    makespan,
    mb_per_s,
    speedup,
)
from repro.analysis.report import format_seconds, render_series, render_table
from repro.analysis.stats import BoxStats, box_stats, iqr, trimmed_span
from repro.analysis.sweep import grid_points, sweep

__all__ = [
    "BoxStats",
    "box_stats",
    "iqr",
    "trimmed_span",
    "launch_rate",
    "full_utilization_task_floor",
    "speedup",
    "mb_per_s",
    "makespan",
    "format_seconds",
    "render_series",
    "render_table",
    "render_boxplot",
    "ParallelProfile",
    "concurrency_timeline",
    "profile_intervals",
    "grid_points",
    "sweep",
]
