"""Experiment metrics: launch rates, utilization floors, speed-ups."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "launch_rate",
    "full_utilization_task_floor",
    "speedup",
    "mb_per_s",
    "makespan",
]


def launch_rate(launch_times: Sequence[float]) -> float:
    """Sustained launches/second over a sequence of launch timestamps.

    The Fig. 3-5 metric: (N-1) launches over the span between the first
    and last launch.  Infinite for a single launch or zero span.
    """
    times = np.asarray(sorted(launch_times), dtype=float)
    if times.size < 2:
        return float("inf")
    span = float(times[-1] - times[0])
    return float("inf") if span <= 0 else (times.size - 1) / span


def full_utilization_task_floor(cores: int, rate: float) -> float:
    """Minimum task duration (s) that keeps ``cores`` busy at ``rate``.

    §III: with one instance at 470 jobs/s on 256 threads, tasks must last
    at least 256/470 ≈ 545 ms; at 6,400 jobs/s, 40 ms.
    """
    if cores < 1 or rate <= 0:
        raise ValueError("cores must be >= 1 and rate > 0")
    return cores / rate


def speedup(baseline_time: float, improved_time: float) -> float:
    """Baseline/improved ratio (the paper's '200x' style numbers)."""
    if improved_time <= 0:
        raise ValueError("improved_time must be > 0")
    return baseline_time / improved_time


def mb_per_s(nbytes: float, seconds: float, bits: bool = True) -> float:
    """Throughput in Mb/s (paper's unit for DTN transfers) or MB/s."""
    if seconds <= 0:
        raise ValueError("seconds must be > 0")
    scale = 8 if bits else 1
    return nbytes * scale / 1e6 / seconds


def makespan(start_times: Sequence[float], end_times: Sequence[float]) -> float:
    """Earliest start to latest end — Fig. 1's reported quantity."""
    starts = np.asarray(start_times, dtype=float)
    ends = np.asarray(end_times, dtype=float)
    if starts.size == 0 or ends.size == 0:
        return 0.0
    return float(ends.max() - starts.min())
