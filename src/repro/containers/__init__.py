"""Container-runtime launch models (Figs. 4-5)."""

from repro.containers.runtime import (
    BARE_METAL,
    PODMAN_FAILURE_MODES,
    PODMAN_HPC,
    SHIFTER,
    ContainerRuntime,
)

__all__ = [
    "ContainerRuntime",
    "BARE_METAL",
    "SHIFTER",
    "PODMAN_HPC",
    "PODMAN_FAILURE_MODES",
]
