"""Container-runtime launch models (bare metal, Shifter, Podman-HPC).

The paper's container stress tests (Figs. 4-5) measure *launch-rate
ceilings*: how many containerized processes per second a Perlmutter CPU
node can start.  Two structural properties set that ceiling:

1. every launch passes through the node's kernel fork path
   (:data:`~repro.cluster.machines.NODE_FORK_RATE` ≈ 6,400/s), and
2. the runtime adds its own serialized work per launch — image loopback
   setup for Shifter (mild), and a node-wide SQLite-style database lock
   for Podman-HPC (severe: ~65/s).

A runtime therefore contributes a *serial service rate* (launches/s
through its internal lock) plus a *per-launch latency* (paid by the job,
not serialized), plus an optional *failure model* — Podman-HPC's
namespace/db-lock/setgid/tmpdir failures appear under concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    NODE_FORK_RATE,
    PODMAN_LAUNCH_RATE,
    SHIFTER_LAUNCH_RATE,
)
from repro.errors import ContainerError

__all__ = [
    "ContainerRuntime",
    "BARE_METAL",
    "SHIFTER",
    "PODMAN_HPC",
    "PODMAN_FAILURE_MODES",
]

#: The failure modes §III reports for Podman-HPC at scale, with relative
#: weights (unreported in the paper; uniform-ish with namespaces dominant).
PODMAN_FAILURE_MODES: dict[str, float] = {
    "user_namespace": 0.4,
    "db_lock": 0.3,
    "setgid": 0.2,
    "tmpdir": 0.1,
}


@dataclass(frozen=True)
class ContainerRuntime:
    """A container runtime's launch-cost model.

    ``serial_rate``
        Launches/s through the runtime's internal serialization point
        (None = no runtime lock beyond the kernel fork path).
    ``per_launch_latency``
        Seconds of per-launch setup experienced by the job itself
        (namespace/image setup); concurrent launches overlap this.
    ``base_failure_prob`` / ``failure_load_factor``
        Probability a launch fails outright; grows with the number of
        concurrent launches in flight as
        ``p = base + load_factor * in_flight`` (capped at ``max_failure``).
    """

    name: str
    serial_rate: float | None = None
    per_launch_latency: float = 0.0
    base_failure_prob: float = 0.0
    failure_load_factor: float = 0.0
    max_failure_prob: float = 0.5
    failure_modes: dict[str, float] = field(default_factory=dict)

    def effective_ceiling(self, fork_rate: float = NODE_FORK_RATE) -> float:
        """The node-wide launch-rate ceiling under this runtime."""
        if self.serial_rate is None:
            return fork_rate
        return min(fork_rate, self.serial_rate)

    def startup_overhead_vs_bare(self, fork_rate: float = NODE_FORK_RATE) -> float:
        """Fractional rate loss vs bare metal (the paper's 19% for Shifter)."""
        return 1.0 - self.effective_ceiling(fork_rate) / fork_rate

    def failure_probability(self, in_flight: int) -> float:
        """Launch-failure probability with ``in_flight`` concurrent launches."""
        p = self.base_failure_prob + self.failure_load_factor * max(in_flight, 0)
        return min(p, self.max_failure_prob)

    def draw_failure(self, rng: np.random.Generator, in_flight: int) -> str | None:
        """Return a failure-mode name, or None if the launch succeeds."""
        p = self.failure_probability(in_flight)
        if p <= 0 or rng.random() >= p:
            return None
        if not self.failure_modes:
            return "unknown"
        modes = list(self.failure_modes)
        weights = np.array([self.failure_modes[m] for m in modes], dtype=float)
        return str(rng.choice(modes, p=weights / weights.sum()))

    def raise_failure(self, mode: str) -> None:
        """Raise the :class:`ContainerError` for a drawn failure mode."""
        raise ContainerError(f"{self.name}: container launch failed ({mode})", reason=mode)


#: No container: only the kernel fork path limits launches (~6,400/s).
BARE_METAL = ContainerRuntime(name="bare-metal")

#: Shifter: ~5,200 launches/s ceiling => 19% overhead vs bare metal
#: (Fig. 4); negligible failures.
SHIFTER = ContainerRuntime(
    name="shifter",
    serial_rate=SHIFTER_LAUNCH_RATE,
    per_launch_latency=0.002,
)

#: Podman-HPC: ~65 launches/s through its database lock (Fig. 5), plus
#: reliability failures that worsen with concurrency.
PODMAN_HPC = ContainerRuntime(
    name="podman-hpc",
    serial_rate=PODMAN_LAUNCH_RATE,
    per_launch_latency=0.05,
    base_failure_prob=0.002,
    failure_load_factor=0.0004,
    failure_modes=dict(PODMAN_FAILURE_MODES),
)
