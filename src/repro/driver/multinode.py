"""Multi-node simulated runs: one engine instance per allocated node.

Two fidelities, validated against each other:

* :func:`run_multinode` — detailed: every node runs a full
  :class:`~repro.simengine.SimParallel` instance inside the simulation.
  Exact, but O(tasks) simulation events; use below ~10^5 tasks.
* :func:`run_multinode_batch` — extreme-scale: per-node completion times
  come from the validated vectorized batch model
  (:func:`~repro.simengine.batch_completion_times`), while cross-node
  effects (allocation/straggler readiness, the post-run NVMe→Lustre
  output transfer through the shared link) stay in the event simulation.
  This is what makes 9,000 nodes × 128 tasks = 1.152 M task weak-scaling
  runs (Fig. 1) tractable in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.faults.plan import NodeFaultPlan

from repro.cluster.machines import ENGINE_DISPATCH_RATE
from repro.driver.distribute import shard_cyclic
from repro.errors import SimulationError
from repro.simengine.batch import batch_completion_times
from repro.simengine.parallel import SimParallel
from repro.simengine.task import SimTask, SimTaskResult
from repro.slurm.allocation import Allocation

__all__ = ["MultiNodeRun", "run_multinode", "run_multinode_batch"]


@dataclass
class MultiNodeRun:
    """Aggregate outcome of a multi-node run.

    ``completion_times`` are absolute simulated seconds (from allocation
    start) at which each task finished — the population Fig. 1's box plots
    summarize.  ``node_makespans`` is the per-node last-completion,
    including any output-staging transfer.
    """

    n_nodes: int
    completion_times: np.ndarray
    node_makespans: np.ndarray
    results: list[SimTaskResult] = field(default_factory=list)
    #: Nodes killed mid-run by an injected :class:`NodeFaultPlan`.
    failed_nodes: list[int] = field(default_factory=list)
    #: Tasks lost to dead nodes (re-run on survivors when rebalancing).
    n_lost: int = 0

    @property
    def makespan(self) -> float:
        """Earliest-start-to-latest-end across all nodes (Fig. 1's metric)."""
        return float(self.node_makespans.max()) if self.node_makespans.size else 0.0

    @property
    def n_tasks(self) -> int:
        return int(self.completion_times.size)


def run_multinode(
    allocation: Allocation,
    inputs: Sequence[object],
    task_model: Callable[[object, int], SimTask],
    jobs_per_node: int,
    dispatch_rate: float = ENGINE_DISPATCH_RATE,
    gpu_isolation: bool = False,
    node_faults: "Optional[NodeFaultPlan]" = None,
    rebalance: bool = True,
    trace: Optional[str] = None,
) -> MultiNodeRun:
    """Detailed multi-node run (Listing 1 semantics) inside the simulation.

    ``task_model(item, nodeid)`` converts one input line into a
    :class:`SimTask`.  Inputs are sharded cyclically across the
    allocation's nodes; each node waits for its readiness time, then runs
    one engine instance over its shard.  Runs (and resets) the
    allocation's simulation environment to completion.

    ``node_faults`` kills selected nodes after their plan-assigned number
    of completed tasks; with ``rebalance`` (default) the survivors re-run
    the lost inputs in a second wave — the per-node-instance failure
    isolation the paper's design gives for free.  Raises when every node
    dies and lost work cannot be rebalanced.

    ``trace`` writes the whole simulated run as a Chrome trace (one pid
    per node, one tid per slot) — simulated seconds are mapped 1:1 onto
    trace microseconds-from-zero.
    """
    env = allocation.machine.env
    all_results: list[SimTaskResult] = []
    node_makespans = np.zeros(allocation.n_nodes)
    lost_shards: list[list[object]] = [[] for _ in range(allocation.n_nodes)]
    failed_nodes: set[int] = set()

    def run_instance(nodeid: int, items: list[object], name: str):
        node = allocation.node(nodeid)
        inst = SimParallel(
            node,
            jobs=jobs_per_node,
            dispatch_rate=dispatch_rate,
            gpu_isolation=gpu_isolation,
            name=name,
        )
        results = yield inst.run(
            [task_model(item, nodeid) for item in items]
        )
        all_results.extend(results)
        node_makespans[nodeid] = env.now

    def node_process(nodeid: int):
        shard = list(shard_cyclic(inputs, allocation.n_nodes, nodeid))
        yield env.timeout(allocation.ready_time(nodeid))
        if node_faults is not None:
            death = node_faults.death_point(nodeid, len(shard))
            if death is not None:
                failed_nodes.add(nodeid)
                lost_shards[nodeid] = shard[death:]
                shard = shard[:death]
        if not shard:
            node_makespans[nodeid] = env.now
            return
        yield from run_instance(
            nodeid, shard, f"parallel@{allocation.node(nodeid).name}"
        )

    procs = [
        env.process(node_process(i), name=f"node{i}") for i in range(allocation.n_nodes)
    ]
    env.run(until=env.all_of(procs))

    lost = [item for shard in lost_shards for item in shard]
    if lost and rebalance:
        survivors = [i for i in range(allocation.n_nodes) if i not in failed_nodes]
        if not survivors:
            raise SimulationError(
                f"all {allocation.n_nodes} nodes died; no survivor to "
                f"reshard {len(lost)} lost inputs onto"
            )
        wave = [
            env.process(
                run_instance(
                    nid,
                    list(shard_cyclic(lost, len(survivors), k)),
                    f"parallel@{allocation.node(nid).name}+rescue",
                ),
                name=f"rescue{nid}",
            )
            for k, nid in enumerate(survivors)
            if list(shard_cyclic(lost, len(survivors), k))
        ]
        if wave:
            env.run(until=env.all_of(wave))

    if trace is not None:
        from repro.obs import write_sim_trace

        write_sim_trace(
            trace, all_results,
            meta={"n_nodes": allocation.n_nodes, "n_tasks": len(all_results)},
        )
    completion = np.array([r.end_time for r in all_results])
    return MultiNodeRun(
        n_nodes=allocation.n_nodes,
        completion_times=completion,
        node_makespans=node_makespans,
        results=all_results,
        failed_nodes=sorted(failed_nodes),
        n_lost=len(lost),
    )


def run_multinode_batch(
    allocation: Allocation,
    tasks_per_node: int,
    duration_sampler: Callable[[np.random.Generator, int], np.ndarray],
    jobs_per_node: int,
    dispatch_rate: float = ENGINE_DISPATCH_RATE,
    stage_out_bytes: int = 0,
    nvme_write_bytes: int = 0,
    node_failure_prob: float = 0.0,
    rebalance: bool = True,
) -> MultiNodeRun:
    """Extreme-scale multi-node run using the vectorized per-node model.

    Per node: wait for readiness; compute the shard's completion times
    with the batch model (``duration_sampler(rng, n)`` draws the task
    durations); write stdout to node-local NVMe; finally stream
    ``stage_out_bytes`` of aggregated output to Lustre through the shared
    write link — the cross-node contention stage (Fig. 1's workflow:
    "standard output initially written to node-local NVMe before being
    transferred to the Lustre filesystem").

    With ``node_failure_prob`` > 0, each node may crash mid-run (uniformly
    within its working window); tasks it had not yet completed are lost.
    ``rebalance=True`` reproduces the driver-pattern recovery the paper's
    independent-failure-domain design allows: survivors re-run the lost
    tasks in a second wave (GNU Parallel instances are per-node, so one
    node's death never takes down the run).
    """
    machine = allocation.machine
    env = machine.env
    n_nodes = allocation.n_nodes
    completion_chunks: list[np.ndarray] = [np.empty(0)] * n_nodes
    node_makespans = np.zeros(n_nodes)
    lost_counts: list[int] = [0] * n_nodes
    failed_nodes: set[int] = set()

    def compute_times(rng, nodeid: int, n: int) -> "tuple[np.ndarray, int]":
        """Completion times for n tasks on this node, honouring failures.

        Returns (times of completed tasks, number of tasks lost)."""
        durations = duration_sampler(rng, n)
        times = batch_completion_times(
            durations,
            jobs=jobs_per_node,
            dispatch_rate=dispatch_rate,
            fork_rate=machine.spec.node.fork_rate,
            start=env.now,
        )
        if node_failure_prob <= 0 or rng.random() >= node_failure_prob:
            return times, 0
        failed_nodes.add(nodeid)
        local_makespan = float(times.max()) if times.size else env.now
        crash_at = rng.uniform(env.now, max(local_makespan, env.now + 1e-9))
        survived = times[times <= crash_at]
        return survived, int(times.size - survived.size)

    def node_process(nodeid: int):
        rng = machine.rng_registry.stream(f"batch-node:{nodeid}")
        yield env.timeout(allocation.ready_time(nodeid))
        times, lost = compute_times(rng, nodeid, tasks_per_node)
        completion_chunks[nodeid] = times
        lost_counts[nodeid] = lost
        local_makespan = float(times.max()) if times.size else env.now
        yield env.timeout(max(0.0, local_makespan - env.now))
        if nodeid in failed_nodes:
            node_makespans[nodeid] = env.now
            return  # dead node does no stage-out
        node = allocation.node(nodeid)
        if nvme_write_bytes:
            yield node.nvme.write(nvme_write_bytes)
        if stage_out_bytes:
            assert machine.lustre is not None, "stage-out needs Lustre"
            yield machine.lustre.metadata_op()
            yield machine.lustre.write(stage_out_bytes)
        node_makespans[nodeid] = env.now

    procs = [env.process(node_process(i), name=f"bnode{i}") for i in range(n_nodes)]
    env.run(until=env.all_of(procs))

    total_lost = sum(lost_counts)
    if total_lost and rebalance:
        survivors = [i for i in range(n_nodes) if i not in failed_nodes]
        if not survivors:
            raise SimulationError("every node failed; nothing left to rebalance onto")
        # Second wave: survivors split the lost tasks evenly (driver rerun
        # of the missing input lines).
        per_node = [total_lost // len(survivors)] * len(survivors)
        for i in range(total_lost % len(survivors)):
            per_node[i] += 1
        wave_chunks: dict[int, np.ndarray] = {}

        def rerun_process(nodeid: int, n: int):
            rng = machine.rng_registry.stream(f"rebalance-node:{nodeid}")
            durations = duration_sampler(rng, n)
            times = batch_completion_times(
                durations,
                jobs=jobs_per_node,
                dispatch_rate=dispatch_rate,
                fork_rate=machine.spec.node.fork_rate,
                start=env.now,
            )
            wave_chunks[nodeid] = times
            local = float(times.max()) if times.size else env.now
            yield env.timeout(max(0.0, local - env.now))
            node_makespans[nodeid] = env.now

        wave = [
            env.process(rerun_process(nid, n), name=f"rebal{nid}")
            for nid, n in zip(survivors, per_node)
            if n > 0
        ]
        if wave:
            env.run(until=env.all_of(wave))
        for nid, times in wave_chunks.items():
            completion_chunks[nid] = np.concatenate([completion_chunks[nid], times])

    return MultiNodeRun(
        n_nodes=n_nodes,
        completion_times=np.concatenate(completion_chunks) if n_nodes else np.empty(0),
        node_makespans=node_makespans,
    )
