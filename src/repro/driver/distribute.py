"""Input sharding across nodes — the paper's Listing-1 driver script.

The one-liner::

    cat $1 | awk -v NNODE="$SLURM_NNODES" -v NODEID="$SLURM_NODEID" \
        'NR % NNODE == NODEID' | parallel -j128 ./payload.sh {}

assigns line ``NR`` (awk's 1-based record number) to the node where
``NR % NNODE == NODEID``.  :func:`shard_cyclic` reproduces that exactly —
including the quirk that node 0 gets lines NNODE, 2·NNODE, ... (line 1
goes to node 1) — so our shards are bit-identical to the paper's.

:func:`shard_block` is the contiguous alternative used by the ablation
benchmark (DESIGN.md §5): block sharding puts all-early or all-late lines
on one node, which matters when line cost correlates with position.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

from repro.errors import ReproError

__all__ = ["shard_cyclic", "shard_block", "shard_sizes"]

T = TypeVar("T")


def _check(nnodes: int, nodeid: int) -> None:
    if nnodes < 1:
        raise ReproError(f"NNODE must be >= 1, got {nnodes}")
    if not 0 <= nodeid < nnodes:
        raise ReproError(f"NODEID {nodeid} out of range 0..{nnodes - 1}")


def shard_cyclic(items: Iterable[T], nnodes: int, nodeid: int) -> Iterator[T]:
    """Yield the items awk's ``NR % NNODE == NODEID`` selects for a node.

    awk's NR is 1-based: with 4 nodes, node 1 gets lines 1, 5, 9, ...;
    node 0 gets lines 4, 8, 12, ...  Works on unbounded iterables.
    """
    _check(nnodes, nodeid)
    for nr, item in enumerate(items, start=1):
        if nr % nnodes == nodeid:
            yield item


def shard_block(items: Sequence[T], nnodes: int, nodeid: int) -> list[T]:
    """Contiguous block sharding (ablation comparator; needs a sequence).

    Splits ``items`` into ``nnodes`` nearly equal consecutive blocks, the
    first ``len(items) % nnodes`` blocks one element longer.
    """
    _check(nnodes, nodeid)
    n = len(items)
    base, extra = divmod(n, nnodes)
    start = nodeid * base + min(nodeid, extra)
    size = base + (1 if nodeid < extra else 0)
    return list(items[start : start + size])


def shard_sizes(n_items: int, nnodes: int) -> list[int]:
    """Per-node shard sizes under cyclic sharding of ``n_items`` lines."""
    if n_items < 0:
        raise ReproError(f"n_items must be >= 0, got {n_items}")
    _check(nnodes, 0)
    sizes = [0] * nnodes
    for nr in range(1, n_items + 1):
        sizes[nr % nnodes] += 1
    return sizes
