"""Multi-node driver: Listing-1 sharding, per-node engine launches, and
the local multi-instance analog."""

from repro.driver.distribute import shard_block, shard_cyclic, shard_sizes
from repro.driver.local_multi import ShardedRun, run_local_sharded
from repro.driver.multinode import MultiNodeRun, run_multinode, run_multinode_batch

__all__ = [
    "shard_cyclic",
    "shard_block",
    "shard_sizes",
    "MultiNodeRun",
    "run_multinode",
    "run_multinode_batch",
    "ShardedRun",
    "run_local_sharded",
]
