"""Multiple engine instances on the local machine — Listing 1, for real.

The paper's multi-node pattern maps directly onto a single big multi-core
box: run N engine *instances* concurrently, each over its cyclic shard of
the input.  Fig. 3 shows why this matters even on one node — a single
dispatcher caps at ~470 launches/s, several instances scale that up.

:func:`run_local_sharded` is the library form of that pattern: it shards
the input, runs one :class:`~repro.core.engine.Parallel` per "virtual
node" in its own thread, and merges the results into a single
:class:`~repro.core.job.RunSummary`-like report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.core.engine import CommandLike, Parallel
from repro.core.job import JobResult, RunSummary
from repro.driver.distribute import shard_cyclic
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.faults.plan import NodeFaultPlan

__all__ = ["ShardedRun", "run_local_sharded"]


@dataclass
class ShardedRun:
    """Merged outcome of a sharded local run."""

    n_instances: int
    summaries: list[RunSummary] = field(default_factory=list)
    #: Instances killed mid-run by an injected :class:`NodeFaultPlan`.
    failed_instances: list[int] = field(default_factory=list)
    #: Inputs lost to dead instances (all re-run on survivors when any
    #: survivors exist).
    n_lost: int = 0
    #: True when a rescue wave re-ran lost inputs on the survivors.
    rebalanced: bool = False
    #: Per-instance tracers (one per instance per wave) when the run was
    #: traced; their merged Chrome trace is at ``trace_path``.
    tracers: list = field(default_factory=list, repr=False)
    trace_path: Optional[str] = None

    @property
    def results(self) -> list[JobResult]:
        """All job results across instances."""
        return [r for s in self.summaries for r in s.results]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.summaries)

    @property
    def n_succeeded(self) -> int:
        return sum(s.n_succeeded for s in self.summaries)

    @property
    def n_failed(self) -> int:
        return sum(s.n_failed for s in self.summaries)

    @property
    def wall_time(self) -> float:
        return max((s.wall_time for s in self.summaries), default=0.0)

    @property
    def aggregate_launch_rate(self) -> float:
        """Launches/s across every instance (the Fig. 3 metric, locally)."""
        return RunSummary.launch_rate(self.results)


def run_local_sharded(
    command: CommandLike,
    inputs: Sequence[object],
    n_instances: int,
    jobs_per_instance: Union[int, str] = 0,
    engine_factory: Optional[Callable[[int], Parallel]] = None,
    node_faults: "Optional[NodeFaultPlan]" = None,
    trace: Optional[str] = None,
    **option_fields,
) -> ShardedRun:
    """Run ``inputs`` through ``n_instances`` concurrent engine instances.

    Each instance gets the awk-style cyclic shard for its "node id";
    ``jobs_per_instance=0`` lets each instance run its whole shard at
    once.  ``engine_factory(instance_id)`` overrides engine construction
    (custom backends, per-instance output).  Raises if any instance
    crashed outright; per-job failures are reported, not raised.

    ``node_faults`` injects deterministic node death: a selected instance
    stops after completing its plan-assigned number of jobs, and the
    inputs it never ran are re-run on the surviving instances in a rescue
    wave — the paper's independent-failure-domain recovery (one engine
    instance per node means one node's death never takes down the run;
    the driver just re-feeds the missing input lines).  Raises when every
    instance dies, since no survivor can absorb the lost work.

    ``trace`` writes one merged Chrome trace for the whole sharded run:
    each instance runs under its own :class:`~repro.obs.RunTracer`
    (node id ``shard<i>``, rescue waves ``shard<i>+rescue``) and the
    per-node shard streams land in the file as separate pids.
    """
    if n_instances < 1:
        raise ReproError(f"n_instances must be >= 1, got {n_instances}")
    inputs = list(inputs)
    run = ShardedRun(n_instances=n_instances, trace_path=trace)
    summaries: list[Optional[RunSummary]] = [None] * n_instances
    lost_shards: list[list[object]] = [[] for _ in range(n_instances)]
    died = [False] * n_instances
    errors: list[Exception] = []

    def make_engine(instance: int, wave: str = "") -> Parallel:
        if engine_factory is not None:
            engine = engine_factory(instance)
        else:
            engine = Parallel(command, jobs=jobs_per_instance, **option_fields)
        if trace is not None:
            from repro.obs import RunTracer

            tracer = RunTracer(node=f"shard{instance}{wave}")
            engine.options.tracer = tracer
            run.tracers.append(tracer)
        return engine

    def instance_main(instance: int) -> None:
        shard = list(shard_cyclic(inputs, n_instances, instance))
        if node_faults is not None:
            death = node_faults.death_point(instance, len(shard))
            if death is not None:
                died[instance] = True
                lost_shards[instance] = shard[death:]
                shard = shard[:death]
        try:
            summaries[instance] = make_engine(instance).run(shard)
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    def run_wave(mains: Sequence[Callable[[], None]], name: str) -> None:
        threads = [
            threading.Thread(target=main, name=f"{name}{i}")
            for i, main in enumerate(mains)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    run_wave([lambda i=i: instance_main(i) for i in range(n_instances)], "shard")
    run.failed_instances = [i for i, dead in enumerate(died) if dead]
    lost = [item for shard in lost_shards for item in shard]
    run.n_lost = len(lost)
    run.summaries = [s for s in summaries if s is not None]

    if lost:
        survivors = [i for i in range(n_instances) if not died[i]]
        if not survivors:
            raise ReproError(
                f"all {n_instances} instances died; no survivor to reshard "
                f"{len(lost)} lost inputs onto"
            )
        rescue: list[Optional[RunSummary]] = [None] * len(survivors)

        def rescue_main(k: int, instance: int) -> None:
            share = list(shard_cyclic(lost, len(survivors), k))
            if not share:
                return
            try:
                rescue[k] = make_engine(instance, "+rescue").run(share)
            except Exception as exc:
                errors.append(exc)

        run_wave(
            [lambda k=k, i=i: rescue_main(k, i) for k, i in enumerate(survivors)],
            "rescue",
        )
        run.summaries.extend(s for s in rescue if s is not None)
        run.rebalanced = True
    if trace is not None and run.tracers:
        from repro.obs import write_merged_trace

        write_merged_trace(trace, run.tracers)
    return run
