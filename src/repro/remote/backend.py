"""Centralized multi-host execution backend (``-S``/``--sshlogin``).

One coordinator, many hosts: the existing scheduler keeps owning all
concurrency (worker pool, retries, halt, joblog, results) and this backend
only decides *where* each granted job runs.  Per job:

1. lease the lowest free slot on the least-loaded non-banned host;
2. ensure the host workdir (``--workdir``; ``...`` = per-run tempdir);
3. stage ``--basefile``/``--transferfile`` inputs through the transport
   (content-addressed: a file already on the host is never re-pushed —
   see :mod:`repro.remote.cache`);
4. re-render the command with the *per-host* slot (GNU Parallel's ``{%}``
   is 1-based within each host — the paper's GPU-isolation idiom must
   bind to a device index on every node independently) and the ``{host}``
   token;
5. execute, fetch ``--return`` outputs, ``--cleanup``.

With ``--stage-ahead N`` the backend also owns a bounded *staging lane*
(a small thread pool built in :meth:`RemoteBackend.prepare_run`): the
scheduler feeds it up to N not-yet-dispatchable jobs, whose stage-in is
prefetched to a tentative host while earlier jobs still compute, and
``--cleanup`` (plus failed-job output salvage) runs on the lane, off the
dispatch critical path.  Prefetch is purely advisory — a prefetch error
is swallowed (with the cache entry invalidated) and the job's own
synchronous staging retries through the ordinary error machinery, so
semantics match ``--stage-ahead 0`` exactly.

The error split drives health:

* nonzero exit / timeout → ordinary :class:`JobResult` (the scheduler's
  retry policy applies, same as local);
* :class:`~repro.errors.StagingError` → the job fails (exit 255), the
  host stays healthy;
* :class:`~repro.errors.TransportError` → the *host* failed: count it,
  ban after ``ban_after`` consecutive failures, invalidate everything the
  cache believed about the host, and **re-place the same attempt on
  another host** (host-hopping) — in-flight jobs are requeued, never
  dropped, and the joblog/results accounting stays identical to a local
  run.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Optional, Sequence

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options
from repro.core.template import CommandTemplate
from repro.errors import StagingError, TransportError
from repro.remote.hosts import HostLease, HostPool, HostSpec, hosts_from_options
from repro.remote.staging import StagingPolicy
from repro.remote.transport import Channel, Transport

__all__ = ["RemoteBackend"]

#: Sentinel telling a staging-lane worker to exit.
_STOP = None

#: Staging-lane thread-pool ceiling: enough to keep a handful of hosts'
#: links busy without turning prefetch into its own contention source.
_LANE_MAX_WORKERS = 4


class _StagingLane:
    """Bounded thread pool for off-critical-path data motion.

    Carries two kinds of work: *prefetch* (stage-in for queued jobs ahead
    of slot availability) and *post-job* motion (``--cleanup`` removes,
    failed-job output salvage).  Tasks are plain callables; the lane
    counts in-flight work so :meth:`drain` can hand a quiesced data plane
    to ``backend.close()``.
    """

    def __init__(self, workers: int):
        self._q: "queue.SimpleQueue" = queue.SimpleQueue()
        self._pending = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._threads = [
            threading.Thread(
                target=self._loop, daemon=True, name=f"repro-staging-{i + 1}"
            )
            for i in range(max(1, workers))
        ]
        for t in self._threads:
            t.start()

    def submit(self, fn: Callable[[], None]) -> None:
        with self._lock:
            self._pending += 1
        self._q.put(fn)

    def _loop(self) -> None:
        while True:
            fn = self._q.get()
            if fn is _STOP:
                return
            try:
                fn()
            finally:
                with self._idle:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.notify_all()

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until all submitted work has finished (or timeout)."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, timeout: float = 5.0) -> None:
        self.drain(timeout)
        for _ in self._threads:
            self._q.put(_STOP)
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))


class RemoteBackend(Backend):
    """Places each job on a host roster through a pluggable transport."""

    host = "remote"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        transport: Transport,
        template: Optional[CommandTemplate] = None,
        ban_after: int = 3,
    ):
        self._hosts = list(hosts)
        self.transport = transport
        self.template = template
        self.ban_after = ban_after
        self.pool = HostPool(self._hosts, ban_after=ban_after)
        self.staging = StagingPolicy()
        self._staging_opts: Optional[Options] = None
        self._workdirs: dict[str, str] = {}
        self._wd_lock = threading.Lock()
        self._cancelled = threading.Event()
        #: One persistent control channel per host, opened at run start
        #: (prepare_run) so per-job cost is message passing, not session
        #: re-establishment.
        self._channels: dict[str, Channel] = {}
        self._chan_lock = threading.Lock()
        #: Off-critical-path staging lane (``--stage-ahead`` > 0).
        self._lane: Optional[_StagingLane] = None
        #: seq -> (host, staged relpaths) recorded by prefetch, so the
        #: lane's extra references are released when the job completes.
        self._prefetched: dict[int, tuple[HostSpec, list[str]]] = {}
        #: Seqs with a prefetch task submitted but not yet landed.
        self._prefetch_submitted: set[int] = set()
        #: Seqs whose job finished before their prefetch task ran: the
        #: late prefetch must self-release instead of recording (a record
        #: nobody will ever claim would leak its cache references).
        self._prefetch_claimed: set[int] = set()
        self._prefetch_lock = threading.Lock()
        self._prefetch_rr = 0
        self._prefetched_jobs = 0
        self._prefetch_errors = 0

    @classmethod
    def from_options(
        cls,
        options: Options,
        transport: Transport,
        template: Optional[CommandTemplate] = None,
    ) -> "RemoteBackend":
        """Build from ``Options`` (roster via ``-S``/``--sshloginfile``)."""
        return cls(
            hosts=hosts_from_options(options),
            transport=transport,
            template=template,
            ban_after=options.ban_after,
        )

    @property
    def total_slots(self) -> int:
        """Roster-wide concurrency: the scheduler's job cap for this run."""
        return self.pool.total_slots

    def hosts_summary(self) -> dict[str, dict]:
        """Per-host dispatch/health snapshot (reporting, tests)."""
        return self.pool.summary()

    # -- run lifecycle -------------------------------------------------------
    def prepare_run(self, options: Options) -> None:
        self.ban_after = getattr(options, "ban_after", self.ban_after)
        self.pool = HostPool(self._hosts, ban_after=self.ban_after)
        self.staging = StagingPolicy.from_options(options)
        self._staging_opts = options
        with self._wd_lock:
            self._workdirs = {}
        self._cancelled = threading.Event()
        with self._prefetch_lock:
            self._prefetched = {}
            self._prefetch_submitted = set()
            self._prefetch_claimed = set()
            self._prefetch_rr = 0
            self._prefetched_jobs = 0
            self._prefetch_errors = 0
        if self._lane is not None:
            self._lane.close()
            self._lane = None
        stage_ahead = getattr(options, "stage_ahead", 0)
        remote_hosts = [h for h in self._hosts if not h.is_local]
        if stage_ahead > 0 and self.staging.active and remote_hosts:
            self._lane = _StagingLane(
                workers=min(_LANE_MAX_WORKERS, len(remote_hosts), stage_ahead)
            )
        # Open every host's control channel up front: the connect cost
        # lands here, once per host per run, instead of on the per-job
        # path — the ssh ControlMaster pattern GNU Parallel leans on.
        self._close_channels()
        for host in self._hosts:
            self._open_channel(host)

    def _open_channel(self, host: HostSpec) -> Channel:
        t0 = time.time()
        channel = self.transport.open_channel(host)
        if self._tracer is not None:
            self._tracer.span("channel_open", t0, time.time(), host=host.name)
        with self._chan_lock:
            self._channels[host.name] = channel
        return channel

    def _channel_for(self, host: HostSpec) -> Channel:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # open the host's channel lazily on first use.
        with self._chan_lock:
            channel = self._channels.get(host.name)
        if channel is not None:
            return channel
        return self._open_channel(host)

    def _close_channels(self) -> None:
        with self._chan_lock:
            channels, self._channels = list(self._channels.values()), {}
        for channel in channels:
            channel.close()

    def _staging_for(self, options: Options) -> StagingPolicy:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # build-and-cache the staging policy on first use per options.
        # The cached Options is held by strong reference and compared with
        # ``is``: an id() key can collide once the original is collected.
        if self._staging_opts is not options:
            self.staging = StagingPolicy.from_options(options)
            self._staging_opts = options
        return self.staging

    def renew(self) -> "RemoteBackend":
        """A fresh instance sharing the transport (sequential-run reuse)."""
        return RemoteBackend(
            hosts=self._hosts,
            transport=self.transport,
            template=self.template,
            ban_after=self.ban_after,
        )

    def staging_stats(self) -> dict:
        """Data-plane counters for the run summary (empty = no staging)."""
        stats = self.staging.staging_stats()
        if not stats and self._prefetched_jobs == 0:
            return stats
        with self._prefetch_lock:
            stats["prefetched_jobs"] = self._prefetched_jobs
            stats["prefetch_errors"] = self._prefetch_errors
        return stats

    def cancel_all(self) -> None:
        self._cancelled.set()
        self.pool.abort()
        self.transport.cancel_all()

    def close(self) -> None:
        self.pool.abort()
        if self._lane is not None:
            # Quiesce outstanding prefetch/cleanup before tearing down the
            # channels they run on.
            self._lane.close()
            self._lane = None
        self._close_channels()
        self.transport.close()

    # -- stage-ahead (called by the scheduler, ahead of dispatch) -------------
    def prefetch_job(self, job: Job, options: Options) -> None:
        """Queue stage-in for a not-yet-dispatchable job on the lane.

        Picks a tentative host round-robin over the live roster and
        stages the job's ``--basefile``/``--transferfile`` inputs there
        through the content cache.  Purely advisory: any error is
        swallowed (the cache already invalidated the failed entry) and
        counted — the job's synchronous stage-in will redo the work and
        surface the error through the normal retry/host-hopping path.
        """
        if self._lane is None or self._cancelled.is_set():
            return
        staging = self._staging_for(options)
        if not staging.prefetchable:
            return
        host = self._pick_prefetch_host()
        if host is None:
            return
        with self._prefetch_lock:
            self._prefetch_submitted.add(job.seq)
        self._lane.submit(lambda: self._prefetch(host, job, staging))

    def _pick_prefetch_host(self) -> Optional[HostSpec]:
        candidates = [
            h for h in self._hosts
            if not h.is_local and not self.pool.is_banned(h.name)
        ]
        if not candidates:
            return None
        with self._prefetch_lock:
            host = candidates[self._prefetch_rr % len(candidates)]
            self._prefetch_rr += 1
        return host

    def _prefetch(self, host: HostSpec, job: Job, staging: StagingPolicy) -> None:
        t0 = time.time()
        try:
            workdir = self._workdir_for(host)
            channel = self._channel_for(host)
            staging.stage_basefiles(channel, host, workdir)
            staged = staging.stage_in(
                channel, host, job, slot=1, workdir=workdir,
                tracer=self._tracer,
            )
        except Exception as exc:
            cache = staging.cache
            if cache is not None and isinstance(exc, TransportError):
                cache.invalidate_host(host.name)
            with self._prefetch_lock:
                self._prefetch_errors += 1
                self._prefetch_submitted.discard(job.seq)
                self._prefetch_claimed.discard(job.seq)
            if self._tracer is not None:
                self._tracer.instant(
                    "prefetch_error", seq=job.seq, host=host.name,
                    error=str(exc), cat="staging",
                )
            return
        claimed = False
        with self._prefetch_lock:
            self._prefetched_jobs += 1
            self._prefetch_submitted.discard(job.seq)
            if job.seq in self._prefetch_claimed:
                # The job already finished (lane lagged behind dispatch):
                # release our references right here — no one else will.
                self._prefetch_claimed.discard(job.seq)
                claimed = True
            else:
                self._prefetched[job.seq] = (host, staged)
        if claimed:
            self._do_release(host, staged, staging)
        if self._tracer is not None:
            self._tracer.span(
                "stage_in", t0, time.time(), seq=job.seq,
                host=host.name, cat="staging", prefetch=True,
            )

    def _do_release(
        self, host: HostSpec, staged: list, staging: StagingPolicy
    ) -> None:
        try:
            staging.release_prefetched(
                self._channel_for(host), host, staged,
                self._workdir_for(host),
            )
        except Exception:
            pass  # best-effort: the run may be tearing down this host

    def _release_prefetch(self, job: Job, staging: StagingPolicy) -> None:
        """Drop the lane's extra references once the job is accounted for."""
        if self._lane is None:
            return
        with self._prefetch_lock:
            record = self._prefetched.pop(job.seq, None)
            if record is None:
                if job.seq in self._prefetch_submitted:
                    # Prefetch still queued behind us on the lane; mark the
                    # seq claimed so the late prefetch self-releases.
                    self._prefetch_claimed.add(job.seq)
                return
        host, staged = record
        self._lane.submit(lambda: self._do_release(host, staged, staging))

    # -- per-job path --------------------------------------------------------
    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        start = time.time()
        staging = self._staging_for(options)
        try:
            return self._place_job(job, slot, options, timeout, start, staging)
        finally:
            self._release_prefetch(job, staging)

    def _place_job(
        self,
        job: Job,
        slot: int,
        options: Options,
        timeout: Optional[float],
        start: float,
        staging: StagingPolicy,
    ) -> JobResult:
        # Enough budget for every host to fail once and the survivors to be
        # tried again, without spinning forever on a dead roster.
        max_hops = max(2 * len(self._hosts), 4)
        last_error: Optional[str] = None
        for _hop in range(max_hops):
            if self._cancelled.is_set():
                return self._failed(job, slot, -1, "cancelled", start,
                                    state=JobState.KILLED)
            lease = self.pool.acquire()
            if lease is None:
                if self._cancelled.is_set():
                    return self._failed(job, slot, -1, "cancelled", start,
                                        state=JobState.KILLED)
                reason = last_error or "no live hosts"
                return self._failed(
                    job, slot, 255, f"all hosts banned ({reason})", start
                )
            try:
                return self._run_on(lease, job, slot, options, timeout, start)
            except TransportError as exc:
                last_error = f"{lease.host.name}: {exc} [{exc.phase}]"
                banned_now = self.pool.record_failure(lease.host)
                # The host dropped mid-operation: nothing the cache
                # believed about its filesystem can be trusted, and a
                # re-placed job must not skip staging against stale state.
                if staging.cache is not None:
                    staging.cache.invalidate_host(lease.host.name)
                if self._tracer is not None:
                    self._tracer.instant(
                        "transport_error", seq=job.seq, slot=slot,
                        host=lease.host.name, phase=exc.phase,
                    )
                    if banned_now:
                        self._tracer.instant(
                            "host_banned", host=lease.host.name,
                            ban_after=self.pool.ban_after,
                        )
            except StagingError as exc:
                return self._failed(
                    job, slot, 255, f"staging failed: {exc}", start,
                    host=lease.host.name,
                )
            finally:
                self.pool.release(lease)
        return self._failed(
            job, slot, 255,
            f"gave up after {max_hops} placements (last: {last_error})", start,
        )

    def _run_on(
        self,
        lease: HostLease,
        job: Job,
        slot: int,
        options: Options,
        timeout: Optional[float],
        start: float,
    ) -> JobResult:
        host = lease.host
        staging = self._staging_for(options)
        workdir = self._workdir_for(host)
        # The host's persistent channel mirrors the transport signatures,
        # so staging and execution below drive it unchanged.
        channel = self._channel_for(host)
        command = job.command
        if self.template is not None:
            # The scheduler rendered with its global slot; the per-host
            # lease slot is what {%} must mean on a multi-host roster.
            command = self.template.render(
                job.args, seq=job.seq, slot=lease.slot,
                quote=options.quote, host=host.name,
            )
        # GNU Parallel skips --transferfile/--return/--basefile/--cleanup
        # on the ':' localhost: there is no transport hop, so a "transfer"
        # would be a same-path no-op and --cleanup would then delete the
        # user's original input/output files.
        stage = staging.active and not host.is_local
        staged: list[str] = []
        if stage:
            t0 = time.time()
            staging.stage_basefiles(channel, host, workdir)
            staged = staging.stage_in(
                channel, host, job, lease.slot, workdir, tracer=self._tracer
            )
            if self._tracer is not None:
                self._tracer.span(
                    "stage_in", t0, time.time(), seq=job.seq, slot=slot,
                    host=host.name, cat="staging",
                )
        res = channel.execute(
            host, command,
            workdir=workdir,
            stdin=job.stdin_data,
            env=options.env or None,
            timeout=timeout,
            seq=job.seq,
            attempt=job.attempt,
        )
        # The transport round-tripped: whatever the job itself did, the
        # host is healthy — reset its failure streak.
        self.pool.record_success(host)
        job_ok = res.exit_code == 0 and not res.timed_out
        if stage:
            self._stage_out_and_cleanup(
                channel, host, staging, job, lease.slot, slot, workdir, job_ok
            )
        if res.timed_out:
            state = JobState.TIMED_OUT
        elif job_ok:
            state = JobState.SUCCEEDED
        else:
            state = JobState.FAILED
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=command,
            exit_code=res.exit_code,
            stdout=res.stdout,
            stderr=res.stderr,
            start_time=start,
            end_time=time.time(),
            slot=slot,
            host=host.name,
            attempt=job.attempt,
            state=state,
        )

    def _stage_out_and_cleanup(
        self,
        channel: Channel,
        host: HostSpec,
        staging: StagingPolicy,
        job: Job,
        lease_slot: int,
        slot: int,
        workdir: str,
        job_ok: bool,
    ) -> None:
        """Return-file fetch + cleanup; overlapped where semantics allow.

        A *successful* job's stage-out stays on the critical path — a
        missing return file is part of the job's result (StagingError →
        exit 255), which an async fetch could no longer report.  A failed
        job's salvage fetch is best-effort by definition, so with a lane
        it moves off-path, as does ``--cleanup`` in both cases.
        """
        tracer = self._tracer
        staged = list(
            dict.fromkeys(
                rel for _src, rel in staging.transfer_paths(job, lease_slot)
            )
        )

        def salvage_and_cleanup(fetched: Optional[tuple]) -> None:
            # fetched=None means "salvage first" (failed job moved off-path).
            t0 = time.time()
            if fetched is None:
                fetched = ()
                try:
                    fetched = tuple(staging.stage_out(
                        channel, host, job, lease_slot, workdir, job_ok=False
                    ))
                except Exception:
                    pass  # salvage of a failed job is best-effort
            try:
                staging.cleanup_remote(
                    channel, host, staged, workdir, fetched=fetched
                )
            except Exception:
                pass  # cleanup is best-effort; the host may be gone
            if tracer is not None and staging.cleanup:
                tracer.span(
                    "cleanup", t0, time.time(), seq=job.seq, slot=slot,
                    host=host.name, cat="staging", deferred=True,
                )

        if job_ok:
            # A successful job's stage-out is part of its result: a missing
            # --return file must surface as StagingError, so it stays sync.
            # Cleanup still runs (in finally) even when the fetch fails.
            fetched: list[str] = []
            t0 = time.time()
            try:
                fetched = staging.stage_out(
                    channel, host, job, lease_slot, workdir, job_ok=True
                )
            finally:
                if tracer is not None and staging.returns:
                    tracer.span(
                        "stage_out", t0, time.time(), seq=job.seq, slot=slot,
                        host=host.name, cat="staging",
                    )
                if self._lane is not None:
                    snapshot = tuple(fetched)
                    self._lane.submit(lambda: salvage_and_cleanup(snapshot))
                else:
                    t1 = time.time()
                    staging.cleanup_remote(
                        channel, host, staged, workdir, fetched=tuple(fetched)
                    )
                    if tracer is not None and staging.cleanup:
                        tracer.span(
                            "cleanup", t1, time.time(), seq=job.seq,
                            slot=slot, host=host.name, cat="staging",
                        )
        else:
            if self._lane is not None:
                self._lane.submit(lambda: salvage_and_cleanup(None))
            else:
                fetched = []
                t0 = time.time()
                try:
                    fetched = staging.stage_out(
                        channel, host, job, lease_slot, workdir, job_ok=False
                    )
                finally:
                    if tracer is not None and staging.returns:
                        tracer.span(
                            "stage_out", t0, time.time(), seq=job.seq,
                            slot=slot, host=host.name, cat="staging",
                        )
                    staging.cleanup_remote(
                        channel, host, staged, workdir, fetched=tuple(fetched)
                    )

    def _workdir_for(self, host: HostSpec) -> str:
        with self._wd_lock:
            cached = self._workdirs.get(host.name)
        if cached is not None:
            return cached
        workdir = self.transport.ensure_workdir(host, self.staging.workdir)
        with self._wd_lock:
            self._workdirs[host.name] = workdir
        return workdir

    def _failed(
        self,
        job: Job,
        slot: int,
        code: int,
        message: str,
        start: float,
        state: JobState = JobState.FAILED,
        host: str = "",
    ) -> JobResult:
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=code,
            stderr=message,
            start_time=start,
            end_time=time.time(),
            slot=slot,
            host=host or self.host,
            attempt=job.attempt,
            state=state,
        )
