"""Centralized multi-host execution backend (``-S``/``--sshlogin``).

One coordinator, many hosts: the existing scheduler keeps owning all
concurrency (worker pool, retries, halt, joblog, results) and this backend
only decides *where* each granted job runs.  Per job:

1. lease the lowest free slot on the least-loaded non-banned host;
2. ensure the host workdir (``--workdir``; ``...`` = per-run tempdir);
3. stage ``--basefile``/``--transferfile`` inputs through the transport;
4. re-render the command with the *per-host* slot (GNU Parallel's ``{%}``
   is 1-based within each host — the paper's GPU-isolation idiom must
   bind to a device index on every node independently) and the ``{host}``
   token;
5. execute, fetch ``--return`` outputs, ``--cleanup``.

The error split drives health:

* nonzero exit / timeout → ordinary :class:`JobResult` (the scheduler's
  retry policy applies, same as local);
* :class:`~repro.errors.StagingError` → the job fails (exit 255), the
  host stays healthy;
* :class:`~repro.errors.TransportError` → the *host* failed: count it,
  ban after ``ban_after`` consecutive failures, and **re-place the same
  attempt on another host** (host-hopping) — in-flight jobs are requeued,
  never dropped, and the joblog/results accounting stays identical to a
  local run.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options
from repro.core.template import CommandTemplate
from repro.errors import StagingError, TransportError
from repro.remote.hosts import HostLease, HostPool, HostSpec, hosts_from_options
from repro.remote.staging import StagingPolicy
from repro.remote.transport import Channel, Transport

__all__ = ["RemoteBackend"]


class RemoteBackend(Backend):
    """Places each job on a host roster through a pluggable transport."""

    host = "remote"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        transport: Transport,
        template: Optional[CommandTemplate] = None,
        ban_after: int = 3,
    ):
        self._hosts = list(hosts)
        self.transport = transport
        self.template = template
        self.ban_after = ban_after
        self.pool = HostPool(self._hosts, ban_after=ban_after)
        self.staging = StagingPolicy()
        self._staging_opts: Optional[Options] = None
        self._workdirs: dict[str, str] = {}
        self._wd_lock = threading.Lock()
        self._cancelled = threading.Event()
        #: One persistent control channel per host, opened at run start
        #: (prepare_run) so per-job cost is message passing, not session
        #: re-establishment.
        self._channels: dict[str, Channel] = {}
        self._chan_lock = threading.Lock()

    @classmethod
    def from_options(
        cls,
        options: Options,
        transport: Transport,
        template: Optional[CommandTemplate] = None,
    ) -> "RemoteBackend":
        """Build from ``Options`` (roster via ``-S``/``--sshloginfile``)."""
        return cls(
            hosts=hosts_from_options(options),
            transport=transport,
            template=template,
            ban_after=options.ban_after,
        )

    @property
    def total_slots(self) -> int:
        """Roster-wide concurrency: the scheduler's job cap for this run."""
        return self.pool.total_slots

    def hosts_summary(self) -> dict[str, dict]:
        """Per-host dispatch/health snapshot (reporting, tests)."""
        return self.pool.summary()

    # -- run lifecycle -------------------------------------------------------
    def prepare_run(self, options: Options) -> None:
        self.ban_after = getattr(options, "ban_after", self.ban_after)
        self.pool = HostPool(self._hosts, ban_after=self.ban_after)
        self.staging = StagingPolicy.from_options(options)
        self._staging_opts = options
        with self._wd_lock:
            self._workdirs = {}
        self._cancelled = threading.Event()
        # Open every host's control channel up front: the connect cost
        # lands here, once per host per run, instead of on the per-job
        # path — the ssh ControlMaster pattern GNU Parallel leans on.
        self._close_channels()
        for host in self._hosts:
            self._open_channel(host)

    def _open_channel(self, host: HostSpec) -> Channel:
        t0 = time.time()
        channel = self.transport.open_channel(host)
        if self._tracer is not None:
            self._tracer.span("channel_open", t0, time.time(), host=host.name)
        with self._chan_lock:
            self._channels[host.name] = channel
        return channel

    def _channel_for(self, host: HostSpec) -> Channel:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # open the host's channel lazily on first use.
        with self._chan_lock:
            channel = self._channels.get(host.name)
        if channel is not None:
            return channel
        return self._open_channel(host)

    def _close_channels(self) -> None:
        with self._chan_lock:
            channels, self._channels = list(self._channels.values()), {}
        for channel in channels:
            channel.close()

    def _staging_for(self, options: Options) -> StagingPolicy:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # build-and-cache the staging policy on first use per options.
        # The cached Options is held by strong reference and compared with
        # ``is``: an id() key can collide once the original is collected.
        if self._staging_opts is not options:
            self.staging = StagingPolicy.from_options(options)
            self._staging_opts = options
        return self.staging

    def renew(self) -> "RemoteBackend":
        """A fresh instance sharing the transport (sequential-run reuse)."""
        return RemoteBackend(
            hosts=self._hosts,
            transport=self.transport,
            template=self.template,
            ban_after=self.ban_after,
        )

    def cancel_all(self) -> None:
        self._cancelled.set()
        self.pool.abort()
        self.transport.cancel_all()

    def close(self) -> None:
        self.pool.abort()
        self._close_channels()
        self.transport.close()

    # -- per-job path --------------------------------------------------------
    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        start = time.time()
        # Enough budget for every host to fail once and the survivors to be
        # tried again, without spinning forever on a dead roster.
        max_hops = max(2 * len(self._hosts), 4)
        last_error: Optional[str] = None
        for _hop in range(max_hops):
            if self._cancelled.is_set():
                return self._failed(job, slot, -1, "cancelled", start,
                                    state=JobState.KILLED)
            lease = self.pool.acquire()
            if lease is None:
                if self._cancelled.is_set():
                    return self._failed(job, slot, -1, "cancelled", start,
                                        state=JobState.KILLED)
                reason = last_error or "no live hosts"
                return self._failed(
                    job, slot, 255, f"all hosts banned ({reason})", start
                )
            try:
                return self._run_on(lease, job, slot, options, timeout, start)
            except TransportError as exc:
                last_error = f"{lease.host.name}: {exc} [{exc.phase}]"
                banned_now = self.pool.record_failure(lease.host)
                if self._tracer is not None:
                    self._tracer.instant(
                        "transport_error", seq=job.seq, slot=slot,
                        host=lease.host.name, phase=exc.phase,
                    )
                    if banned_now:
                        self._tracer.instant(
                            "host_banned", host=lease.host.name,
                            ban_after=self.pool.ban_after,
                        )
            except StagingError as exc:
                return self._failed(
                    job, slot, 255, f"staging failed: {exc}", start,
                    host=lease.host.name,
                )
            finally:
                self.pool.release(lease)
        return self._failed(
            job, slot, 255,
            f"gave up after {max_hops} placements (last: {last_error})", start,
        )

    def _run_on(
        self,
        lease: HostLease,
        job: Job,
        slot: int,
        options: Options,
        timeout: Optional[float],
        start: float,
    ) -> JobResult:
        host = lease.host
        staging = self._staging_for(options)
        workdir = self._workdir_for(host)
        # The host's persistent channel mirrors the transport signatures,
        # so staging and execution below drive it unchanged.
        channel = self._channel_for(host)
        command = job.command
        if self.template is not None:
            # The scheduler rendered with its global slot; the per-host
            # lease slot is what {%} must mean on a multi-host roster.
            command = self.template.render(
                job.args, seq=job.seq, slot=lease.slot,
                quote=options.quote, host=host.name,
            )
        # GNU Parallel skips --transferfile/--return/--basefile/--cleanup
        # on the ':' localhost: there is no transport hop, so a "transfer"
        # would be a same-path no-op and --cleanup would then delete the
        # user's original input/output files.
        stage = staging.active and not host.is_local
        staged: list[str] = []
        if stage:
            staging.stage_basefiles(channel, host, workdir)
            staged = staging.stage_in(channel, host, job, lease.slot, workdir)
        res = channel.execute(
            host, command,
            workdir=workdir,
            stdin=job.stdin_data,
            env=options.env or None,
            timeout=timeout,
            seq=job.seq,
            attempt=job.attempt,
        )
        # The transport round-tripped: whatever the job itself did, the
        # host is healthy — reset its failure streak.
        self.pool.record_success(host)
        job_ok = res.exit_code == 0 and not res.timed_out
        fetched: list[str] = []
        if stage:
            try:
                fetched = staging.stage_out(
                    channel, host, job, lease.slot, workdir, job_ok=job_ok
                )
            finally:
                staging.cleanup_remote(
                    channel, host, staged + fetched, workdir
                )
        if res.timed_out:
            state = JobState.TIMED_OUT
        elif job_ok:
            state = JobState.SUCCEEDED
        else:
            state = JobState.FAILED
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=command,
            exit_code=res.exit_code,
            stdout=res.stdout,
            stderr=res.stderr,
            start_time=start,
            end_time=time.time(),
            slot=slot,
            host=host.name,
            attempt=job.attempt,
            state=state,
        )

    def _workdir_for(self, host: HostSpec) -> str:
        with self._wd_lock:
            cached = self._workdirs.get(host.name)
        if cached is not None:
            return cached
        workdir = self.transport.ensure_workdir(host, self.staging.workdir)
        with self._wd_lock:
            self._workdirs[host.name] = workdir
        return workdir

    def _failed(
        self,
        job: Job,
        slot: int,
        code: int,
        message: str,
        start: float,
        state: JobState = JobState.FAILED,
        host: str = "",
    ) -> JobResult:
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=code,
            stderr=message,
            start_time=start,
            end_time=time.time(),
            slot=slot,
            host=host or self.host,
            attempt=job.attempt,
            state=state,
        )
