"""Centralized multi-host execution (GNU Parallel ``--sshlogin``).

Layers, bottom-up:

:mod:`repro.remote.hosts`
    Roster parsing (``-S``/``--sshloginfile``, ``N/host``, ``:``) and the
    thread-safe least-loaded :class:`HostPool` with per-host slots and
    ban-on-repeated-failure health tracking.
:mod:`repro.remote.transport`
    Pluggable command/file movement: real subprocesses with per-host
    directory roots (:class:`LocalTransport`) or calibrated virtual time
    (:class:`SimTransport`).
:mod:`repro.remote.cache`
    Per-run content-addressed :class:`StagingCache` (dedup'd staging,
    refcounted ``--cleanup``).
:mod:`repro.remote.staging`
    ``--transferfile``/``--return``/``--cleanup``/``--basefile`` file
    movement policy rendered per job.
:mod:`repro.remote.backend`
    The :class:`RemoteBackend` tying them together under the existing
    scheduler.
"""

from repro.remote.backend import RemoteBackend
from repro.remote.cache import StagingCache
from repro.remote.hosts import (
    HostLease,
    HostPool,
    HostSpec,
    hosts_from_options,
    parse_sshlogin,
    parse_sshloginfile,
)
from repro.remote.staging import StagingPolicy
from repro.remote.transport import (
    Channel,
    ExecResult,
    LocalTransport,
    SimTransport,
    Transport,
)

__all__ = [
    "Channel",
    "RemoteBackend",
    "HostSpec",
    "HostLease",
    "HostPool",
    "parse_sshlogin",
    "parse_sshloginfile",
    "hosts_from_options",
    "StagingCache",
    "StagingPolicy",
    "Transport",
    "LocalTransport",
    "SimTransport",
    "ExecResult",
]
