"""File staging for remote jobs (``--transferfile``/``--return``/etc).

GNU Parallel semantics, executed over a :class:`~repro.remote.transport.Transport`:

``--transferfile tmpl``
    Render ``tmpl`` per job; copy the local file to the host, landing
    *relative to the remote workdir* with any leading ``/`` (and ``./``)
    stripped — the rsync ``--relative`` rule.
``--return tmpl``
    Render per job; after a *successful* job, fetch the remote file back
    to the same local path.  A missing return file after success is a
    :class:`~repro.errors.StagingError` (job-local failure); after a
    failed job the fetch is attempted but a miss is forgiven — the job's
    own exit code is the story.
``--cleanup``
    Remove every transferred and returned file from the host afterwards
    (success or failure), pruning emptied directories.
``--basefile path``
    Like ``--transferfile`` but literal (no per-job render) and staged at
    most once per host per run; never cleaned up mid-run.

The render uses the job's own (args, seq, slot) so ``--transferfile {}``
or ``--return out/{#}.txt`` track each job exactly as its command does.

With a :class:`~repro.remote.cache.StagingCache` attached (the default,
``--staging-cache on``), transfers are content-addressed: a file already
staged to a host is never pushed again this run, ``--basefile`` and
``--transferfile`` dedup against each other, and ``--cleanup`` is
refcounted — the remote copy is removed when the *last* referencing job
finishes, not after each one.  Without the cache, ``--basefile``'s
once-per-host guarantee is kept by per-host completion gates: a job that
arrives while another job's basefile push is still in flight *waits for
the push* instead of running against a half-staged file (the old
mark-before-push set raced exactly that way).

The ``:`` localhost is exempt from all of this: GNU Parallel does no
transfer/return/cleanup for the transport-free local machine (a "copy"
would be a same-path no-op, and cleanup would delete the user's own
files), so the backend never drives these phases for ``host.is_local``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.template import CommandTemplate
from repro.errors import StagingError
from repro.remote.cache import StagingCache
from repro.storage.transfer import remote_relpath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.remote.hosts import HostSpec
    from repro.remote.transport import Transport

__all__ = ["StagingPolicy"]


def _templates(specs: list[str]) -> list[CommandTemplate]:
    # implicit_append=False: a literal path like "in/data.txt" must stay
    # literal, not become "in/data.txt {}".
    return [CommandTemplate(s, implicit_append=False) for s in specs]


class _BaseGate:
    """Completion gate for one host's ``--basefile`` push."""

    __slots__ = ("event", "ok")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.ok = False


@dataclass
class StagingPolicy:
    """One run's staging plan; stateless per job except the shared caches."""

    transfer: list[CommandTemplate] = field(default_factory=list)
    returns: list[CommandTemplate] = field(default_factory=list)
    basefiles: list[str] = field(default_factory=list)
    cleanup: bool = False
    #: ``--workdir`` policy forwarded to ``Transport.ensure_workdir``.
    workdir: Optional[str] = None
    #: Content-addressed dedup cache (``--staging-cache on``); None =
    #: every job pays its own transfers (the pre-cache behaviour).
    cache: Optional[StagingCache] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._base_gates: dict[str, _BaseGate] = {}

    @classmethod
    def from_options(cls, options) -> "StagingPolicy":
        return cls(
            transfer=_templates(list(options.transfer_files)),
            returns=_templates(list(options.return_files)),
            basefiles=list(options.basefiles),
            cleanup=options.cleanup,
            workdir=options.workdir,
            cache=StagingCache() if getattr(options, "staging_cache", True) else None,
        )

    @property
    def active(self) -> bool:
        """True when any staging work exists (skip the whole path if not)."""
        return bool(self.transfer or self.returns or self.basefiles)

    @property
    def prefetchable(self) -> bool:
        """True when stage-in can be computed ahead of slot assignment.

        A ``--transferfile`` template referencing ``{%}`` renders
        differently per slot, which is unknown until the job leases a
        host — prefetching it would stage the wrong file.
        """
        return bool(self.transfer or self.basefiles) and not any(
            t.uses_slot for t in self.transfer
        )

    # -- per-job rendering ---------------------------------------------------
    def transfer_paths(self, job: "Job", slot: int) -> list[tuple[str, str]]:
        """``[(local_src, remote_rel)]`` for this job's ``--transferfile``s."""
        return [
            (p, remote_relpath(p))
            for t in self.transfer
            for p in [t.render(job.args, seq=job.seq, slot=slot)]
        ]

    def return_paths(self, job: "Job", slot: int) -> list[tuple[str, str]]:
        """``[(remote_rel, local_dest)]`` for this job's ``--return``s."""
        return [
            (remote_relpath(p), p)
            for t in self.returns
            for p in [t.render(job.args, seq=job.seq, slot=slot)]
        ]

    # -- phases driven by the backend -----------------------------------------
    def stage_basefiles(
        self, transport: "Transport", host: "HostSpec", workdir: str
    ) -> None:
        """Stage ``--basefile``s once per host (idempotent, thread-safe).

        The per-host :class:`_BaseGate` closes the old mark-before-push
        race: a concurrent job on the same host blocks until the push has
        *finished* instead of skipping staging while the file is still in
        flight.  A failed push discards the gate so a later job retries.
        """
        if not self.basefiles:
            return
        while True:
            with self._lock:
                gate = self._base_gates.get(host.name)
                if gate is None:
                    gate = _BaseGate()
                    self._base_gates[host.name] = gate
                    owner = True
                else:
                    owner = False
            if not owner:
                gate.event.wait()
                if gate.ok:
                    return
                # The pusher failed; forget its gate and race to retry.
                with self._lock:
                    if self._base_gates.get(host.name) is gate:
                        del self._base_gates[host.name]
                continue
            try:
                for path in self.basefiles:
                    rel = remote_relpath(path)
                    if self.cache is not None:
                        # permanent=True: basefiles are never cleaned
                        # mid-run, whatever --cleanup says.
                        self.cache.ensure(
                            transport, host, path, rel, workdir, permanent=True
                        )
                    else:
                        transport.put(host, path, rel, workdir)
            except Exception:
                with self._lock:
                    if self._base_gates.get(host.name) is gate:
                        del self._base_gates[host.name]
                gate.event.set()
                raise
            gate.ok = True
            gate.event.set()
            return

    def stage_in(
        self, transport: "Transport", host: "HostSpec", job: "Job",
        slot: int, workdir: str, tracer=None,
    ) -> list[str]:
        """Push this job's inputs; returns remote relpaths (for cleanup).

        With the cache attached each push is content-addressed: an input
        already staged to this host is a hit (one reference retained, no
        bytes moved) and emits a ``cache_hit`` instant on the tracer.
        """
        staged: list[str] = []
        for src, rel in self.transfer_paths(job, slot):
            if self.cache is not None:
                moved, hit = self.cache.ensure(transport, host, src, rel, workdir)
                if hit and tracer is not None:
                    tracer.instant(
                        "cache_hit", seq=job.seq, slot=slot,
                        host=host.name, file=rel, cat="staging",
                    )
            else:
                transport.put(host, src, rel, workdir)
            staged.append(rel)
        return staged

    def stage_out(
        self, transport: "Transport", host: "HostSpec", job: "Job",
        slot: int, workdir: str, job_ok: bool,
    ) -> list[str]:
        """Fetch this job's ``--return`` files; returns remote relpaths.

        After a successful job every declared return file must exist; after
        a failed one, whatever is there is salvaged and misses are ignored.
        """
        fetched: list[str] = []
        for rel, dest in self.return_paths(job, slot):
            try:
                transport.get(host, rel, dest, workdir)
            except StagingError:
                if job_ok:
                    raise
                continue
            fetched.append(rel)
        return fetched

    def cleanup_remote(
        self, transport: "Transport", host: "HostSpec",
        relpaths: list[str], workdir: str, fetched: tuple = (),
    ) -> int:
        """Remove staged files after the job (``--cleanup``); best-effort.

        ``relpaths`` are the job's staged inputs, ``fetched`` its returned
        outputs.  Without a cache both are removed immediately (one
        batched ``remove``).  With the cache, inputs are *released*: only
        those whose last reference this was are physically removed — a
        shared input outlives each individual job and is cleaned once,
        after its final consumer.
        """
        if not self.cleanup:
            return 0
        # Dedup, preserving order (a path may be both transferred and returned).
        rels = list(dict.fromkeys(relpaths))
        extra = [r for r in dict.fromkeys(fetched) if r not in set(rels)]
        if self.cache is None:
            doomed = rels + extra
            return transport.remove(host, doomed, workdir) if doomed else 0
        releasable = self.cache.release(host, rels)
        # Returned files are per-job outputs, never cache-managed: always
        # removed.  Staged inputs with no cache entry (host invalidated
        # mid-run) are left alone — the host's state is unknown.
        doomed = releasable + extra
        if not doomed:
            return 0
        try:
            return transport.remove(host, doomed, workdir)
        finally:
            self.cache.removal_done(host, releasable)

    def release_prefetched(
        self, transport: "Transport", host: "HostSpec",
        relpaths: list[str], workdir: str,
    ) -> int:
        """Drop a prefetch's extra references (after its job completed).

        Mirrors :meth:`cleanup_remote` for the reference the staging lane
        took when it staged ahead: without ``--cleanup`` the refcount drop
        is bookkeeping only; with it, a last-reference file is removed.
        """
        if self.cache is None or not relpaths or not self.cleanup:
            # Without --cleanup references are never acted on, so the
            # release is skipped entirely: entries stay cached (and
            # dedupable) for the rest of the run.
            return 0
        releasable = self.cache.release(host, relpaths)
        if not releasable:
            return 0
        try:
            return transport.remove(host, releasable, workdir)
        finally:
            self.cache.removal_done(host, releasable)

    def staging_stats(self) -> dict:
        """Cache counter snapshot (empty when uncached)."""
        return self.cache.stats() if self.cache is not None else {}
