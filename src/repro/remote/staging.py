"""File staging for remote jobs (``--transferfile``/``--return``/etc).

GNU Parallel semantics, executed over a :class:`~repro.remote.transport.Transport`:

``--transferfile tmpl``
    Render ``tmpl`` per job; copy the local file to the host, landing
    *relative to the remote workdir* with any leading ``/`` (and ``./``)
    stripped — the rsync ``--relative`` rule.
``--return tmpl``
    Render per job; after a *successful* job, fetch the remote file back
    to the same local path.  A missing return file after success is a
    :class:`~repro.errors.StagingError` (job-local failure); after a
    failed job the fetch is attempted but a miss is forgiven — the job's
    own exit code is the story.
``--cleanup``
    Remove every transferred and returned file from the host afterwards
    (success or failure), pruning emptied directories.
``--basefile path``
    Like ``--transferfile`` but literal (no per-job render) and staged at
    most once per host per run; never cleaned up mid-run.

The render uses the job's own (args, seq, slot) so ``--transferfile {}``
or ``--return out/{#}.txt`` track each job exactly as its command does.

The ``:`` localhost is exempt from all of this: GNU Parallel does no
transfer/return/cleanup for the transport-free local machine (a "copy"
would be a same-path no-op, and cleanup would delete the user's own
files), so the backend never drives these phases for ``host.is_local``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.template import CommandTemplate
from repro.errors import StagingError
from repro.storage.transfer import remote_relpath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.remote.hosts import HostSpec
    from repro.remote.transport import Transport

__all__ = ["StagingPolicy"]


def _templates(specs: list[str]) -> list[CommandTemplate]:
    # implicit_append=False: a literal path like "in/data.txt" must stay
    # literal, not become "in/data.txt {}".
    return [CommandTemplate(s, implicit_append=False) for s in specs]


@dataclass
class StagingPolicy:
    """One run's staging plan; stateless per job except the basefile cache."""

    transfer: list[CommandTemplate] = field(default_factory=list)
    returns: list[CommandTemplate] = field(default_factory=list)
    basefiles: list[str] = field(default_factory=list)
    cleanup: bool = False
    #: ``--workdir`` policy forwarded to ``Transport.ensure_workdir``.
    workdir: Optional[str] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._based_hosts: set[str] = set()

    @classmethod
    def from_options(cls, options) -> "StagingPolicy":
        return cls(
            transfer=_templates(list(options.transfer_files)),
            returns=_templates(list(options.return_files)),
            basefiles=list(options.basefiles),
            cleanup=options.cleanup,
            workdir=options.workdir,
        )

    @property
    def active(self) -> bool:
        """True when any staging work exists (skip the whole path if not)."""
        return bool(self.transfer or self.returns or self.basefiles)

    # -- per-job rendering ---------------------------------------------------
    def transfer_paths(self, job: "Job", slot: int) -> list[tuple[str, str]]:
        """``[(local_src, remote_rel)]`` for this job's ``--transferfile``s."""
        return [
            (p, remote_relpath(p))
            for t in self.transfer
            for p in [t.render(job.args, seq=job.seq, slot=slot)]
        ]

    def return_paths(self, job: "Job", slot: int) -> list[tuple[str, str]]:
        """``[(remote_rel, local_dest)]`` for this job's ``--return``s."""
        return [
            (remote_relpath(p), p)
            for t in self.returns
            for p in [t.render(job.args, seq=job.seq, slot=slot)]
        ]

    # -- phases driven by the backend -----------------------------------------
    def stage_basefiles(
        self, transport: "Transport", host: "HostSpec", workdir: str
    ) -> None:
        """Stage ``--basefile``s once per host (idempotent, thread-safe)."""
        if not self.basefiles:
            return
        with self._lock:
            if host.name in self._based_hosts:
                return
            self._based_hosts.add(host.name)
        try:
            for path in self.basefiles:
                transport.put(host, path, remote_relpath(path), workdir)
        except Exception:
            # Let a later job on this host retry the basefile push.
            with self._lock:
                self._based_hosts.discard(host.name)
            raise

    def stage_in(
        self, transport: "Transport", host: "HostSpec", job: "Job",
        slot: int, workdir: str,
    ) -> list[str]:
        """Push this job's inputs; returns remote relpaths (for cleanup)."""
        staged: list[str] = []
        for src, rel in self.transfer_paths(job, slot):
            transport.put(host, src, rel, workdir)
            staged.append(rel)
        return staged

    def stage_out(
        self, transport: "Transport", host: "HostSpec", job: "Job",
        slot: int, workdir: str, job_ok: bool,
    ) -> list[str]:
        """Fetch this job's ``--return`` files; returns remote relpaths.

        After a successful job every declared return file must exist; after
        a failed one, whatever is there is salvaged and misses are ignored.
        """
        fetched: list[str] = []
        for rel, dest in self.return_paths(job, slot):
            try:
                transport.get(host, rel, dest, workdir)
            except StagingError:
                if job_ok:
                    raise
                continue
            fetched.append(rel)
        return fetched

    def cleanup_remote(
        self, transport: "Transport", host: "HostSpec",
        relpaths: list[str], workdir: str,
    ) -> int:
        """Remove staged files after the job (``--cleanup``); best-effort."""
        if not self.cleanup or not relpaths:
            return 0
        # Dedup, preserving order (a path may be both transferred and returned).
        seen: dict[str, None] = dict.fromkeys(relpaths)
        return transport.remove(host, list(seen), workdir)
