"""Pluggable execution transports for the remote dispatch layer.

A :class:`Transport` moves one job's command (and its staged files) to a
host and back.  The contract mirrors the backend contract one level down:

* a job *failing* (nonzero exit, timeout) is an :class:`ExecResult` —
  never an exception;
* the *host* failing (unreachable, connection dropped) is a
  :class:`~repro.errors.TransportError` — the signal the backend uses to
  re-place the job on another host and count toward banning;
* a *job-local* staging problem (missing ``--transferfile`` source) is a
  :class:`~repro.errors.StagingError` — the job fails, the host does not.

Two implementations:

:class:`LocalTransport`
    Real subprocesses.  Named hosts become isolated directory roots under
    a private temp dir — a faithful single-machine stand-in for N remote
    filesystems (used by tests and single-machine runs); the ``:`` host
    runs in the real working directory with no root, exactly like GNU
    Parallel's transport-free localhost.

:class:`SimTransport`
    No processes at all: per-host virtual clocks advanced by a calibrated
    :class:`~repro.sim.netmodel.NetModel`, with deterministic per-host
    jitter streams.  Lets placement/health logic and multi-host scaling
    studies run at memory speed.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.options import TMPDIR_WORKDIR
from repro.errors import StagingError, TransportError
from repro.remote.hosts import HostSpec
from repro.sim.netmodel import NetModel
from repro.storage.transfer import copy_file, remove_files

__all__ = ["ExecResult", "Transport", "LocalTransport", "SimTransport"]


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one remote command execution (job-level, not host-level)."""

    exit_code: int
    stdout: str = ""
    stderr: str = ""
    timed_out: bool = False
    duration: float = 0.0


class Transport:
    """Interface the :class:`~repro.remote.backend.RemoteBackend` drives."""

    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        """Resolve and create the job working directory on ``host``.

        ``workdir`` is the ``--workdir`` policy: None = the host's default
        (login/root) dir, ``...`` = a unique per-run directory the
        transport removes at :meth:`close`, anything else = that path
        (leading ``/`` kept relative to the host's root).
        """
        raise NotImplementedError

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        """Run ``command`` on ``host`` in ``workdir``; never raises for a
        failing job, raises :class:`TransportError` for a failing host."""
        raise NotImplementedError

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        """Stage local ``src`` to ``workdir/relpath`` on ``host`` (bytes)."""
        raise NotImplementedError

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        """Fetch ``workdir/relpath`` from ``host`` to local ``dest`` (bytes)."""
        raise NotImplementedError

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        """Best-effort delete of staged files on ``host`` (``--cleanup``)."""
        raise NotImplementedError

    def cancel_all(self) -> None:
        """Best-effort kill of everything in flight (``--halt now``)."""

    def close(self) -> None:
        """Release transport resources (per-run tempdirs, process tables)."""


def _host_dirname(host: HostSpec) -> str:
    """A filesystem-safe directory name for a host's fake root."""
    return host.name.replace("/", "_").replace("@", "_at_")


class LocalTransport(Transport):
    """Subprocess transport with one directory root per named host.

    The per-host roots make ``--transferfile``/``--return``/``--cleanup``
    observable and byte-verifiable on one machine: a file staged to
    ``node1`` is only visible to jobs executing "on" ``node1``.  The ``:``
    host gets no root — its jobs run in the real working directory, so a
    pure-localhost roster behaves exactly like the local backend.
    """

    def __init__(self, root: Optional[str] = None, shell: str = "/bin/sh"):
        self.shell = shell
        self._root = root
        self._own_root = root is None
        self._run_id = uuid.uuid4().hex[:8]
        self._procs: dict[int, subprocess.Popen] = {}
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._tmp_workdirs: list[str] = []

    # -- roots and workdirs ------------------------------------------------
    def _ensure_root(self) -> str:
        with self._lock:
            if self._root is None:
                self._root = tempfile.mkdtemp(prefix="repro-remote-")
                self._own_root = True
            return self._root

    def host_root(self, host: HostSpec) -> Optional[str]:
        """The host's fake filesystem root (None for the ``:`` localhost)."""
        if host.is_local:
            return None
        path = os.path.join(self._ensure_root(), _host_dirname(host))
        os.makedirs(path, exist_ok=True)
        return path

    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        root = self.host_root(host)
        if workdir == TMPDIR_WORKDIR:
            base = root if root is not None else tempfile.gettempdir()
            path = os.path.join(base, f".parallel-tmp-{self._run_id}")
            with self._lock:
                if path not in self._tmp_workdirs:
                    self._tmp_workdirs.append(path)
        elif workdir is None:
            path = root if root is not None else os.getcwd()
        else:
            rel = workdir.lstrip("/") if root is not None else workdir
            path = os.path.join(root, rel) if root is not None else workdir
        try:
            os.makedirs(path, exist_ok=True)
        except OSError as exc:
            raise TransportError(
                f"cannot create workdir {path!r} on {host.name!r}: {exc}",
                phase="connect",
            ) from None
        return path

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        if self._cancelled.is_set():
            return ExecResult(exit_code=-1, stderr="cancelled", timed_out=False)
        run_env = None
        if env:
            run_env = dict(os.environ)
            run_env.update(env)
        start = time.time()
        try:
            proc = subprocess.Popen(
                [self.shell, "-c", command],
                stdin=subprocess.PIPE if stdin is not None else subprocess.DEVNULL,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=workdir,
                env=run_env,
                text=True,
                start_new_session=(os.name == "posix"),
            )
        except OSError as exc:
            raise TransportError(
                f"spawn failed on {host.name!r}: {exc}", phase="execute"
            ) from None
        with self._lock:
            self._procs[proc.pid] = proc
            cancelled = self._cancelled.is_set()
        if cancelled:
            self._kill_group(proc)
        timed_out = False
        try:
            try:
                stdout, stderr = proc.communicate(input=stdin, timeout=timeout)
            except subprocess.TimeoutExpired:
                self._kill_group(proc)
                stdout, stderr = proc.communicate()
                timed_out = True
        finally:
            with self._lock:
                self._procs.pop(proc.pid, None)
        return ExecResult(
            exit_code=proc.returncode,
            stdout=stdout,
            stderr=stderr,
            timed_out=timed_out,
            duration=time.time() - start,
        )

    # -- staging -----------------------------------------------------------
    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        try:
            return copy_file(src, os.path.join(workdir, relpath))
        except OSError as exc:
            raise TransportError(
                f"transfer to {host.name!r} failed: {exc}", phase="transfer"
            ) from None

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        src = os.path.join(workdir, relpath)
        if not os.path.isfile(src):
            raise StagingError(
                f"return file {relpath!r} not found on {host.name!r}"
            )
        try:
            return copy_file(src, dest)
        except OSError as exc:
            raise TransportError(
                f"return from {host.name!r} failed: {exc}", phase="return"
            ) from None

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        # No directory pruning (root=None): the workdir is shared by every
        # slot on the host, and pruning a momentarily-empty directory races
        # with a concurrent job that just mkdir-ed it for its own output.
        return remove_files([os.path.join(workdir, rel) for rel in relpaths])

    # -- lifecycle ---------------------------------------------------------
    def cancel_all(self) -> None:
        self._cancelled.set()
        with self._lock:
            procs = list(self._procs.values())
        for proc in procs:
            self._kill_group(proc)

    @staticmethod
    def _kill_group(proc: subprocess.Popen) -> None:
        try:
            if os.name == "posix":
                os.killpg(proc.pid, signal.SIGTERM)
            else:  # pragma: no cover - non-posix fallback
                proc.terminate()
        except (ProcessLookupError, PermissionError):
            pass

    def close(self) -> None:
        self.cancel_all()
        with self._lock:
            tmp_workdirs, self._tmp_workdirs = self._tmp_workdirs, []
            root, own = self._root, self._own_root
            if own:
                self._root = None
        for path in tmp_workdirs:
            shutil.rmtree(path, ignore_errors=True)
        if own and root is not None:
            shutil.rmtree(root, ignore_errors=True)
        self._cancelled = threading.Event()


class SimTransport(Transport):
    """Virtual-time transport: no processes, per-host clocks, seeded jitter.

    ``handler(host, command) -> (exit_code, stdout)`` lets tests script
    outcomes; the default succeeds with empty output.  ``put`` reads real
    local files (size + content) into a per-host virtual filesystem so
    staging logic is exercised end-to-end; ``provide`` seeds remote files
    (a job's "outputs") for ``--return`` paths.
    """

    def __init__(
        self,
        model: NetModel = NetModel(),
        runtime_s: float = 0.0,
        seed: int = 0,
        handler: Optional[Callable[[HostSpec, str], tuple[int, str]]] = None,
    ):
        from repro.sim.random import RngRegistry

        self.model = model
        self.runtime_s = runtime_s
        self.handler = handler
        self._rng = RngRegistry(seed)
        self._lock = threading.Lock()
        #: Per-host virtual seconds consumed (connects + transfers + runs).
        self.clocks: dict[str, float] = {}
        #: Per-host virtual filesystem: relpath -> content bytes.
        self.files: dict[str, dict[str, bytes]] = {}
        #: Every execute, in call order: (host name, command, seq).
        self.exec_log: list[tuple[str, str, int]] = []

    def _advance(self, host: HostSpec, seconds: float) -> None:
        with self._lock:
            self.clocks[host.name] = self.clocks.get(host.name, 0.0) + seconds

    def _jitter_u(self, host: HostSpec) -> float:
        if self.model.jitter == 0.0:
            return 0.0
        return float(self._rng.stream(f"net/{host.name}").uniform(-1.0, 1.0))

    def elapsed(self, host: HostSpec) -> float:
        """Virtual seconds this host has spent so far."""
        with self._lock:
            return self.clocks.get(host.name, 0.0)

    def provide(self, host: HostSpec, relpath: str, content: bytes = b"") -> None:
        """Seed a file on the host's virtual filesystem (a job output)."""
        with self._lock:
            self.files.setdefault(host.name, {})[relpath] = content

    # -- Transport interface -----------------------------------------------
    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        return f"sim://{host.name}/{(workdir or '').lstrip('/')}"

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        duration = self.model.exec_time(self.runtime_s, self._jitter_u(host))
        if timeout is not None and duration > timeout:
            self._advance(host, timeout)
            return ExecResult(
                exit_code=-1, timed_out=True, duration=timeout,
                stderr=f"simulated timeout after {timeout:.4g}s",
            )
        self._advance(host, duration)
        with self._lock:
            self.exec_log.append((host.name, command, seq))
        exit_code, stdout = (
            self.handler(host, command) if self.handler else (0, "")
        )
        return ExecResult(exit_code=exit_code, stdout=stdout, duration=duration)

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        if not os.path.isfile(src):
            raise StagingError(f"transfer source missing: {src!r}")
        with open(src, "rb") as fh:
            content = fh.read()
        self._advance(host, self.model.transfer_time(len(content), self._jitter_u(host)))
        with self._lock:
            self.files.setdefault(host.name, {})[relpath] = content
        return len(content)

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        with self._lock:
            content = self.files.get(host.name, {}).get(relpath)
        if content is None:
            raise StagingError(
                f"return file {relpath!r} not found on {host.name!r}"
            )
        self._advance(host, self.model.transfer_time(len(content), self._jitter_u(host)))
        parent = os.path.dirname(dest)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(dest, "wb") as fh:
            fh.write(content)
        return len(content)

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        removed = 0
        with self._lock:
            table = self.files.get(host.name, {})
            for rel in relpaths:
                if table.pop(rel, None) is not None:
                    removed += 1
        self._advance(host, self.model.latency_s * len(relpaths))
        return removed
