"""Pluggable execution transports for the remote dispatch layer.

A :class:`Transport` moves one job's command (and its staged files) to a
host and back.  The contract mirrors the backend contract one level down:

* a job *failing* (nonzero exit, timeout) is an :class:`ExecResult` —
  never an exception;
* the *host* failing (unreachable, connection dropped) is a
  :class:`~repro.errors.TransportError` — the signal the backend uses to
  re-place the job on another host and count toward banning;
* a *job-local* staging problem (missing ``--transferfile`` source) is a
  :class:`~repro.errors.StagingError` — the job fails, the host does not.

Two implementations:

:class:`LocalTransport`
    Real subprocesses.  Named hosts become isolated directory roots under
    a private temp dir — a faithful single-machine stand-in for N remote
    filesystems (used by tests and single-machine runs); the ``:`` host
    runs in the real working directory with no root, exactly like GNU
    Parallel's transport-free localhost.

:class:`SimTransport`
    No processes at all: per-host virtual clocks advanced by a calibrated
    :class:`~repro.sim.netmodel.NetModel`, with deterministic per-host
    jitter streams.  Lets placement/health logic and multi-host scaling
    studies run at memory speed.

Persistent channels
-------------------

:meth:`Transport.open_channel` returns a :class:`Channel` — one
long-lived control session per host, opened once per run by the remote
backend.  A channel keeps every Transport method signature (including
the ``host`` parameter), so staging code drives a channel and a bare
transport interchangeably; what changes is the cost model: per-host
session state (merged environment, spawn machinery, simulated connect
latency) is paid at :meth:`~Transport.open_channel` instead of per job.
The base :class:`Channel` simply delegates to its transport — wrapper
transports (fault injection) inherit that and keep intercepting.
"""

from __future__ import annotations

import locale
import os
import shutil
import signal
import subprocess
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.backends.reaper import PipeReaper
from repro.core.backends.spawn import SpawnLauncher, spawn_supported, wrap_chdir
from repro.core.options import TMPDIR_WORKDIR
from repro.errors import StagingError, TransportError
from repro.remote.hosts import HostSpec
from repro.sim.netmodel import NetModel
from repro.storage.transfer import copy_file, plan_streams, remove_files

__all__ = [
    "Channel",
    "ExecResult",
    "Transport",
    "LocalTransport",
    "SimTransport",
]


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one remote command execution (job-level, not host-level)."""

    exit_code: int
    stdout: str = ""
    stderr: str = ""
    timed_out: bool = False
    duration: float = 0.0


class Transport:
    """Interface the :class:`~repro.remote.backend.RemoteBackend` drives."""

    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        """Resolve and create the job working directory on ``host``.

        ``workdir`` is the ``--workdir`` policy: None = the host's default
        (login/root) dir, ``...`` = a unique per-run directory the
        transport removes at :meth:`close`, anything else = that path
        (leading ``/`` kept relative to the host's root).
        """
        raise NotImplementedError

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        """Run ``command`` on ``host`` in ``workdir``; never raises for a
        failing job, raises :class:`TransportError` for a failing host."""
        raise NotImplementedError

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        """Stage local ``src`` to ``workdir/relpath`` on ``host`` (bytes)."""
        raise NotImplementedError

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        """Fetch ``workdir/relpath`` from ``host`` to local ``dest`` (bytes)."""
        raise NotImplementedError

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        """Best-effort delete of staged files on ``host`` (``--cleanup``)."""
        raise NotImplementedError

    def cancel_all(self) -> None:
        """Best-effort kill of everything in flight (``--halt now``)."""

    def close(self) -> None:
        """Release transport resources (per-run tempdirs, process tables)."""

    def open_channel(self, host: HostSpec) -> "Channel":
        """Open one persistent control channel to ``host``.

        Called once per host at run start by the remote backend; every
        per-job operation then goes through the channel.  The default is
        a transparent delegator — transports with amortizable per-host
        session cost override this.
        """
        return Channel(self, host)


class Channel:
    """A persistent per-host control session on a :class:`Transport`.

    Method signatures mirror the transport's (``host`` included) so
    staging policies drive either without caring which they hold; the
    bound ``host`` is authoritative — the parameter is accepted for
    signature compatibility and ignored.  This base class delegates
    verbatim (correct for wrapper transports such as fault injectors,
    whose interception must stay on the path); subclasses amortize.
    """

    def __init__(self, transport: Transport, host: HostSpec):
        self.transport = transport
        self.host = host

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        return self.transport.execute(
            self.host, command, workdir=workdir, stdin=stdin, env=env,
            timeout=timeout, seq=seq, attempt=attempt,
        )

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        return self.transport.put(self.host, src, relpath, workdir)

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        return self.transport.get(self.host, relpath, dest, workdir)

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        return self.transport.remove(self.host, relpaths, workdir)

    def close(self) -> None:
        """Release channel-held session state (the transport stays open)."""


def _host_dirname(host: HostSpec) -> str:
    """A filesystem-safe directory name for a host's fake root."""
    return host.name.replace("/", "_").replace("@", "_at_")


class LocalTransport(Transport):
    """Subprocess transport with one directory root per named host.

    The per-host roots make ``--transferfile``/``--return``/``--cleanup``
    observable and byte-verifiable on one machine: a file staged to
    ``node1`` is only visible to jobs executing "on" ``node1``.  The ``:``
    host gets no root — its jobs run in the real working directory, so a
    pure-localhost roster behaves exactly like the local backend.
    """

    def __init__(self, root: Optional[str] = None, shell: str = "/bin/sh"):
        self.shell = shell
        self._root = root
        self._own_root = root is None
        self._run_id = uuid.uuid4().hex[:8]
        #: In-flight process pids (Popen path and channel spawn path both
        #: register here so ``cancel_all`` covers everything).
        self._procs: dict[int, object] = {}
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._tmp_workdirs: list[str] = []
        #: Shared pipe reaper serving every channel's spawn path; created
        #: lazily, replaced if a previous run closed it.
        self._reaper: Optional[PipeReaper] = None

    def open_channel(self, host: HostSpec) -> "Channel":
        """A persistent session: env merged once, posix_spawn + shared reaper."""
        return _LocalChannel(self, host)

    def _reaper_for(self) -> PipeReaper:
        with self._lock:
            if self._reaper is None or self._reaper.closed or not self._reaper.alive:
                self._reaper = PipeReaper()
            return self._reaper

    def _track(self, pid: int) -> bool:
        """Register an in-flight pid; returns True when a cancel raced in."""
        with self._lock:
            self._procs[pid] = pid
            return self._cancelled.is_set()

    def _untrack(self, pid: int) -> None:
        with self._lock:
            self._procs.pop(pid, None)

    # -- roots and workdirs ------------------------------------------------
    def _ensure_root(self) -> str:
        with self._lock:
            if self._root is None:
                self._root = tempfile.mkdtemp(prefix="repro-remote-")
                self._own_root = True
            return self._root

    def host_root(self, host: HostSpec) -> Optional[str]:
        """The host's fake filesystem root (None for the ``:`` localhost)."""
        if host.is_local:
            return None
        path = os.path.join(self._ensure_root(), _host_dirname(host))
        os.makedirs(path, exist_ok=True)
        return path

    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        root = self.host_root(host)
        if workdir == TMPDIR_WORKDIR:
            base = root if root is not None else tempfile.gettempdir()
            path = os.path.join(base, f".parallel-tmp-{self._run_id}")
            with self._lock:
                if path not in self._tmp_workdirs:
                    self._tmp_workdirs.append(path)
        elif workdir is None:
            path = root if root is not None else os.getcwd()
        else:
            rel = workdir.lstrip("/") if root is not None else workdir
            path = os.path.join(root, rel) if root is not None else workdir
        try:
            os.makedirs(path, exist_ok=True)
        except OSError as exc:
            raise TransportError(
                f"cannot create workdir {path!r} on {host.name!r}: {exc}",
                phase="connect",
            ) from None
        return path

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        if self._cancelled.is_set():
            return ExecResult(exit_code=-1, stderr="cancelled", timed_out=False)
        run_env = None
        if env:
            run_env = dict(os.environ)
            run_env.update(env)
        start = time.time()
        try:
            proc = subprocess.Popen(
                [self.shell, "-c", command],
                stdin=subprocess.PIPE if stdin is not None else subprocess.DEVNULL,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=workdir,
                env=run_env,
                text=True,
                start_new_session=(os.name == "posix"),
            )
        except OSError as exc:
            raise TransportError(
                f"spawn failed on {host.name!r}: {exc}", phase="execute"
            ) from None
        if self._track(proc.pid):
            self._kill_group(proc.pid)
        timed_out = False
        try:
            try:
                stdout, stderr = proc.communicate(input=stdin, timeout=timeout)
            except subprocess.TimeoutExpired:
                self._kill_group(proc.pid)
                stdout, stderr = proc.communicate()
                timed_out = True
        finally:
            self._untrack(proc.pid)
        return ExecResult(
            exit_code=proc.returncode,
            stdout=stdout,
            stderr=stderr,
            timed_out=timed_out,
            duration=time.time() - start,
        )

    # -- staging -----------------------------------------------------------
    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        try:
            return copy_file(src, os.path.join(workdir, relpath))
        except OSError as exc:
            raise TransportError(
                f"transfer to {host.name!r} failed: {exc}", phase="transfer"
            ) from None

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        src = os.path.join(workdir, relpath)
        if not os.path.isfile(src):
            raise StagingError(
                f"return file {relpath!r} not found on {host.name!r}"
            )
        try:
            return copy_file(src, dest)
        except OSError as exc:
            raise TransportError(
                f"return from {host.name!r} failed: {exc}", phase="return"
            ) from None

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        # No directory pruning (root=None): the workdir is shared by every
        # slot on the host, and pruning a momentarily-empty directory races
        # with a concurrent job that just mkdir-ed it for its own output.
        return remove_files([os.path.join(workdir, rel) for rel in relpaths])

    # -- lifecycle ---------------------------------------------------------
    def cancel_all(self) -> None:
        self._cancelled.set()
        with self._lock:
            pids = list(self._procs)
        for pid in pids:
            self._kill_group(pid)

    @staticmethod
    def _kill_group(pid: int) -> None:
        try:
            if os.name == "posix":
                os.killpg(pid, signal.SIGTERM)
            else:  # pragma: no cover - non-posix fallback
                os.kill(pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass

    def close(self) -> None:
        self.cancel_all()
        with self._lock:
            tmp_workdirs, self._tmp_workdirs = self._tmp_workdirs, []
            root, own = self._root, self._own_root
            if own:
                self._root = None
            reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.close()
        for path in tmp_workdirs:
            shutil.rmtree(path, ignore_errors=True)
        if own and root is not None:
            shutil.rmtree(root, ignore_errors=True)
        self._cancelled = threading.Event()


class _LocalChannel(Channel):
    """A persistent local "ssh session": the per-job costs a real control
    master amortizes — environment assembly, connection/session setup —
    are paid once here, and per-job execution takes the posix_spawn +
    shared-reaper fast path (``cd`` is done by the spawned shell, since
    ``posix_spawn`` has no working-directory attribute).

    Falls back to the transport's Popen path per call when the job needs
    stdin (``--pipe``), the platform lacks posix_spawn support, or the
    shared reaper has failed.
    """

    def __init__(self, transport: "LocalTransport", host: HostSpec):
        super().__init__(transport, host)
        self._launcher: Optional[SpawnLauncher] = None
        #: The ``env`` mapping the launcher's merged vector was built from
        #: (compared with ``is`` — it is per-run constant ``options.env``).
        self._env_src: Optional[dict[str, str]] = None
        self._encoding = locale.getpreferredencoding(False)

    def _launcher_for(self, env: Optional[dict[str, str]]) -> SpawnLauncher:
        if self._launcher is None or env is not self._env_src:
            if self._launcher is not None:
                self._launcher.close()
            merged = None
            if env:
                merged = dict(os.environ)
                merged.update(env)
            self._launcher = SpawnLauncher(self.transport.shell, env=merged)
            self._env_src = env
        return self._launcher

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        transport = self.transport
        if stdin is not None or not spawn_supported():
            return super().execute(
                host, command, workdir=workdir, stdin=stdin, env=env,
                timeout=timeout, seq=seq, attempt=attempt,
            )
        if transport._cancelled.is_set():
            return ExecResult(exit_code=-1, stderr="cancelled", timed_out=False)
        reaper = transport._reaper_for()
        launcher = self._launcher_for(env)
        start = time.time()
        try:
            pid, out_r, err_r = launcher.spawn(wrap_chdir(workdir, command))
        except OSError as exc:
            raise TransportError(
                f"spawn failed on {self.host.name!r}: {exc}", phase="execute"
            ) from None
        try:
            handle = reaper.register(pid, out_r, err_r, encoding=self._encoding)
        except RuntimeError:
            # The reaper closed under us; the process already started, so
            # collect it inline rather than re-running its side effects.
            os.close(out_r)
            os.close(err_r)
            _, status = os.waitpid(pid, 0)
            return ExecResult(
                exit_code=os.waitstatus_to_exitcode(status),
                stderr="reaper shut down mid-run",
                duration=time.time() - start,
            )
        if transport._track(pid):
            transport._kill_group(pid)
        timed_out = False
        try:
            if not handle.wait(timeout):
                transport._kill_group(pid)
                handle.wait()
                timed_out = True
        finally:
            transport._untrack(pid)
        stdout = _decode_universal(bytes(handle.stdout_buf), self._encoding)
        stderr = _decode_universal(bytes(handle.stderr_buf), self._encoding)
        return ExecResult(
            exit_code=handle.returncode if handle.returncode is not None else -1,
            stdout=stdout,
            stderr=stderr,
            timed_out=timed_out,
            duration=time.time() - start,
        )

    def close(self) -> None:
        if self._launcher is not None:
            self._launcher.close()
            self._launcher = None
            self._env_src = None


def _decode_universal(data: bytes, encoding: str) -> str:
    """Decode captured output with ``Popen(text=True)`` parity (strict
    errors, universal newlines)."""
    text = data.decode(encoding)
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    return text


class SimTransport(Transport):
    """Virtual-time transport: no processes, per-host clocks, seeded jitter.

    ``handler(host, command) -> (exit_code, stdout)`` lets tests script
    outcomes; the default succeeds with empty output.  ``put`` reads real
    local files (size + content) into a per-host virtual filesystem so
    staging logic is exercised end-to-end; ``provide`` seeds remote files
    (a job's "outputs") for ``--return`` paths.
    """

    def __init__(
        self,
        model: NetModel = NetModel(),
        runtime_s: float = 0.0,
        seed: int = 0,
        handler: Optional[Callable[[HostSpec, str], tuple[int, str]]] = None,
    ):
        from repro.sim.random import RngRegistry

        self.model = model
        self.runtime_s = runtime_s
        self.handler = handler
        self._rng = RngRegistry(seed)
        self._lock = threading.Lock()
        #: Per-host virtual seconds consumed (connects + transfers + runs).
        self.clocks: dict[str, float] = {}
        #: Per-host virtual filesystem: relpath -> content bytes.
        self.files: dict[str, dict[str, bytes]] = {}
        #: Every execute, in call order: (host name, command, seq).
        self.exec_log: list[tuple[str, str, int]] = []

    def _advance(self, host: HostSpec, seconds: float) -> None:
        with self._lock:
            self.clocks[host.name] = self.clocks.get(host.name, 0.0) + seconds

    def _jitter_u(self, host: HostSpec) -> float:
        if self.model.jitter == 0.0:
            return 0.0
        return float(self._rng.stream(f"net/{host.name}").uniform(-1.0, 1.0))

    def elapsed(self, host: HostSpec) -> float:
        """Virtual seconds this host has spent so far."""
        with self._lock:
            return self.clocks.get(host.name, 0.0)

    def provide(self, host: HostSpec, relpath: str, content: bytes = b"") -> None:
        """Seed a file on the host's virtual filesystem (a job output)."""
        with self._lock:
            self.files.setdefault(host.name, {})[relpath] = content

    # -- Transport interface -----------------------------------------------
    def ensure_workdir(self, host: HostSpec, workdir: Optional[str]) -> str:
        return f"sim://{host.name}/{(workdir or '').lstrip('/')}"

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        duration = self.model.exec_time(self.runtime_s, self._jitter_u(host))
        if timeout is not None and duration > timeout:
            self._advance(host, timeout)
            return ExecResult(
                exit_code=-1, timed_out=True, duration=timeout,
                stderr=f"simulated timeout after {timeout:.4g}s",
            )
        self._advance(host, duration)
        with self._lock:
            self.exec_log.append((host.name, command, seq))
        exit_code, stdout = (
            self.handler(host, command) if self.handler else (0, "")
        )
        return ExecResult(exit_code=exit_code, stdout=stdout, duration=duration)

    def put(self, host: HostSpec, src: str, relpath: str, workdir: str) -> int:
        if not os.path.isfile(src):
            raise StagingError(f"transfer source missing: {src!r}")
        with open(src, "rb") as fh:
            content = fh.read()
        # Charge the same multi-stream shape the executable transport
        # uses, so calibrated benches see identical data-motion policy.
        self._advance(host, self.model.transfer_time(
            len(content), self._jitter_u(host),
            streams=plan_streams(len(content)),
        ))
        with self._lock:
            self.files.setdefault(host.name, {})[relpath] = content
        return len(content)

    def get(self, host: HostSpec, relpath: str, dest: str, workdir: str) -> int:
        with self._lock:
            content = self.files.get(host.name, {}).get(relpath)
        if content is None:
            raise StagingError(
                f"return file {relpath!r} not found on {host.name!r}"
            )
        self._advance(host, self.model.transfer_time(len(content), self._jitter_u(host)))
        parent = os.path.dirname(dest)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(dest, "wb") as fh:
            fh.write(content)
        return len(content)

    def remove(self, host: HostSpec, relpaths: list[str], workdir: str) -> int:
        removed = 0
        with self._lock:
            table = self.files.get(host.name, {})
            for rel in relpaths:
                if table.pop(rel, None) is not None:
                    removed += 1
        # Removes are batched (one request per call, however many paths).
        self._advance(host, self.model.remove_time(len(relpaths)))
        return removed

    def open_channel(self, host: HostSpec) -> "Channel":
        """A persistent session: connect latency charged once, here."""
        return _SimChannel(self, host)


class _SimChannel(Channel):
    """Persistent simulated session: the :class:`NetModel` connect latency
    is charged to the host's clock once at open; each execute then costs
    only the job's runtime (jittered) — the cost model a long-lived ssh
    control connection produces, and the contrast the multi-host scaling
    experiments measure against the per-job-connect transport path.
    """

    def __init__(self, transport: "SimTransport", host: HostSpec):
        super().__init__(transport, host)
        transport._advance(host, transport.model.latency_s)

    def execute(
        self,
        host: HostSpec,
        command: str,
        *,
        workdir: str,
        stdin: Optional[str] = None,
        env: Optional[dict[str, str]] = None,
        timeout: Optional[float] = None,
        seq: int = 0,
        attempt: int = 1,
    ) -> ExecResult:
        transport = self.transport
        u = transport._jitter_u(self.host)
        duration = transport.runtime_s * (1.0 + transport.model.jitter * u)
        if timeout is not None and duration > timeout:
            transport._advance(self.host, timeout)
            return ExecResult(
                exit_code=-1, timed_out=True, duration=timeout,
                stderr=f"simulated timeout after {timeout:.4g}s",
            )
        transport._advance(self.host, duration)
        with transport._lock:
            transport.exec_log.append((self.host.name, command, seq))
        exit_code, stdout = (
            transport.handler(self.host, command) if transport.handler else (0, "")
        )
        return ExecResult(exit_code=exit_code, stdout=stdout, duration=duration)
