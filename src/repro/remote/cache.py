"""Content-addressed staging cache for the remote data plane.

The paper's DTN pipelines (§IV-E, Fig. 7) stay cheap because rsync skips
already-identical files; the executable data plane gets the same property
here.  A :class:`StagingCache` keys every staged file by *content* — a
fast fingerprint ``(abspath, size, mtime_ns)`` promoted to a sha256
digest only when two different fingerprints land on the same remote path
— and tracks per ``(host, relpath)`` state, so ``--transferfile {}``
over N jobs sharing one input stages it **once per host per run**
instead of once per job.  ``--basefile`` routes through the same cache,
so a basefile and a transferfile resolving to the same remote path dedup
against each other.

Concurrency contract (the generalization of the old ``--basefile``
mark-before-push race fix):

* the first thread to need ``(host, rel)`` becomes the *owner* and pushes
  while holding a pending gate (a :class:`threading.Event`);
* concurrent threads needing the same file **wait on the gate** — they
  never run while the push is still in flight, and never re-push;
* an owner's failure discards the entry and wakes the waiters, which race
  to become the new owner (a later job retries the push);
* eviction (refcount reaching zero under ``--cleanup``) installs a
  *removal gate*: a re-stage of the same path blocks until the physical
  remove has finished, so an off-critical-path cleanup can never delete a
  file a later job just re-staged.

Reference counts defer ``--cleanup``: every referencing job retains its
staged inputs and releases them when it finishes; the physical remove
happens only when the **last** referencing job lets go.  ``--basefile``
entries are retained permanently (never cleaned mid-run), preserving the
old semantics.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import StagingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.remote.hosts import HostSpec

__all__ = ["StagingCache"]

#: Read size for on-demand sha256 promotion.
_HASH_BLOCK = 1 << 20


class _Entry:
    """State of one staged ``(host, relpath)`` remote file."""

    __slots__ = ("src_fp", "size", "digest", "event", "ready", "refs",
                 "permanent")

    def __init__(self, src_fp: tuple, size: int):
        self.src_fp = src_fp
        self.size = size
        #: sha256 of the staged content; computed lazily (fast-key misses
        #: only), None until promoted.
        self.digest: Optional[str] = None
        self.event = threading.Event()
        self.ready = False
        self.refs = 0
        self.permanent = False


class StagingCache:
    """Per-run content-addressed cache of files staged to remote hosts.

    Thread-safe; one instance is shared by every worker thread (and the
    backend's staging lane) for the duration of a run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: ``(host name, relpath) -> _Entry``
        self._entries: dict[tuple[str, str], _Entry] = {}
        #: Fast-key -> sha256 memo (one hash per unique file version).
        self._digests: dict[tuple, str] = {}
        #: Relpaths whose physical remove is in flight: re-stagers wait.
        self._removing: dict[tuple[str, str], threading.Event] = {}
        # Counters (all guarded by the lock).
        self._files_staged = 0
        self._cache_hits = 0
        self._bytes_moved = 0
        self._bytes_avoided = 0

    # -- content identity ----------------------------------------------------
    @staticmethod
    def fingerprint(path: str) -> tuple:
        """Fast content key: ``(abspath, size, mtime_ns)``.

        Cheap enough for the per-job path (one ``stat``); two equal
        fingerprints are the same file version without reading a byte.
        A missing source is the job's fault: :class:`StagingError`.
        """
        try:
            st = os.stat(path)
        except OSError:
            raise StagingError(f"transfer source missing: {path!r}") from None
        if not os.path.isfile(path):
            raise StagingError(f"transfer source is not a file: {path!r}")
        return (os.path.abspath(path), st.st_size, st.st_mtime_ns)

    def digest_for(self, path: str, fp: Optional[tuple] = None) -> str:
        """sha256 of ``path``, memoized per fingerprint (promote on demand)."""
        fp = fp if fp is not None else self.fingerprint(path)
        with self._lock:
            cached = self._digests.get(fp)
        if cached is not None:
            return cached
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            while True:
                block = fh.read(_HASH_BLOCK)
                if not block:
                    break
                h.update(block)
        digest = h.hexdigest()
        with self._lock:
            self._digests[fp] = digest
        return digest

    # -- the staged-once guarantee -------------------------------------------
    def ensure(
        self,
        transport,
        host: "HostSpec",
        src: str,
        rel: str,
        workdir: str,
        permanent: bool = False,
    ) -> tuple[int, bool]:
        """Make ``src`` present at ``workdir/rel`` on ``host``; dedup'd.

        Returns ``(bytes_moved, hit)`` — ``(0, True)`` when the content is
        already there (or another thread's in-flight push covered it).
        The caller's reference is retained either way; pair with
        :meth:`release` when the job finishes.  Push failures propagate
        (StagingError/TransportError) with the entry discarded so a later
        job retries.
        """
        fp = self.fingerprint(src)
        size = fp[1]
        key = (host.name, rel)
        while True:
            wait_on: Optional[threading.Event] = None
            verify_against: Optional[_Entry] = None
            entry: Optional[_Entry] = None
            with self._lock:
                removing = self._removing.get(key)
                if removing is not None:
                    wait_on = removing
                else:
                    entry = self._entries.get(key)
                    if entry is None:
                        entry = _Entry(fp, size)
                        entry.refs = 1
                        entry.permanent = permanent
                        self._entries[key] = entry
                        # We own the push; fall through outside the lock.
                    elif not entry.ready:
                        wait_on = entry.event
                    elif entry.src_fp == fp:
                        # Fast-key hit: same file version already staged.
                        entry.refs += 1
                        entry.permanent = entry.permanent or permanent
                        self._cache_hits += 1
                        self._bytes_avoided += size
                        return 0, True
                    else:
                        # Same remote path, different fingerprint: promote
                        # to sha256 outside the lock before deciding.
                        verify_against = entry

            if wait_on is not None:
                wait_on.wait()
                continue  # re-examine: staged, failed, or removed

            if verify_against is not None:
                if self._content_matches(verify_against, fp, src):
                    with self._lock:
                        current = self._entries.get(key)
                        if current is not verify_against or not current.ready:
                            continue  # entry churned under us; retry
                        current.refs += 1
                        current.permanent = current.permanent or permanent
                        self._cache_hits += 1
                        self._bytes_avoided += size
                    return 0, True
                # Genuinely different content for the same remote path:
                # re-stage over it (last write wins, matching the
                # uncached per-job put semantics).
                with self._lock:
                    current = self._entries.get(key)
                    if current is not verify_against:
                        continue
                    entry = current
                    entry.src_fp = fp
                    entry.size = size
                    entry.digest = None
                    entry.ready = False
                    entry.event = threading.Event()
                    entry.refs += 1
                    entry.permanent = entry.permanent or permanent
                # We own the re-push.

            assert entry is not None
            try:
                moved = transport.put(host, src, rel, workdir)
            except Exception:
                with self._lock:
                    current = self._entries.get(key)
                    if current is entry:
                        del self._entries[key]
                entry.event.set()  # wake waiters; they race to retry
                raise
            with self._lock:
                entry.ready = True
                self._files_staged += 1
                self._bytes_moved += int(moved)
            entry.event.set()
            return int(moved), False

    def _content_matches(self, entry: _Entry, fp: tuple, src: str) -> bool:
        """Digest comparison between a staged entry and a new source."""
        if entry.digest is None:
            # The entry's digest is derivable only from its original
            # source file, and only while that file is still the same
            # version it was staged from.
            orig_path = entry.src_fp[0]
            try:
                if self.fingerprint(orig_path) != entry.src_fp:
                    return False  # original changed; staged content unknown
            except StagingError:
                return False
            entry.digest = self.digest_for(orig_path, entry.src_fp)
        return self.digest_for(src, fp) == entry.digest

    # -- refcounted cleanup ---------------------------------------------------
    def retain(self, host: "HostSpec", rel: str) -> None:
        """Add one reference to a staged entry (no-op if not cached)."""
        with self._lock:
            entry = self._entries.get((host.name, rel))
            if entry is not None:
                entry.refs += 1

    def release(self, host: "HostSpec", rels: list[str]) -> list[str]:
        """Drop one reference per relpath; returns rels now safe to remove.

        A returned rel has been evicted from the cache and holds a
        *removal gate*: the caller must physically remove it and then call
        :meth:`removal_done`.  Relpaths with no cache entry (returned
        files, invalidated hosts) are never in the result — the caller
        decides their fate separately.
        """
        to_remove: list[str] = []
        with self._lock:
            for rel in rels:
                key = (host.name, rel)
                entry = self._entries.get(key)
                if entry is None or entry.permanent:
                    continue
                entry.refs -= 1
                if entry.refs <= 0 and entry.ready:
                    del self._entries[key]
                    self._removing[key] = threading.Event()
                    to_remove.append(rel)
        return to_remove

    def removal_done(self, host: "HostSpec", rels: list[str]) -> None:
        """Clear removal gates after the physical remove finished."""
        with self._lock:
            gates = [self._removing.pop((host.name, rel), None) for rel in rels]
        for gate in gates:
            if gate is not None:
                gate.set()

    # -- failure handling -----------------------------------------------------
    def invalidate_host(self, host_name: str) -> None:
        """Forget everything staged to ``host_name`` (transport failure).

        A re-placed job must not trust files on a host that dropped its
        connection; waiters blocked on in-flight pushes are woken and
        re-examine (finding nothing, one becomes the new owner — whose
        push then surfaces the host's true state).
        """
        with self._lock:
            dead = [k for k in self._entries if k[0] == host_name]
            entries = [self._entries.pop(k) for k in dead]
            gates = [
                self._removing.pop(k)
                for k in [k for k in self._removing if k[0] == host_name]
            ]
        for entry in entries:
            entry.event.set()
        for gate in gates:
            gate.set()

    # -- reporting ------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for the run summary / tracer meta."""
        with self._lock:
            return {
                "files_staged": self._files_staged,
                "cache_hits": self._cache_hits,
                "bytes_moved": self._bytes_moved,
                "bytes_staged_avoided": self._bytes_avoided,
            }
