"""Host rosters for centralized multi-host dispatch (``--sshlogin``).

GNU Parallel's second scaling axis (next to the paper's driver-script
sharding) is one coordinator feeding jobs to many hosts.  A roster is
parsed from the ``-S``/``--sshlogin`` syntax::

    -S 8/node1,16/node2,:        # 8 slots on node1, 16 on node2, localhost
    --sshloginfile hosts.txt     # one sshlogin per line, '#' comments

``N/host`` fixes the host's slot count; a bare host inherits the run's
``-j`` value (GNU Parallel's ``-j`` is *per host* when ``-S`` is used);
``:`` is the local machine without any transport hop.

:class:`HostPool` is the scheduler-facing piece: thread-safe least-loaded
placement over the roster with per-host slot numbering (``{%}`` is 1-based
*within* the host, the property the paper's GPU-isolation idiom needs on
every node independently), plus health tracking — ``ban_after``
consecutive transport failures take a host out of rotation and wake every
blocked acquirer so in-flight work re-places onto the survivors.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import OptionsError

__all__ = [
    "HostSpec",
    "HostLease",
    "HostPool",
    "parse_sshlogin",
    "parse_sshloginfile",
    "hosts_from_options",
]

#: The sshlogin spelling of "this machine, no transport hop".
LOCALHOST_NAMES = (":", "localhost")


@dataclass(frozen=True)
class HostSpec:
    """One execution host: sshlogin string plus its slot count."""

    #: The sshlogin as given (``node1``, ``user@node1``, ``:``); recorded
    #: verbatim in joblogs, as GNU Parallel does.
    name: str
    #: Concurrent job slots on this host (``N/host``; defaults to ``-j``).
    slots: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise OptionsError("empty sshlogin host name")
        if self.slots < 1:
            raise OptionsError(
                f"host {self.name!r} needs >= 1 slot, got {self.slots}"
            )

    @property
    def is_local(self) -> bool:
        """True for ``:`` — run on this machine without a transport hop."""
        return self.name in LOCALHOST_NAMES

    @property
    def user(self) -> Optional[str]:
        """The ``user@host`` user part, or None."""
        return self.name.split("@", 1)[0] if "@" in self.name else None


def parse_sshlogin(spec: str, default_slots: int = 1) -> list[HostSpec]:
    """Parse one ``-S`` value: comma-separated ``[N/]host`` entries."""
    hosts: list[HostSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        slots = default_slots
        name = entry
        if "/" in entry:
            count, name = entry.split("/", 1)
            count, name = count.strip(), name.strip()
            if not count.isdigit():
                raise OptionsError(
                    f"bad sshlogin {entry!r}: expected N/host with integer N"
                )
            slots = int(count)
        if not name:
            raise OptionsError(f"bad sshlogin {entry!r}: missing host name")
        hosts.append(HostSpec(name=name, slots=slots))
    if not hosts:
        raise OptionsError(f"sshlogin spec {spec!r} names no hosts")
    return hosts


def parse_sshloginfile(path: str, default_slots: int = 1) -> list[HostSpec]:
    """Parse an ``--sshloginfile``: one sshlogin per line, ``#`` comments."""
    hosts: list[HostSpec] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise OptionsError(f"cannot read sshloginfile {path!r}: {exc}") from exc
    with fh:
        for line in fh:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            hosts.extend(parse_sshlogin(line, default_slots=default_slots))
    if not hosts:
        raise OptionsError(f"sshloginfile {path!r} names no hosts")
    return hosts


def hosts_from_options(options) -> list[HostSpec]:
    """The run's roster from ``Options`` (``sshlogin`` + ``sshloginfile``).

    Per GNU Parallel, ``-j`` sets the *per-host* default slot count;
    ``N/host`` entries override it.  Duplicate host names are collapsed,
    last spec wins (matching ``--sshloginfile`` re-reads).
    """
    default_slots = options.jobs if options.jobs > 0 else 1
    hosts: list[HostSpec] = []
    for spec in options.sshlogin:
        hosts.extend(parse_sshlogin(spec, default_slots=default_slots))
    if options.sshloginfile:
        hosts.extend(
            parse_sshloginfile(options.sshloginfile, default_slots=default_slots)
        )
    if not hosts:
        raise OptionsError("remote execution requires -S/--sshlogin or --sshloginfile")
    seen: dict[str, HostSpec] = {}
    for host in hosts:
        seen[host.name] = host
    return list(seen.values())


@dataclass(frozen=True)
class HostLease:
    """A granted (host, per-host slot) pair; release it back to the pool."""

    host: HostSpec
    slot: int  # 1-based within the host (the per-host {%} value)


class _HostState:
    """Mutable per-host bookkeeping inside the pool's lock."""

    __slots__ = ("spec", "free", "in_use", "failures", "banned", "dispatched")

    def __init__(self, spec: HostSpec):
        self.spec = spec
        self.free = list(range(1, spec.slots + 1))
        heapq.heapify(self.free)
        self.in_use: set[int] = set()
        self.failures = 0  # consecutive transport failures
        self.banned = False
        self.dispatched = 0  # successful jobs completed on this host

    @property
    def load(self) -> float:
        return len(self.in_use) / self.spec.slots


class HostPool:
    """Thread-safe least-loaded placement over a host roster.

    ``acquire`` grants the lowest free slot on the least-loaded non-banned
    host (ties broken by fewest completed jobs, then roster order, so
    placement is deterministic for a deterministic arrival order).
    ``record_failure`` counts *consecutive*
    transport failures per host; reaching ``ban_after`` bans the host and
    wakes all blocked acquirers — their jobs re-place onto survivors
    instead of being dropped.
    """

    def __init__(self, hosts: Sequence[HostSpec], ban_after: int = 3):
        if not hosts:
            raise OptionsError("host pool needs at least one host")
        if ban_after < 1:
            raise OptionsError(f"ban_after must be >= 1, got {ban_after}")
        self.ban_after = ban_after
        self._cond = threading.Condition()
        self._states = [_HostState(h) for h in hosts]
        self._by_name = {s.spec.name: s for s in self._states}
        self._aborted = False

    # -- capacity ----------------------------------------------------------
    @property
    def hosts(self) -> list[HostSpec]:
        return [s.spec for s in self._states]

    @property
    def total_slots(self) -> int:
        """Roster-wide slot capacity (banned hosts included)."""
        return sum(s.spec.slots for s in self._states)

    def live_slots(self) -> int:
        """Slot capacity across non-banned hosts."""
        with self._cond:
            return sum(s.spec.slots for s in self._states if not s.banned)

    # -- placement ---------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> Optional[HostLease]:
        """Lease a (host, slot); None when aborted, timed out, or all banned."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._aborted:
                    return None
                live = [s for s in self._states if not s.banned]
                if not live:
                    return None
                candidates = [s for s in live if s.free]
                if candidates:
                    # Least loaded first; ties broken by fewest completed
                    # jobs (so an idle roster rotates rather than piling
                    # onto host one), then roster order (deterministic).
                    best = min(candidates, key=lambda s: (s.load, s.dispatched))
                    slot = heapq.heappop(best.free)
                    best.in_use.add(slot)
                    return HostLease(host=best.spec, slot=slot)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None
                else:
                    self._cond.wait()

    def release(self, lease: HostLease) -> None:
        with self._cond:
            state = self._by_name[lease.host.name]
            if lease.slot not in state.in_use:
                raise OptionsError(
                    f"slot {lease.slot} on {lease.host.name!r} released twice"
                )
            state.in_use.discard(lease.slot)
            heapq.heappush(state.free, lease.slot)
            self._cond.notify_all()

    # -- health ------------------------------------------------------------
    def record_failure(self, host: HostSpec) -> bool:
        """Count one transport failure; True when this one banned the host."""
        with self._cond:
            state = self._by_name[host.name]
            state.failures += 1
            if not state.banned and state.failures >= self.ban_after:
                state.banned = True
                self._cond.notify_all()
                return True
            return False

    def record_success(self, host: HostSpec) -> None:
        """A job completed through the transport: reset the failure streak."""
        with self._cond:
            state = self._by_name[host.name]
            state.failures = 0
            state.dispatched += 1

    def ban(self, name: str) -> None:
        """Administratively ban a host (tests, external health checks)."""
        with self._cond:
            self._by_name[name].banned = True
            self._cond.notify_all()

    def is_banned(self, name: str) -> bool:
        with self._cond:
            return self._by_name[name].banned

    def banned_hosts(self) -> list[str]:
        with self._cond:
            return [s.spec.name for s in self._states if s.banned]

    def abort(self) -> None:
        """Wake and fail all blocked acquirers (cancellation/shutdown)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def in_use(self, name: str) -> int:
        """Slots currently leased on ``name`` (a gauge)."""
        with self._cond:
            return len(self._by_name[name].in_use)

    def summary(self) -> dict[str, dict]:
        """Per-host snapshot: slots, leased, completed jobs, health."""
        with self._cond:
            return {
                s.spec.name: {
                    "slots": s.spec.slots,
                    "in_use": len(s.in_use),
                    "dispatched": s.dispatched,
                    "failures": s.failures,
                    "banned": s.banned,
                }
                for s in self._states
            }
