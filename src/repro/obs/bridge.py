"""Bridges between traces, spans, joblogs and the profile analysis.

The paper's conclusion pitches GNU Parallel as a tool to "extract
parallel profiles from application executions"; this module closes the
loop by feeding finished spans (or an exported Chrome trace) into
:mod:`repro.analysis.profile`, so the same
:class:`~repro.analysis.profile.ParallelProfile` the joblog path
computes comes straight from a trace.

Also here: the multi-shard trace merger the drivers use (one ``pid``
per node/instance in the merged file) and the simulated-run exporter.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.obs.events import JobSpan
from repro.obs.sinks import attempt_trace_event, process_name_event

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.profile import ParallelProfile
    from repro.obs.tracer import RunTracer
    from repro.simengine.task import SimTaskResult

__all__ = [
    "attempt_intervals",
    "intervals_from_trace",
    "load_trace",
    "profile_from_spans",
    "profile_from_trace",
    "write_merged_trace",
    "write_sim_trace",
]


def attempt_intervals(
    spans: Iterable[JobSpan],
) -> "tuple[list[float], list[float]]":
    """(starts, ends) of every closed attempt across ``spans``.

    Every attempt is an interval — retried attempts included — which is
    exactly the population a joblog records (one line per attempt), so
    profiles from the two sources agree.
    """
    starts: list[float] = []
    ends: list[float] = []
    for span in spans:
        for att in span.attempts:
            if att.t_start is not None and att.t_end is not None:
                starts.append(att.t_start)
                ends.append(att.t_end)
    return starts, ends


def profile_from_spans(spans: Iterable[JobSpan]) -> "ParallelProfile":
    """A :class:`ParallelProfile` computed from finished spans."""
    from repro.analysis.profile import profile_intervals

    starts, ends = attempt_intervals(spans)
    return profile_intervals(starts, ends)


def load_trace(path: str) -> dict:
    """Load a Chrome trace file written by :class:`ChromeTraceSink`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def intervals_from_trace(path: str) -> "tuple[list[float], list[float]]":
    """(starts, ends) in seconds of every job-attempt ("X", cat ``job``)
    event in a trace.  Backend overhead spans (spawn/reap/channel_open)
    are complete events too, but carry cat ``backend`` — they are
    instrumentation, not attempts, and must not skew the profile."""
    doc = load_trace(path)
    starts: list[float] = []
    ends: list[float] = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "X" and event.get("cat", "job") == "job":
            ts = float(event["ts"]) / 1e6
            starts.append(ts)
            ends.append(ts + float(event["dur"]) / 1e6)
    return starts, ends


def profile_from_trace(path: str) -> "ParallelProfile":
    """A :class:`ParallelProfile` computed directly from a trace file."""
    from repro.analysis.profile import profile_intervals

    starts, ends = intervals_from_trace(path)
    return profile_intervals(starts, ends)


def write_merged_trace(path: str, tracers: "Sequence[RunTracer]") -> int:
    """Merge per-node/instance tracers into one Chrome trace file.

    Each tracer becomes one ``pid`` (named after its node id) so the
    viewer shows per-node shard streams side by side.  Tracers sharing a
    node id (e.g. a shard wave and its rescue wave on the same instance)
    share a pid.  Returns the number of job events written.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []
    n_jobs = 0
    for tracer in tracers:
        node = tracer.node or "node0"
        if node not in pids:
            pids[node] = len(pids)
            events.append(process_name_event(pids[node], f"pyparallel {node}"))
        pid = pids[node]
        for span in tracer.spans.values():
            for att in span.attempts:
                if att.t_start is None or att.t_end is None:
                    continue
                events.append(
                    attempt_trace_event(
                        pid, att.seq, att.attempt, att.slot,
                        att.t_start, att.t_end,
                        state=att.state, exit_code=att.exit_code,
                        retried=att.retried,
                    )
                )
                n_jobs += 1
    _dump_trace(path, events, {"nodes": sorted(pids)})
    return n_jobs


def write_sim_trace(
    path: str,
    results: "Iterable[SimTaskResult]",
    time_scale: float = 1.0,
    meta: Optional[dict] = None,
) -> int:
    """Export simulated task results as a Chrome trace (pid per node).

    Simulated times are relative seconds; ``time_scale`` lets callers
    map them (default 1:1).  Returns the number of task events written.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []
    n_tasks = 0
    for r in results:
        node = r.node or "sim"
        if node not in pids:
            pids[node] = len(pids)
            events.append(process_name_event(pids[node], node))
        events.append(
            attempt_trace_event(
                pids[node], r.seq, r.attempt, r.slot,
                r.launch_time * time_scale, r.end_time * time_scale,
                state="succeeded" if r.ok else (r.failure_mode or "failed"),
            )
        )
        n_tasks += 1
    _dump_trace(path, events, {"nodes": sorted(pids), **(meta or {})})
    return n_tasks


def _dump_trace(path: str, events: list[dict], other: dict) -> None:
    doc = {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}
    with open(path, "w", encoding="utf-8") as fh:
        # One-shot dumps: json's C encoder (dump() streams via the slower
        # pure-Python path).
        fh.write(json.dumps(doc))
        fh.write("\n")
