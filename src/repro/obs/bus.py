"""A small, thread-safe, synchronous event bus.

Publishers (the scheduler's dispatch loop, pool workers, backends) call
:meth:`EventBus.publish` from several threads; subscribers (sinks, the
tracer's span builder) receive each event under the bus lock, in
subscription order.  Delivery is synchronous by design: the per-event
work each sink does is an append to an in-memory buffer, so a dedicated
consumer thread would cost more in handoff than it saves — and
synchronous delivery means a trace is complete the instant the run is.

A sink that raises does not take the run down: the event is counted as
dropped for that sink and delivery continues.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional

from repro.obs.events import Event

__all__ = ["EventBus"]


class EventBus:
    """Fan-out of :class:`Event` records to subscribed handlers."""

    def __init__(self) -> None:
        #: (handler, kinds) pairs; kinds None = wants every event.
        self._handlers: list[tuple[Callable[[Event], None], Optional[frozenset]]] = []
        self._lock = threading.Lock()
        #: Events a handler raised on, by handler position.
        self.dropped = 0
        #: Union of subscribed kinds; None once any subscriber wants all.
        self._wanted: Optional[frozenset] = frozenset()

    def subscribe(
        self,
        handler: Callable[[Event], None],
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        """Register ``handler`` (an ``Event -> None`` callable or a sink's
        ``handle`` method) for every subsequent event.

        ``kinds`` restricts delivery to those event kinds — the per-job
        hot path uses :meth:`wants` to skip even *constructing* events no
        subscriber will see.
        """
        with self._lock:
            kindset = None if kinds is None else frozenset(kinds)
            self._handlers.append((handler, kindset))
            if kindset is None:
                self._wanted = None
            elif self._wanted is not None:
                self._wanted = self._wanted | kindset

    def wants(self, kind: str) -> bool:
        """True when at least one subscriber would receive ``kind``."""
        wanted = self._wanted
        return wanted is None or kind in wanted

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to every subscriber, swallowing sink errors."""
        with self._lock:
            for handler, kinds in self._handlers:
                if kinds is not None and event.kind not in kinds:
                    continue
                try:
                    handler(event)
                except Exception:
                    self.dropped += 1

    @property
    def n_subscribers(self) -> int:
        with self._lock:
            return len(self._handlers)
