"""Run-wide tracing and metrics (the engine's observability subsystem).

The paper frames GNU Parallel as "a quick prototyping tool to design and
extract parallel profiles from application executions"; ``repro.obs``
turns that from an end-of-run summary into a live, structured view.  A
:class:`RunTracer` attached to a run receives typed per-job lifecycle
events (submitted → slot-acquired → dispatched → running →
retry-queued / completed) from the scheduler, the worker pool and every
backend, builds nested job/attempt spans from them, and periodically
samples counters and gauges (queue depth, slot occupancy, pool size,
retry-heap depth, throughput EWMA).

Two sinks ship with the bus:

* :class:`ChromeTraceSink` — a Chrome/Perfetto ``trace_event`` JSON
  file (load it in ``chrome://tracing`` or https://ui.perfetto.dev);
* :class:`MetricsJsonlSink` — a newline-JSON metrics log, one sample
  per line, greppable and pandas-loadable.

The bridge (:mod:`repro.obs.bridge`) feeds finished spans straight into
:mod:`repro.analysis.profile`, so a parallel profile can be computed
from a trace instead of a joblog.

Everything here is off the hot path unless enabled: the scheduler keeps
``tracer = None`` when no trace/metrics output was requested, and every
instrumentation site is a single ``is not None`` check.
"""

from repro.obs.bridge import (
    attempt_intervals,
    intervals_from_trace,
    load_trace,
    profile_from_spans,
    profile_from_trace,
    write_merged_trace,
    write_sim_trace,
)
from repro.obs.bus import EventBus
from repro.obs.events import (
    AttemptSpan,
    Event,
    EventKind,
    JobSpan,
    MetricsSample,
)
from repro.obs.sinks import (
    CHROME_TRACE_SCHEMA,
    ChromeTraceSink,
    MetricsJsonlSink,
)
from repro.obs.tracer import RunTracer

__all__ = [
    "AttemptSpan",
    "CHROME_TRACE_SCHEMA",
    "ChromeTraceSink",
    "Event",
    "EventBus",
    "EventKind",
    "JobSpan",
    "MetricsJsonlSink",
    "MetricsSample",
    "RunTracer",
    "attempt_intervals",
    "intervals_from_trace",
    "load_trace",
    "profile_from_spans",
    "profile_from_trace",
    "write_merged_trace",
    "write_sim_trace",
]
