"""Typed observability records: events on the bus, spans built from them.

An :class:`Event` is one immutable fact ("job 7 attempt 2 started running
in slot 3 at t").  The tracer folds the per-job lifecycle events into a
:class:`JobSpan` holding one :class:`AttemptSpan` per dispatched attempt —
the structure invariant tests and the profile bridge consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EventKind", "Event", "AttemptSpan", "JobSpan", "MetricsSample"]


class EventKind:
    """Event-kind constants (plain strings, cheap to construct and match).

    Per-job lifecycle::

        SUBMITTED → SLOT_ACQUIRED → DISPATCHED → RUNNING
                  → RETRY_QUEUED (back to SLOT_ACQUIRED) | FINISHED

    plus ``INSTANT`` point events from backends (process spawned, process
    group killed, fault injected), ``SPAN`` duration events from backends
    (spawn/reap/channel_open intervals, rendered as complete "X" slices
    in Chrome traces), ``METRICS`` gauge samples from the sampler, and
    ``RUN_META`` / ``RUN_END`` bracketing the run.
    """

    SUBMITTED = "submitted"
    SLOT_ACQUIRED = "slot_acquired"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    RETRY_QUEUED = "retry_queued"
    FINISHED = "finished"
    INSTANT = "instant"
    SPAN = "span"
    METRICS = "metrics"
    RUN_META = "run_meta"
    RUN_END = "run_end"


@dataclass(frozen=True, slots=True)
class Event:
    """One observability fact, published on the run's :class:`EventBus`."""

    ts: float  # wall-clock seconds (same clock as JobResult stamps)
    kind: str  # an EventKind constant
    seq: int = 0  # 1-based job sequence number; 0 = not job-scoped
    attempt: int = 0  # 1-based attempt number; 0 = not attempt-scoped
    slot: int = 0  # 1-based slot number; 0 = no slot bound
    node: str = ""  # shard/node id in multi-instance runs
    name: str = ""  # INSTANT events: what happened ("proc_spawn", ...)
    data: Optional[dict[str, Any]] = None  # kind-specific payload


@dataclass
class AttemptSpan:
    """One dispatched attempt of a job, slot-acquisition to completion.

    ``t_start``/``t_end`` are the backend-recorded execution interval —
    the same numbers the joblog records — while ``t_slot_acquired`` /
    ``t_dispatched`` / ``t_running`` localize scheduler-side overhead
    (slot wait vs. queue wait vs. worker pickup).
    """

    seq: int
    attempt: int
    slot: int = 0
    #: Sshlogin/hostname the attempt executed on ("" until closed; remote
    #: runs record the host the backend actually placed the job on).
    host: str = ""
    t_slot_acquired: Optional[float] = None
    t_dispatched: Optional[float] = None  # handed to the worker pool
    t_running: Optional[float] = None  # worker began backend.run_job
    t_start: Optional[float] = None  # backend execution start
    t_end: Optional[float] = None  # backend execution end
    #: Terminal state of this attempt: a JobState value string, or
    #: "" while the attempt is still open.
    state: str = ""
    exit_code: Optional[int] = None
    #: True when this attempt failed and was re-queued for retry.
    retried: bool = False

    @property
    def closed(self) -> bool:
        return bool(self.state)

    @property
    def runtime(self) -> float:
        """Backend execution duration (0 until closed)."""
        if self.t_start is None or self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def timeline(self) -> list[float]:
        """The recorded stage timestamps, in lifecycle order, Nones elided."""
        stamps = [
            self.t_slot_acquired,
            self.t_dispatched,
            self.t_running,
            self.t_start,
            self.t_end,
        ]
        return [t for t in stamps if t is not None]


@dataclass
class JobSpan:
    """One job's full lifecycle: submission to terminal completion.

    Retries nest: each dispatched attempt appends an :class:`AttemptSpan`,
    so a job that failed twice and then succeeded holds attempts 1..3,
    the first two marked ``retried``.
    """

    seq: int
    node: str = ""
    t_submitted: Optional[float] = None
    t_done: Optional[float] = None
    #: JobState value string of the terminal result; "" while open.
    final_state: str = ""
    attempts: list[AttemptSpan] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return bool(self.final_state)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    def attempt(self, number: int) -> AttemptSpan:
        """The span for 1-based attempt ``number`` (KeyError if absent)."""
        for span in self.attempts:
            if span.attempt == number:
                return span
        raise KeyError(f"job {self.seq} has no attempt {number}")


@dataclass(frozen=True, slots=True)
class MetricsSample:
    """One periodic gauge/counter snapshot from the sampler."""

    ts: float
    node: str
    #: Jobs queued in the pool's dispatch queue, not yet taken by a worker.
    queue_depth: int
    #: Slots currently held (live occupancy; never exceeds jobs_cap).
    slots_in_use: int
    #: Worker threads spawned so far (lazy pool growth).
    pool_size: int
    #: Jobs waiting in the retry backoff heap.
    retry_depth: int
    #: Jobs currently in flight (dispatched, completion not yet handled).
    in_flight: int
    #: Terminal completions so far (retried attempts not counted).
    completed: int
    #: Attempts finished so far (retried attempts counted).
    attempts_done: int
    #: Exponentially-weighted moving average of completions/second.
    throughput_ewma: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "node": self.node,
            "queue_depth": self.queue_depth,
            "slots_in_use": self.slots_in_use,
            "pool_size": self.pool_size,
            "retry_depth": self.retry_depth,
            "in_flight": self.in_flight,
            "completed": self.completed,
            "attempts_done": self.attempts_done,
            "throughput_ewma": self.throughput_ewma,
        }
