"""Event sinks: Chrome ``trace_event`` JSON and newline-JSON metrics.

Both sinks buffer in memory and hit the filesystem only at flush/close —
a sink write on the per-job path would be exactly the overhead the
subsystem exists to measure, not add.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Optional

from repro.obs.events import Event, EventKind

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "ChromeTraceSink",
    "MetricsJsonlSink",
    "attempt_trace_event",
    "process_name_event",
]

#: JSON Schema for the Chrome/Perfetto trace files this module emits
#: (the "JSON Object Format" of the Trace Event specification).  Used by
#: the test layer to assert every produced trace validates.
CHROME_TRACE_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {
                        "type": "string",
                        "enum": ["B", "E", "X", "i", "I", "C", "M"],
                    },
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number", "minimum": 0},
                    "s": {"type": "string", "enum": ["g", "p", "t"]},
                    "args": {"type": "object"},
                },
                "allOf": [
                    {
                        "if": {"properties": {"ph": {"const": "X"}}},
                        "then": {"required": ["ts", "dur"]},
                    },
                    {
                        "if": {"properties": {"ph": {"const": "C"}}},
                        "then": {"required": ["ts", "args"]},
                    },
                    {
                        "if": {"properties": {"ph": {"const": "i"}}},
                        "then": {"required": ["ts", "s"]},
                    },
                ],
            },
        },
    },
}

#: Longest command string recorded in a trace event's args.
_CMD_LIMIT = 160


def _us(ts: float) -> float:
    """Seconds → the microseconds the trace_event format expects."""
    return ts * 1e6


def process_name_event(pid: int, name: str) -> dict[str, Any]:
    """Metadata event labelling ``pid``'s row in the trace viewer."""
    return {
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def attempt_trace_event(
    pid: int,
    seq: int,
    attempt: int,
    slot: int,
    start: float,
    end: float,
    state: str,
    exit_code: Optional[int] = None,
    command: str = "",
    retried: bool = False,
) -> dict[str, Any]:
    """A complete ("X") trace event for one finished job attempt.

    ``tid`` is the slot number, so the viewer's rows reproduce the
    engine's slot occupancy exactly — a visual parallel profile.
    """
    args: dict[str, Any] = {"seq": seq, "attempt": attempt, "state": state}
    if exit_code is not None:
        args["exit_code"] = exit_code
    if retried:
        args["retried"] = True
    if command:
        args["command"] = command[:_CMD_LIMIT]
    return {
        "ph": "X",
        "name": f"job {seq}" if attempt <= 1 else f"job {seq} (attempt {attempt})",
        "cat": "job",
        "pid": pid,
        "tid": slot,
        "ts": _us(start),
        "dur": max(0.0, _us(end) - _us(start)),
        "args": args,
    }


class ChromeTraceSink:
    """Accumulates trace events; writes one JSON object file on close."""

    #: Event kinds this sink consumes — the bus skips (and the tracer
    #: never constructs) everything else on the per-job hot path.
    kinds = frozenset({
        EventKind.FINISHED, EventKind.RETRY_QUEUED, EventKind.METRICS,
        EventKind.INSTANT, EventKind.SPAN, EventKind.RUN_META,
        EventKind.RUN_END,
    })

    def __init__(self, path: str, pid: int = 0, node: str = ""):
        self.path = path
        self.pid = pid
        self._events: list[dict[str, Any]] = [
            process_name_event(pid, f"pyparallel {node}".strip())
        ]
        self._lock = threading.Lock()
        self._meta: dict[str, Any] = {}
        #: Lane rows already labelled (the base row is named above).
        self._lanes_named: set[int] = {pid}
        self._closed = False

    def handle(self, event: Event) -> None:
        out = self._translate(event)
        if out is not None:
            with self._lock:
                self._events.append(out)

    def _lane_for(self, data: dict[str, Any]) -> int:
        """Resolve an event's trace-viewer row (``pid`` in Chrome terms).

        Events carrying ``lane``/``lane_name`` in their payload render in
        their own process row — dispatcher shards each get a labelled
        lane so the viewer shows per-shard job timelines side by side.
        ``lane`` is an offset from the sink's base pid, keeping
        multi-instance traces (distinct real pids) collision-free.
        """
        lane = data.pop("lane", None)
        lane_name = data.pop("lane_name", None)
        if lane is None:
            return self.pid
        row = self.pid + int(lane)
        if lane_name is not None:
            with self._lock:
                if row not in self._lanes_named:
                    self._lanes_named.add(row)
                    self._events.append(process_name_event(row, str(lane_name)))
        return row

    def _translate(self, event: Event) -> Optional[dict[str, Any]]:
        kind = event.kind
        if kind in (EventKind.FINISHED, EventKind.RETRY_QUEUED):
            data = event.data or {}
            start = data.get("start")
            end = data.get("end")
            if start is None or end is None:
                return None
            return attempt_trace_event(
                self.pid,
                event.seq,
                event.attempt,
                event.slot,
                start,
                end,
                state=data.get("state", ""),
                exit_code=data.get("exit_code"),
                command=data.get("command", ""),
                retried=kind == EventKind.RETRY_QUEUED,
            )
        if kind == EventKind.METRICS:
            return {
                "ph": "C",
                "name": "engine",
                "cat": "metrics",
                "pid": self.pid,
                "tid": 0,
                "ts": _us(event.ts),
                "args": {
                    k: v
                    for k, v in (event.data or {}).items()
                    if isinstance(v, (int, float)) and k != "ts"
                },
            }
        if kind == EventKind.SPAN:
            data = dict(event.data or {})
            dur = data.pop("dur", 0.0)
            return {
                "ph": "X",
                "name": event.name,
                # Emitters tag their own category (staging spans filter as
                # their own lane in the viewer); backend is the default.
                "cat": str(data.pop("cat", "backend")),
                "pid": self._lane_for(data),
                "tid": event.slot,
                "ts": _us(event.ts),
                "dur": max(0.0, _us(dur) if dur else 0.0),
                "args": {"seq": event.seq, **data},
            }
        if kind == EventKind.INSTANT:
            data = dict(event.data or {})
            return {
                "ph": "i",
                "name": event.name,
                "cat": str(data.pop("cat", "backend")),
                "pid": self._lane_for(data),
                "tid": event.slot,
                "ts": _us(event.ts),
                "s": "t" if event.slot else "p",
                "args": {"seq": event.seq, **data},
            }
        if kind == EventKind.RUN_META:
            with self._lock:
                self._meta.update(event.data or {})
            return None
        if kind == EventKind.RUN_END:
            # Run totals (incl. the staging block) ride in otherData so a
            # trace-only consumer sees them without the metrics sink.
            with self._lock:
                self._meta.update(event.data or {})
            return None
        return None  # lifecycle events are folded into the X span

    def flush(self) -> None:
        """Write the trace file (idempotent; also called by close)."""
        with self._lock:
            doc = {
                "traceEvents": list(self._events),
                "displayTimeUnit": "ms",
                "otherData": dict(self._meta),
            }
        with open(self.path, "w", encoding="utf-8") as fh:
            # dumps-then-write takes json's C encoder fast path; dump()
            # streams through the pure-Python encoder and is ~5x slower
            # on large traces, which lands in the run's wall time.
            fh.write(json.dumps(doc))
            fh.write("\n")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.flush()


class MetricsJsonlSink:
    """Newline-JSON metrics log: one object per sample (plus run brackets).

    Lines are buffered and written on flush/close; a metrics log is a
    per-interval artifact, so buffering costs at most one interval of
    history on a crash.
    """

    kinds = frozenset({
        EventKind.METRICS, EventKind.RUN_META, EventKind.RUN_END,
    })

    def __init__(self, path: str, node: str = ""):
        self.path = path
        self.node = node
        self._lines: list[str] = []
        self._lock = threading.Lock()
        self._closed = False

    def handle(self, event: Event) -> None:
        if event.kind == EventKind.METRICS:
            record = dict(event.data or {})
            record["kind"] = "sample"
        elif event.kind in (EventKind.RUN_META, EventKind.RUN_END):
            record = {"kind": event.kind, "ts": event.ts, **(event.data or {})}
        else:
            return
        if self.node and "node" not in record:
            record["node"] = self.node
        with self._lock:
            self._lines.append(json.dumps(record, sort_keys=True))

    def flush(self) -> None:
        with self._lock:
            lines, self._lines = self._lines, []
        if lines:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.flush()
