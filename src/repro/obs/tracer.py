"""The run tracer: lifecycle span builder + periodic metrics sampler.

One :class:`RunTracer` observes one engine run.  The scheduler calls the
lifecycle hooks (``job_submitted`` … ``attempt_finished``) from its
dispatch loop and its pool workers; backends emit :meth:`instant` point
events (process spawned, fault injected).  The tracer folds lifecycle
events into :class:`~repro.obs.events.JobSpan` structures, keeps live
counters, and — when a metrics interval is set — runs a sampler thread
that snapshots the scheduler gauges it was bound to.

Overhead: each hook is one lock-guarded dict/list update plus one bus
publish (appends into sink buffers).  Nothing touches the filesystem
until the run ends.  When tracing is disabled the scheduler holds no
tracer at all, so the engine's hot path pays a single ``is not None``
test per instrumentation site.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.obs.bus import EventBus
from repro.obs.events import AttemptSpan, Event, EventKind, JobSpan, MetricsSample
from repro.obs.sinks import ChromeTraceSink, MetricsJsonlSink

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.job import Job, JobResult, RunSummary
    from repro.core.options import Options

__all__ = ["RunTracer"]

#: Gauge names the scheduler binds (missing gauges read 0).
_GAUGES = ("queue_depth", "slots_in_use", "pool_size", "retry_depth", "in_flight")


class RunTracer:
    """Collects one run's spans, events and metrics samples.

    Parameters
    ----------
    node:
        Shard/node identifier stamped on every event — how multi-instance
        drivers keep per-node streams separable after a merge.
    sinks:
        Objects with ``handle(event)`` / ``close()`` (e.g.
        :class:`ChromeTraceSink`); subscribed to the bus at construction.
    metrics_interval:
        Seconds between gauge samples; None disables the sampler thread
        (explicit :meth:`sample` calls still work).
    ewma_alpha:
        Smoothing factor for the throughput EWMA (weight of the newest
        interval's completion rate).
    """

    def __init__(
        self,
        node: str = "",
        sinks: Iterable[object] = (),
        metrics_interval: Optional[float] = None,
        ewma_alpha: float = 0.3,
        clock: Callable[[], float] = time.time,
    ):
        self.node = node
        self.bus = EventBus()
        self._sinks = list(sinks)
        for sink in self._sinks:
            # A sink advertising its consumed kinds lets the hot path
            # skip constructing events nobody would receive.
            self.bus.subscribe(sink.handle, getattr(sink, "kinds", None))
        self._interval = metrics_interval
        self._alpha = ewma_alpha
        self._clock = clock
        self._lock = threading.Lock()
        self.spans: dict[int, JobSpan] = {}
        self._open: dict[int, AttemptSpan] = {}
        self.samples: list[MetricsSample] = []
        self.jobs_cap: Optional[int] = None
        self._gauges: dict[str, Callable[[], int]] = {}
        self._completed = 0
        self._attempts_done = 0
        self._ewma = 0.0
        self._last_sample_ts: Optional[float] = None
        self._last_sample_completed = 0
        self._sampler: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._finished = False

    # -- construction --------------------------------------------------------
    @classmethod
    def from_options(cls, options: "Options", node: str = "") -> "RunTracer":
        """Build a tracer with the sinks ``--trace`` / ``--metrics`` ask for."""
        sinks: list[object] = []
        if options.trace:
            sinks.append(ChromeTraceSink(options.trace, node=node))
        if options.metrics:
            sinks.append(MetricsJsonlSink(options.metrics, node=node))
        return cls(
            node=node, sinks=sinks, metrics_interval=options.metrics_interval
        )

    # -- run lifecycle -------------------------------------------------------
    def run_started(
        self, jobs_cap: int, total: Optional[int] = None, **meta: object
    ) -> None:
        """Bracket the run: record capacity, start the sampler thread."""
        self.jobs_cap = jobs_cap
        data = {"jobs_cap": jobs_cap, "total": total, "node": self.node, **meta}
        self._publish(Event(self._clock(), EventKind.RUN_META, data=data))
        if self._interval is not None and self._sampler is None:
            self._stop.clear()
            self._sampler = threading.Thread(
                target=self._sampler_loop, daemon=True, name="repro-obs-sampler"
            )
            self._sampler.start()

    def run_finished(self, summary: "Optional[RunSummary]" = None) -> None:
        """Stop the sampler, take a final sample, flush and close sinks."""
        if self._finished:
            return
        self._finished = True
        if self._sampler is not None:
            self._stop.set()
            self._sampler.join(timeout=2.0)
            self._sampler = None
        if self._gauges:
            self.sample()
        data: dict[str, object] = {"node": self.node}
        if summary is not None:
            data.update(
                n_dispatched=summary.n_dispatched,
                n_succeeded=summary.n_succeeded,
                n_failed=summary.n_failed,
                n_skipped=summary.n_skipped,
                halted=summary.halted,
                wall_time=summary.wall_time,
            )
            # Data-plane block: trace-only consumers see staging totals
            # (files staged, cache hits, bytes avoided) without needing
            # the metrics sink.
            staging = getattr(summary, "staging", None)
            if staging:
                data["staging"] = dict(staging)
            # Control-plane block: frame counts and jobs-per-frame show
            # how well batched shard RPC amortized — rpc_frames in the
            # trace is the direct counterpart of the per-shard rpc_frame
            # instants scattered along the timeline.
            rpc = getattr(summary, "rpc", None)
            if rpc:
                data["rpc"] = dict(rpc)
                frames = rpc.get("frames_sent")
                if frames is not None:
                    data["rpc_frames"] = frames
                jpf = rpc.get("jobs_per_frame")
                if jpf is not None:
                    data["jobs_per_frame"] = jpf
            rss = getattr(summary, "coordinator_rss", 0)
            if rss:
                data["coordinator_rss"] = rss
        self._publish(Event(self._clock(), EventKind.RUN_END, data=data))
        for sink in self._sinks:
            sink.close()

    def bind_gauges(self, **gauges: Callable[[], int]) -> None:
        """Attach live gauge callables (see ``_GAUGES`` for the names)."""
        unknown = set(gauges) - set(_GAUGES)
        if unknown:
            raise ValueError(f"unknown gauges: {sorted(unknown)}")
        self._gauges.update(gauges)

    # -- per-job lifecycle hooks (called by the scheduler) -------------------
    def job_submitted(self, seq: int) -> None:
        ts = self._clock()
        with self._lock:
            span = self._span(seq)
            if span.t_submitted is None:
                span.t_submitted = ts
        if self.bus.wants(EventKind.SUBMITTED):
            self._publish(
                Event(ts, EventKind.SUBMITTED, seq=seq, node=self.node)
            )

    def attempt_started(self, seq: int, attempt: int, slot: int) -> None:
        """Slot acquired and the attempt bound to it."""
        ts = self._clock()
        with self._lock:
            span = self._span(seq)
            att = AttemptSpan(
                seq=seq, attempt=attempt, slot=slot, t_slot_acquired=ts
            )
            span.attempts.append(att)
            self._open[seq] = att
        if self.bus.wants(EventKind.SLOT_ACQUIRED):
            self._publish(
                Event(
                    ts, EventKind.SLOT_ACQUIRED,
                    seq=seq, attempt=attempt, slot=slot, node=self.node,
                )
            )

    def job_dispatched(self, seq: int, attempt: int, slot: int) -> None:
        """Attempt handed to the worker pool's dispatch queue."""
        ts = self._clock()
        with self._lock:
            att = self._open.get(seq)
            if att is not None and att.attempt == attempt:
                att.t_dispatched = ts
        if self.bus.wants(EventKind.DISPATCHED):
            self._publish(
                Event(
                    ts, EventKind.DISPATCHED,
                    seq=seq, attempt=attempt, slot=slot, node=self.node,
                )
            )

    def job_running(self, seq: int, attempt: int, slot: int) -> None:
        """A pool worker picked the attempt up (backend call imminent)."""
        ts = self._clock()
        with self._lock:
            att = self._open.get(seq)
            if att is not None and att.attempt == attempt:
                att.t_running = ts
        if self.bus.wants(EventKind.RUNNING):
            self._publish(
                Event(
                    ts, EventKind.RUNNING,
                    seq=seq, attempt=attempt, slot=slot, node=self.node,
                )
            )

    def attempt_finished(
        self,
        job: "Job",
        result: "JobResult",
        retried: bool = False,
        eligible_at: Optional[float] = None,
    ) -> None:
        """Close the attempt span; close the job span too unless retried."""
        ts = self._clock()
        state = result.state.value
        with self._lock:
            span = self._span(job.seq)
            att = self._open.pop(job.seq, None)
            if att is None or att.attempt != job.attempt:
                # Defensive: a completion with no open attempt (direct
                # backend callers) still gets a self-contained span.
                att = AttemptSpan(seq=job.seq, attempt=job.attempt, slot=result.slot)
                span.attempts.append(att)
            att.t_start = result.start_time
            att.t_end = result.end_time
            att.state = state
            att.exit_code = result.exit_code
            att.host = result.host
            att.retried = retried
            self._attempts_done += 1
            if not retried:
                span.t_done = ts
                span.final_state = state
                self._completed += 1
        kind = EventKind.RETRY_QUEUED if retried else EventKind.FINISHED
        if not self.bus.wants(kind):
            return
        data = {
            "start": result.start_time,
            "end": result.end_time,
            "state": state,
            "exit_code": result.exit_code,
            "command": result.command,
            "host": result.host,
        }
        if retried:
            data["eligible_at"] = eligible_at
        self._publish(
            Event(
                ts, kind,
                seq=job.seq, attempt=job.attempt, slot=result.slot,
                node=self.node, data=data,
            )
        )

    # -- point events (called by backends) -----------------------------------
    def instant(self, name: str, seq: int = 0, slot: int = 0, **data: object) -> None:
        """Record a point event, e.g. ``proc_spawn`` / ``fault_injected``."""
        self._publish(
            Event(
                self._clock(), EventKind.INSTANT,
                seq=seq, slot=slot, node=self.node, name=name,
                data=data or None,
            )
        )

    def span(
        self,
        name: str,
        start: float,
        end: float,
        seq: int = 0,
        slot: int = 0,
        **data: object,
    ) -> None:
        """Record a completed duration, e.g. ``spawn``/``reap``/``channel_open``.

        Unlike lifecycle events (folded into job spans), these are
        backend-internal intervals: they pass straight through to sinks
        and render as complete "X" slices in Chrome traces, making the
        dispatch overhead breakdown visible per job.
        """
        if not self.bus.wants(EventKind.SPAN):
            return
        self._publish(
            Event(
                start, EventKind.SPAN,
                seq=seq, slot=slot, node=self.node, name=name,
                data={"dur": max(0.0, end - start), **data},
            )
        )

    # -- metrics -------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> MetricsSample:
        """Snapshot the bound gauges and update the throughput EWMA."""
        ts = self._clock() if now is None else now
        reads = {name: self._g(name) for name in _GAUGES}
        with self._lock:
            completed = self._completed
            attempts_done = self._attempts_done
            if self._last_sample_ts is not None:
                dt = ts - self._last_sample_ts
                if dt > 0:
                    rate = (completed - self._last_sample_completed) / dt
                    self._ewma += self._alpha * (rate - self._ewma)
            self._last_sample_ts = ts
            self._last_sample_completed = completed
            sample = MetricsSample(
                ts=ts,
                node=self.node,
                completed=completed,
                attempts_done=attempts_done,
                throughput_ewma=self._ewma,
                **reads,
            )
            self.samples.append(sample)
        self._publish(
            Event(ts, EventKind.METRICS, node=self.node, data=sample.to_dict())
        )
        return sample

    @property
    def throughput_ewma(self) -> float:
        with self._lock:
            return self._ewma

    @property
    def completed(self) -> int:
        """Terminal completions so far (retried attempts excluded)."""
        with self._lock:
            return self._completed

    @property
    def attempts_done(self) -> int:
        """Attempts finished so far (retried attempts included)."""
        with self._lock:
            return self._attempts_done

    # -- internals -----------------------------------------------------------
    def _g(self, name: str) -> int:
        gauge = self._gauges.get(name)
        if gauge is None:
            return 0
        try:
            return int(gauge())
        except Exception:
            return 0

    def _span(self, seq: int) -> JobSpan:
        span = self.spans.get(seq)
        if span is None:
            span = self.spans[seq] = JobSpan(seq=seq, node=self.node)
        return span

    def _publish(self, event: Event) -> None:
        self.bus.publish(event)

    def _sampler_loop(self) -> None:
        assert self._interval is not None
        while not self._stop.wait(self._interval):
            self.sample()
