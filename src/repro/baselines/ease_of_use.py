"""Ease-of-use comparison (Listings 4 vs 5): script-complexity metrics.

§IV-B claims GNU Parallel "reduc[ed] the original script size by over
90%".  We embed both listings verbatim and provide a small complexity
metric (non-comment lines, shell words, control-flow keyword count) plus
an *equivalence check*: both scripts must describe the same task set
(month × app pairs), so the simplification loses nothing.
"""

from __future__ import annotations

import itertools
import re
import shlex
from dataclasses import dataclass

__all__ = [
    "LISTING_4_SRUN_SCRIPT",
    "LISTING_5_PARALLEL_SCRIPT",
    "ScriptComplexity",
    "script_complexity",
    "listing4_task_set",
    "listing5_task_set",
]

#: Listing 4 (paper): the pre-GNU-Parallel Darshan invocation script.
LISTING_4_SRUN_SCRIPT = """\
#SBATCH -N 1
module load cray-python
months='1,2,3,4,5,6,7,8,9,10,11,12'
apps_lst='3'
months=(${months//,/ })
apps_lst=(${apps_lst//,/ })
counter=0
for month in ${months[@]}; do
  apps=${apps_lst[counter]}
  app=0
  while [[ $app -lt ${apps} ]]; do
    echo "Month: "${month} " App: " ${app}
    srun -N1 -n1 -c1 --exclusive python3 \\
    darshan_arch.py ${month} ${app} &
    sleep 0.2
    ((app++))
  done;
done;
wait
"""

#: Listing 5 (paper): the same work via GNU Parallel.
LISTING_5_PARALLEL_SCRIPT = """\
#SBATCH -N 1
module load parallel cray-python
parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}
"""

_CONTROL_KEYWORDS = re.compile(
    r"\b(for|while|do|done|if|then|else|fi|case|esac|wait)\b"
)


@dataclass(frozen=True)
class ScriptComplexity:
    """Size/complexity measures of a shell script."""

    lines: int
    words: int
    control_keywords: int
    characters: int

    def reduction_vs(self, other: "ScriptComplexity") -> float:
        """Fractional line-count reduction of ``self`` relative to ``other``."""
        if other.lines == 0:
            raise ValueError("baseline script has no lines")
        return 1.0 - self.lines / other.lines


def script_complexity(text: str) -> ScriptComplexity:
    """Measure a script, ignoring blank lines and #SBATCH/# comments."""
    lines = [
        ln
        for ln in text.splitlines()
        if ln.strip() and not ln.strip().startswith("#")
    ]
    joined = "\n".join(lines)
    try:
        words = len(shlex.split(joined, comments=False, posix=False))
    except ValueError:  # unbalanced quotes in heredoc-ish content
        words = len(joined.split())
    return ScriptComplexity(
        lines=len(lines),
        words=words,
        control_keywords=len(_CONTROL_KEYWORDS.findall(joined)),
        characters=len(joined),
    )


def listing4_task_set() -> set[tuple[int, int]]:
    """The (month, app) pairs Listing 4 launches.

    The bash: months 1..12; ``apps_lst='3'`` with a counter that only has
    one entry, so every month runs apps 0..2 (bash leaves ``apps`` at its
    previous value when the array runs out — the single '3' applies to
    all months).
    """
    return {(month, app) for month in range(1, 13) for app in range(3)}


def listing5_task_set() -> set[tuple[int, int]]:
    """The (month, app) pairs ``parallel ::: {1..12} ::: {0..2}`` runs."""
    months = range(1, 13)
    apps = range(0, 3)
    return set(itertools.product(months, apps))
