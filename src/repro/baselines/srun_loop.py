"""The Listing-4 baseline: a bash loop of backgrounded per-task ``srun``.

Before GNU Parallel, the Darshan processing job launched every task as::

    srun -N1 -n1 -c1 --exclusive python3 darshan_arch.py ${month} ${app} &
    sleep 0.2

i.e. one scheduler step per task, a defensive 200 ms sleep between
launches, and a trailing ``wait``.  :func:`run_srun_loop` reproduces that
structure in the simulator so its makespan and launch rate can be compared
with the engine's (E9, and the §IV discussion of srun scalability).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.kernel import Environment
from repro.slurm.srun import DEFAULT_SRUN_COST, SlurmController, SrunCostModel

__all__ = ["SrunLoopResult", "run_srun_loop"]


@dataclass
class SrunLoopResult:
    """Outcome of a Listing-4 style run."""

    n_tasks: int
    launch_times: np.ndarray
    end_times: np.ndarray
    makespan: float

    @property
    def launch_rate(self) -> float:
        """Launches/s — bounded above by 1/inter_launch_sleep (= 5/s)."""
        if self.n_tasks < 2:
            return float("inf")
        span = float(self.launch_times[-1] - self.launch_times[0])
        return float("inf") if span <= 0 else (self.n_tasks - 1) / span


def run_srun_loop(
    env: Environment,
    task_durations: np.ndarray,
    cost: SrunCostModel = DEFAULT_SRUN_COST,
    controller: SlurmController | None = None,
) -> SrunLoopResult:
    """Simulate the Listing-4 loop over ``task_durations`` and run it.

    Must be called on a fresh or idle environment; runs it to completion.
    """
    durations = np.asarray(task_durations, dtype=float)
    ctl = controller or SlurmController(env, cost)
    launches: list[float] = []
    ends: list[float] = []

    def task(duration: float):
        # Each backgrounded srun pays setup + a controller round trip.
        yield env.timeout(cost.step_setup_s)
        yield ctl.create_step()
        launches.append(env.now)
        if duration > 0:
            yield env.timeout(duration)
        ends.append(env.now)

    def loop():
        children = []
        for d in durations:
            children.append(env.process(task(float(d))))
            # Listing 4's `sleep 0.2` between backgrounded launches.
            yield env.timeout(cost.inter_launch_sleep_s)
        if children:
            yield env.all_of(children)  # the trailing `wait`

    start = env.now
    p = env.process(loop(), name="srun-loop")
    env.run(until=p)
    return SrunLoopResult(
        n_tasks=int(durations.size),
        launch_times=np.array(sorted(launches)),
        end_times=np.array(sorted(ends)),
        makespan=env.now - start,
    )
