"""Baselines the paper compares against: srun loops, a WMS, bash listings."""

from repro.baselines.dag_workloads import chain, diamond_stack, fork_join
from repro.baselines.ease_of_use import (
    LISTING_4_SRUN_SCRIPT,
    LISTING_5_PARALLEL_SCRIPT,
    ScriptComplexity,
    listing4_task_set,
    listing5_task_set,
    script_complexity,
)
from repro.baselines.srun_loop import SrunLoopResult, run_srun_loop
from repro.baselines.workflow_system import (
    WFBENCH_POINTS,
    WmsCostModel,
    WmsResult,
    analytic_overhead,
    bag_of_tasks,
    fit_scan_cost,
    run_workflow_system,
)

__all__ = [
    "chain",
    "fork_join",
    "diamond_stack",
    "run_srun_loop",
    "SrunLoopResult",
    "WmsCostModel",
    "WmsResult",
    "WFBENCH_POINTS",
    "fit_scan_cost",
    "bag_of_tasks",
    "run_workflow_system",
    "analytic_overhead",
    "LISTING_4_SRUN_SCRIPT",
    "LISTING_5_PARALLEL_SCRIPT",
    "ScriptComplexity",
    "script_complexity",
    "listing4_task_set",
    "listing5_task_set",
]
