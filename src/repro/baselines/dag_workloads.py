"""Synthetic workflow DAG shapes (WfBench-style) for the WMS baseline.

The WfBench study [7] the paper cites measured orchestration overhead on
real workflow shapes (BLAST, Montage, ...).  These generators produce the
canonical skeletons so :func:`~repro.baselines.run_workflow_system` can be
exercised beyond bags of tasks:

* :func:`chain` — strictly sequential stages;
* :func:`fork_join` — one fan-out/fan-in stage (BLAST's shape: split,
  N-way scatter, merge);
* :func:`diamond_stack` — repeated fork-joins (Montage-ish levels).

All return :class:`networkx.DiGraph` with integer node ids.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ReproError

__all__ = ["chain", "fork_join", "diamond_stack"]


def chain(n: int) -> nx.DiGraph:
    """A linear chain of ``n`` tasks (worst case for parallelism)."""
    if n < 1:
        raise ReproError(f"chain needs >= 1 task, got {n}")
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


def fork_join(width: int) -> nx.DiGraph:
    """Split → ``width`` parallel tasks → merge (the BLAST skeleton)."""
    if width < 1:
        raise ReproError(f"fork_join needs width >= 1, got {width}")
    g = nx.DiGraph()
    split, merge = 0, width + 1
    g.add_node(split)
    for i in range(1, width + 1):
        g.add_edge(split, i)
        g.add_edge(i, merge)
    return g


def diamond_stack(levels: int, width: int) -> nx.DiGraph:
    """``levels`` stacked fork-joins, each ``width`` wide."""
    if levels < 1 or width < 1:
        raise ReproError("diamond_stack needs levels >= 1 and width >= 1")
    g = nx.DiGraph()
    next_id = 0

    def fresh() -> int:
        nonlocal next_id
        nid = next_id
        next_id += 1
        g.add_node(nid)
        return nid

    head = fresh()
    for _ in range(levels):
        mids = [fresh() for _ in range(width)]
        tail = fresh()
        for m in mids:
            g.add_edge(head, m)
            g.add_edge(m, tail)
        head = tail
    return g
