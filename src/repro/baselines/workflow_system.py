"""A Swift/T-like workflow-management-system baseline.

The paper's headline comparison is against the orchestration overhead
measured by WfBench [7]: launching *empty* tasks through a full workflow
system on Summit cost ~500 s for 50,000 tasks and up to ~5,000 s for
100,000 tasks (ref. [7], Fig. 10) — versus 561 s for 1.152 M tasks with
GNU Parallel.

This module implements the *mechanism* that produces that blow-up: a
centralized dataflow engine that

* pays a fixed per-task dispatch cost (task serialization, RPC to a
  worker, bookkeeping), and
* re-scans its table of outstanding tasks on every completion to find
  newly-ready work — an O(outstanding) scan per event, hence O(n²) total
  for an n-task bag, which is how published engines behave once their
  ready-set indexing degrades.

The DAG layer (:func:`run_workflow_system` takes a :mod:`networkx`
digraph) also supports dependencies, so the baseline is a real, if small,
workflow engine — not just a formula.  Calibration:
``fit_scan_cost`` chooses the scan constant so that a 50k-task bag costs
500 s, matching [7]'s first data point; the second point is then a model
*prediction* (EXPERIMENTS.md records the deviation).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ReproError
from repro.sim.kernel import Environment

__all__ = [
    "WmsCostModel",
    "WmsResult",
    "fit_scan_cost",
    "bag_of_tasks",
    "run_workflow_system",
    "analytic_overhead",
]

#: Reference points from WfBench [7] Fig. 10 (launch-only BLAST workflow).
WFBENCH_POINTS = ((50_000, 500.0), (100_000, 5_000.0))


@dataclass(frozen=True)
class WmsCostModel:
    """Per-task and per-scan costs of the centralized engine."""

    #: Fixed per-task dispatch cost (s): serialization + worker RPC.
    dispatch_s: float = 0.002
    #: Cost per outstanding task scanned per completion event (s).
    scan_s_per_task: float = 3.2e-7

    def __post_init__(self) -> None:
        if self.dispatch_s < 0 or self.scan_s_per_task < 0:
            raise ReproError("WMS costs must be non-negative")


def fit_scan_cost(
    n_tasks: int = WFBENCH_POINTS[0][0],
    total_overhead_s: float = WFBENCH_POINTS[0][1],
    dispatch_s: float = 0.002,
) -> WmsCostModel:
    """Calibrate the scan constant against one (n, overhead) point.

    For a bag of n independent tasks the engine performs one scan per
    completion over the remaining outstanding set: total scan work is
    ``sum_{k=1..n} k * scan_s = scan_s * n(n+1)/2``.
    """
    if n_tasks < 1:
        raise ReproError("n_tasks must be >= 1")
    scan_budget = total_overhead_s - dispatch_s * n_tasks
    if scan_budget <= 0:
        raise ReproError("dispatch cost alone exceeds the calibration point")
    scan = scan_budget / (n_tasks * (n_tasks + 1) / 2)
    return WmsCostModel(dispatch_s=dispatch_s, scan_s_per_task=scan)


def analytic_overhead(n_tasks: int, cost: WmsCostModel) -> float:
    """Closed-form launch-only overhead for an n-task bag."""
    return cost.dispatch_s * n_tasks + cost.scan_s_per_task * n_tasks * (n_tasks + 1) / 2


def bag_of_tasks(n: int) -> nx.DiGraph:
    """An n-task dependency-free workflow (the WfBench launch-only shape)."""
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    return g


@dataclass
class WmsResult:
    """Outcome of a workflow-system run."""

    n_tasks: int
    makespan: float
    launch_times: np.ndarray

    @property
    def overhead(self) -> float:
        """For launch-only workflows the makespan *is* the overhead."""
        return self.makespan


def run_workflow_system(
    env: Environment,
    dag: nx.DiGraph,
    cost: WmsCostModel,
    task_duration: float = 0.0,
) -> WmsResult:
    """Run ``dag`` through the centralized engine; returns timing.

    Tasks become ready when all predecessors finish.  The engine is a
    single simulated process alternating dispatch and completion handling;
    workers are assumed plentiful (launch-only measurement, as in [7]),
    so the engine itself is the bottleneck — which is the phenomenon
    under study.
    """
    if not nx.is_directed_acyclic_graph(dag):
        raise ReproError("workflow must be a DAG")
    order = list(nx.topological_sort(dag))
    n = len(order)
    indegree = {t: dag.in_degree(t) for t in order}
    launch_times: list[float] = []
    start = env.now

    def engine():
        ready = [t for t in order if indegree[t] == 0]
        outstanding = n
        finished: list = []
        while outstanding:
            if not ready:
                raise ReproError("deadlock: no ready tasks but work remains")
            task = ready.pop()
            # Dispatch: fixed cost.
            yield env.timeout(cost.dispatch_s)
            launch_times.append(env.now)
            # Launch-only tasks complete (after their duration) and the
            # engine immediately pays its completion-scan over the
            # outstanding table.
            if task_duration > 0:
                yield env.timeout(task_duration)
            outstanding -= 1
            finished.append(task)
            scan = cost.scan_s_per_task * max(outstanding, 1)
            if scan > 0:
                yield env.timeout(scan)
            for succ in dag.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)

    p = env.process(engine(), name="wms-engine")
    env.run(until=p)
    return WmsResult(
        n_tasks=n,
        makespan=env.now - start,
        launch_times=np.array(launch_times),
    )
