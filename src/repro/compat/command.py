"""Run a GNU Parallel shell command line through the engine.

Lets the paper's listings execute verbatim as Python calls::

    from repro.compat import run_gnu_parallel
    summary = run_gnu_parallel(
        "parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}",
        dry_run=True,
    )

The command line is tokenized (POSIX shell rules), brace-expanded
(``{1..12}`` → 1 2 ... 12, as bash would do before GNU Parallel runs),
then parsed with the same option grammar as the ``pyparallel`` CLI.

Known divergence from a real shell: brace expansion is applied to every
token after quote removal, so sequences inside quotes expand too — the
replacement strings ``{}``, ``{#}``, ``{%}``, ``{n}`` are never expanded
(they are not valid brace expressions) and always survive.
"""

from __future__ import annotations

import io
import shlex
from typing import Optional

from repro.compat.braces import brace_expand
from repro.core.cli import build_arg_parser, split_command_line
from repro.core.engine import Parallel
from repro.core.inputs import combine, from_file, link
from repro.core.job import RunSummary
from repro.core.options import Options
from repro.errors import OptionsError

__all__ = ["run_gnu_parallel", "expand_command_line"]


def expand_command_line(command_line: str) -> list[str]:
    """Tokenize and brace-expand a shell command line."""
    tokens = shlex.split(command_line)
    return [out for tok in tokens for out in brace_expand(tok)]


def run_gnu_parallel(
    command_line: str,
    output: object = None,
    input_text: str = "",
    dry_run: Optional[bool] = None,
) -> RunSummary:
    """Execute ``parallel ...`` (or ``pyparallel ...``) via the engine.

    ``input_text`` supplies stdin for commands with no ``:::`` sources;
    ``dry_run`` overrides the command's own ``--dry-run`` flag when given.
    """
    tokens = expand_command_line(command_line)
    if not tokens or tokens[0] not in ("parallel", "pyparallel"):
        raise OptionsError(
            f"not a GNU Parallel command line: {command_line!r} "
            "(must start with 'parallel')"
        )
    head, sources = split_command_line(tokens[1:])
    ns = build_arg_parser().parse_args(head)
    if not ns.command:
        raise OptionsError("no command template in GNU Parallel command line")

    options = Options(
        jobs=ns.jobs,
        keep_order=ns.keep_order,
        halt=ns.halt,
        retries=ns.retries,
        timeout=ns.timeout,
        delay=ns.delay,
        dry_run=ns.dry_run if dry_run is None else dry_run,
        tag=ns.tag,
        tagstring=ns.tagstring,
        shuf=ns.shuf,
        seed=ns.seed,
        joblog=ns.joblog,
        resume=ns.resume,
        resume_failed=ns.resume_failed,
        results=ns.results,
        ungroup=ns.ungroup,
        link=ns.link,
        workdir=ns.workdir,
        nice=ns.nice,
        colsep=ns.colsep,
        max_load=ns.max_load,
    )
    command = " ".join(ns.command) if len(ns.command) > 1 else ns.command[0]
    engine = Parallel(command, output=output, options=options)

    if ns.pipe:
        return engine.pipe(input_text, block_size=ns.block,
                           n_records=ns.max_replace_args)

    lists: list[list[str]] = []
    linked = ns.link
    for sep, toks in sources:
        if sep == ":::":
            lists.append(toks)
        elif sep == ":::+":
            linked = True
            lists.append(toks)
        else:  # '::::'
            for path in toks:
                lists.append([g[0] for g in from_file(path)])
    for path in ns.arg_file:
        lists.append([g[0] for g in from_file(path)])

    if not lists:
        inputs = [ln for ln in io.StringIO(input_text).read().splitlines() if ln]
        return engine.run(inputs)
    if len(lists) == 1:
        return engine.run(lists[0])
    return engine.run(link(lists) if linked else combine(lists))
