"""Bash brace expansion — enough to run the paper's listings verbatim.

The paper's scripts rely on the shell expanding ``{1..12}`` and
``{0..2}`` before GNU Parallel sees them (Listing 5), and on lists like
``{a,b,c}``.  This module implements the two forms bash supports:

* sequence expressions ``{x..y}`` and ``{x..y..incr}``, numeric (with
  zero-padding, e.g. ``{01..12}``) and single-letter;
* comma lists ``{a,b,c}``, nested and combinable with prefixes/suffixes.

Unmatched or non-expandable braces pass through untouched — exactly
bash's behaviour, and important here because ``{}``/``{#}``/``{%}`` are
GNU Parallel replacement strings that must survive expansion.
"""

from __future__ import annotations

import re

__all__ = ["brace_expand"]

_SEQ_RE = re.compile(
    r"^(?:(-?\d+)\.\.(-?\d+)(?:\.\.(-?\d+))?|([a-zA-Z])\.\.([a-zA-Z])(?:\.\.(-?\d+))?)$"
)


def brace_expand(word: str) -> list[str]:
    """Expand one shell word into its brace expansions (bash semantics)."""
    result = _expand(word)
    return result if result else [""]


def _expand(word: str) -> list[str]:
    # Find the first expandable brace group, expand it, recurse on results.
    group = _first_group(word)
    if group is None:
        return [word]
    start, end = group
    prefix, body, suffix = word[:start], word[start + 1 : end], word[end + 1 :]
    alternatives = _alternatives(body)
    if alternatives is None:
        # Not expandable ({}, {#}, {%}, {= =}, single item): keep literal
        # braces and continue past this group.
        rest = _expand(word[end + 1 :])
        return [word[: end + 1] + r for r in rest]
    out: list[str] = []
    for alt in alternatives:
        for expanded in _expand(prefix + alt + suffix):
            out.append(expanded)
    return out


def _first_group(word: str) -> "tuple[int, int] | None":
    """Span (open, close) of the first balanced top-level brace group."""
    depth = 0
    start = -1
    for i, ch in enumerate(word):
        if ch == "{":
            if depth == 0:
                start = i
            depth += 1
        elif ch == "}":
            if depth > 0:
                depth -= 1
                if depth == 0:
                    return (start, i)
    return None


def _alternatives(body: str) -> "list[str] | None":
    """The expansion alternatives of a brace body, or None if literal."""
    seq = _SEQ_RE.match(body)
    if seq:
        return _sequence(seq)
    # Comma list: split on top-level commas only.
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    if len(parts) < 2:
        return None  # bash: {single} is literal
    # Nested groups inside each part expand too.
    out: list[str] = []
    for part in parts:
        out.extend(_expand(part))
    return out


def _sequence(m: re.Match) -> list[str]:
    if m.group(1) is not None:  # numeric
        lo_s, hi_s, inc_s = m.group(1), m.group(2), m.group(3)
        lo, hi = int(lo_s), int(hi_s)
        inc = abs(int(inc_s)) if inc_s else 1
        inc = inc or 1
        width = 0
        # bash zero-pads when either endpoint is zero-padded.
        for s in (lo_s, hi_s):
            body = s.lstrip("-")
            if body.startswith("0") and len(body) > 1:
                width = max(width, len(s))
        step = inc if lo <= hi else -inc
        values = list(range(lo, hi + (1 if step > 0 else -1), step))
        return [f"{v:0{width}d}" if width else str(v) for v in values]
    lo_c, hi_c, inc_s = m.group(4), m.group(5), m.group(6)
    inc = abs(int(inc_s)) if inc_s else 1
    inc = inc or 1
    lo, hi = ord(lo_c), ord(hi_c)
    step = inc if lo <= hi else -inc
    return [chr(v) for v in range(lo, hi + (1 if step > 0 else -1), step)]
