"""GNU Parallel command-line compatibility: brace expansion + runner."""

from repro.compat.braces import brace_expand
from repro.compat.command import expand_command_line, run_gnu_parallel

__all__ = ["brace_expand", "expand_command_line", "run_gnu_parallel"]
