"""repro — reproduction of "Enabling Low-Overhead HT-HPC Workflows at
Extreme Scale using GNU Parallel" (SC 2024).

Two halves:

* :mod:`repro.core` — a from-scratch, GNU Parallel-compatible parallel
  execution engine (replacement strings, input sources, job slots, halt /
  retry / resume semantics) that runs real subprocesses and Python
  callables locally; and
* a calibrated discrete-event supercomputer simulator
  (:mod:`repro.sim`, :mod:`repro.cluster`, :mod:`repro.slurm`,
  :mod:`repro.storage`, :mod:`repro.containers`, :mod:`repro.gpu`,
  :mod:`repro.dtn`) on which the paper's extreme-scale experiments are
  replayed (Frontier weak scaling, Perlmutter launch-rate stress tests,
  container launches, the Darshan staging pipeline, DTN data motion).

Quickstart::

    from repro import Parallel
    summary = Parallel("echo {}", jobs=4, keep_order=True).run("abc")
"""

from repro.core import (
    CommandTemplate,
    HaltSpec,
    Job,
    JobResult,
    JobState,
    Options,
    Parallel,
    QueueSource,
    RunSummary,
    run_parallel,
)

__version__ = "1.0.0"

__all__ = [
    "Parallel",
    "run_parallel",
    "QueueSource",
    "CommandTemplate",
    "HaltSpec",
    "Options",
    "Job",
    "JobResult",
    "JobState",
    "RunSummary",
    "__version__",
]
