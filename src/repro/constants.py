"""Paper-calibrated rate constants (leaf module; no internal imports).

Kept import-free so both :mod:`repro.cluster` and :mod:`repro.containers`
can depend on them without cycles.  See
:mod:`repro.cluster.machines` for the full calibration notes; each value
is quoted directly from §III of the paper.
"""

from __future__ import annotations

__all__ = [
    "ENGINE_DISPATCH_RATE",
    "NODE_FORK_RATE",
    "SHIFTER_LAUNCH_RATE",
    "PODMAN_LAUNCH_RATE",
]

#: Jobs/s one GNU Parallel instance dispatches (Fig. 3, single instance).
ENGINE_DISPATCH_RATE = 470.0

#: Node-wide process-start ceiling, jobs/s (Fig. 3, many instances).
NODE_FORK_RATE = 6400.0

#: Shifter container-start ceiling, launches/s (Fig. 4).
SHIFTER_LAUNCH_RATE = 5200.0

#: Podman-HPC container-start ceiling, launches/s (Fig. 5).
PODMAN_LAUNCH_RATE = 65.0
