"""Job-slot bookkeeping.

GNU Parallel numbers its concurrent execution slots 1..N and exposes the
slot number to jobs as ``{%}``.  Freed slot numbers are reused
lowest-first, so with ``-j8`` the slot number is always in 1..8 — the
property the paper's GPU-isolation idiom depends on
(``HIP_VISIBLE_DEVICES=$(({%} - 1))`` must always land on a valid GPU
index).
"""

from __future__ import annotations

import heapq
import threading

from repro.errors import OptionsError

__all__ = ["SlotPool"]


class SlotPool:
    """Thread-safe pool of slot numbers 1..capacity, granted lowest-first."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise OptionsError(f"slot pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._free = list(range(1, capacity + 1))
        heapq.heapify(self._free)
        #: Slots currently granted — O(1) double-release detection (the
        #: former ``slot in self._free`` list scan was O(capacity) per
        #: release, a per-job cost).
        self._held: set[int] = set()
        self._lock = threading.Lock()
        self._available = threading.Semaphore(capacity)

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> int | None:
        """Take the lowest free slot number; None on timeout/non-blocking miss."""
        if blocking:
            acquired = self._available.acquire(blocking=True, timeout=timeout)
        else:
            acquired = self._available.acquire(blocking=False)
        if not acquired:
            return None
        with self._lock:
            slot = heapq.heappop(self._free)
            self._held.add(slot)
            return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the pool."""
        if not 1 <= slot <= self.capacity:
            raise OptionsError(f"slot {slot} out of range 1..{self.capacity}")
        with self._lock:
            if slot not in self._held:
                raise OptionsError(f"slot {slot} released twice")
            self._held.discard(slot)
            heapq.heappush(self._free, slot)
        self._available.release()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        with self._lock:
            return len(self._held)
