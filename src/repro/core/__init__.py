"""The GNU Parallel-compatible execution engine (the paper's tool).

See :class:`~repro.core.engine.Parallel` for the primary entry point and
:mod:`repro.core.cli` for the ``pyparallel`` command-line front end.
"""

from repro.core.engine import Parallel, run_parallel
from repro.core.inputs import QueueSource, combine, from_file, from_items, link, shuffled
from repro.core.job import Job, JobResult, JobState, RunSummary
from repro.core.joblog import JoblogEntry, JoblogWriter, read_joblog
from repro.core.options import HaltSpec, Options, parse_jobs, parse_timeout
from repro.core.pipemode import split_blocks, split_records
from repro.core.progress import Progress, ProgressBar
from repro.core.template import CommandTemplate

__all__ = [
    "Parallel",
    "run_parallel",
    "QueueSource",
    "combine",
    "from_file",
    "from_items",
    "link",
    "shuffled",
    "Job",
    "JobResult",
    "JobState",
    "RunSummary",
    "JoblogEntry",
    "JoblogWriter",
    "read_joblog",
    "HaltSpec",
    "Options",
    "parse_jobs",
    "parse_timeout",
    "split_blocks",
    "split_records",
    "Progress",
    "ProgressBar",
    "CommandTemplate",
]
