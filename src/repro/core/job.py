"""Job and result records shared by every backend."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, MutableSequence, Optional, Sequence

__all__ = ["JobState", "Job", "JobResult", "RunSummary"]


class JobState(enum.Enum):
    """Lifecycle of a job inside the engine."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    KILLED = "killed"  # halted by --halt now
    SKIPPED = "skipped"  # --resume skipped it


@dataclass
class Job:
    """One unit of work: an argument group bound to a sequence number."""

    seq: int  # 1-based, assigned in input order
    args: tuple[str, ...]
    command: str = ""  # rendered at dispatch (needs the slot number)
    state: JobState = JobState.PENDING
    attempt: int = 0  # 0 = not yet started; 1 = first attempt
    #: ``--pipe`` mode: the block of input fed to the job's stdin.
    stdin_data: "str | None" = None
    #: Earliest wall-clock time this job may be (re)dispatched; set by the
    #: ``--retry-delay`` backoff when a failed attempt is re-queued.
    eligible_at: float = 0.0
    #: ``--linebuffer``: incremental stdout emitter installed per dispatch
    #: by the scheduler; capable backends call it with complete-line
    #: chunks as the job runs (None = buffer until completion).
    stream: "Callable[[str], None] | None" = field(
        default=None, repr=False, compare=False
    )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job attempt (the last attempt, after retries)."""

    seq: int
    args: tuple[str, ...]
    command: str
    exit_code: int
    stdout: str = ""
    stderr: str = ""
    #: Wall-clock (real backend) or simulated (sim backend) start time.
    start_time: float = 0.0
    end_time: float = 0.0
    slot: int = 0
    #: Hostname (real) or simulated node name.
    host: str = ""
    attempt: int = 1
    state: JobState = JobState.SUCCEEDED
    #: Python-level return value when running callables instead of commands.
    value: object = None

    @property
    def runtime(self) -> float:
        """Duration of the recorded attempt."""
        return self.end_time - self.start_time

    @property
    def ok(self) -> bool:
        """True for a zero exit code."""
        return self.exit_code == 0


@dataclass
class RunSummary:
    """Aggregate statistics for one engine run.

    ``results`` is the in-memory retention window: a plain list when the
    run keeps everything, or a bounded ``collections.deque`` (oldest
    evicted first) when ``--keep-results N`` caps coordinator memory —
    the regime the paper targets is millions of jobs, where an unbounded
    result list is the difference between O(slots) and O(total) RSS.
    Every aggregate below (``n_completed``, ``exit_counts``, launch-rate
    window, ...) is maintained incrementally by :meth:`record`, so
    nothing downstream *needs* the full list; the joblog/metrics sinks
    remain the durable per-job record.
    """

    results: MutableSequence[JobResult] = field(default_factory=list)
    n_dispatched: int = 0
    n_succeeded: int = 0
    n_failed: int = 0
    n_skipped: int = 0
    halted: bool = False
    halt_reason: Optional[str] = None
    wall_time: float = 0.0
    #: Terminal completions recorded (retries collapse to one); unlike
    #: ``len(results)`` this never decays under bounded retention.
    n_completed: int = 0
    #: Results evicted from the bounded retention window.
    n_results_dropped: int = 0
    #: Completions per exit code, e.g. ``{0: 993, 1: 7}``.
    exit_counts: dict[int, int] = field(default_factory=dict)
    #: Sum of recorded attempt runtimes (mean = runtime_sum/n_completed).
    runtime_sum: float = 0.0
    #: Earliest / latest recorded start times — the launch-rate window,
    #: kept incrementally so the Fig. 3-5 metric survives eviction.
    first_start: float = 0.0
    last_start: float = 0.0
    #: Data-plane counters for staged (remote) runs — files_staged,
    #: cache_hits, bytes_moved, bytes_staged_avoided; empty for local runs.
    staging: dict = field(default_factory=dict)
    #: Control-plane counters for sharded runs (frames sent/received,
    #: jobs per frame, interning); empty for in-process dispatch.
    rpc: dict = field(default_factory=dict)
    #: Coordinator peak RSS in bytes (VmHWM on Linux, ``getrusage``
    #: elsewhere), stamped at run end; 0 where the probe is unavailable.
    coordinator_rss: int = 0

    def record(self, result: JobResult) -> None:
        """Fold one terminal completion into the summary.

        Updates the retention window and every incremental aggregate in
        one place; the scheduler calls this instead of appending to
        ``results`` directly.
        """
        maxlen = getattr(self.results, "maxlen", None)
        if maxlen is not None and len(self.results) >= maxlen:
            self.n_results_dropped += 1  # deque evicts the oldest on append
        self.results.append(result)
        self.n_completed += 1
        code = result.exit_code
        self.exit_counts[code] = self.exit_counts.get(code, 0) + 1
        self.runtime_sum += result.runtime
        start = result.start_time
        if self.n_completed == 1 or start < self.first_start:
            self.first_start = start
        if start > self.last_start:
            self.last_start = start
        if result.state == JobState.SUCCEEDED:
            self.n_succeeded += 1
        elif result.state in (JobState.FAILED, JobState.TIMED_OUT):
            self.n_failed += 1

    @property
    def mean_runtime(self) -> float:
        """Mean recorded attempt runtime, seconds (0.0 before any)."""
        return self.runtime_sum / self.n_completed if self.n_completed else 0.0

    @property
    def observed_launch_rate(self) -> float:
        """Jobs started per second over the whole run (eviction-proof).

        The incremental counterpart of :meth:`launch_rate`: computed from
        the first/last start-time window and ``n_completed``, so it stays
        exact after bounded retention has evicted early results.
        """
        if self.n_completed < 2:
            return 0.0
        span = self.last_start - self.first_start
        if span <= 0:
            return float("inf")
        return (self.n_completed - 1) / span

    @property
    def ok(self) -> bool:
        """True when nothing failed and the run was not halted."""
        return self.n_failed == 0 and not self.halted

    @property
    def exit_code(self) -> int:
        """GNU Parallel-style exit status: min(number of failed jobs, 101)."""
        return min(self.n_failed, 101)

    def sorted_results(self) -> list[JobResult]:
        """Results in input (sequence) order regardless of completion order."""
        return sorted(self.results, key=lambda r: r.seq)

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (drops Python ``value`` payloads)."""
        out = {
            "n_dispatched": self.n_dispatched,
            "n_succeeded": self.n_succeeded,
            "n_failed": self.n_failed,
            "n_skipped": self.n_skipped,
            "halted": self.halted,
            "halt_reason": self.halt_reason,
            "wall_time": self.wall_time,
            "exit_code": self.exit_code,
            "n_completed": self.n_completed,
            "n_results_dropped": self.n_results_dropped,
            "results_retained": len(self.results),
            "exit_counts": {str(k): v for k, v in sorted(self.exit_counts.items())},
            "mean_runtime": self.mean_runtime,
            "results": [
                {
                    "seq": r.seq,
                    "args": list(r.args),
                    "command": r.command,
                    "exit_code": r.exit_code,
                    "start_time": r.start_time,
                    "end_time": r.end_time,
                    "runtime": r.runtime,
                    "slot": r.slot,
                    "host": r.host,
                    "attempt": r.attempt,
                    "state": r.state.value,
                }
                for r in self.sorted_results()
            ],
        }
        if self.staging:
            out["staging"] = dict(self.staging)
        if self.rpc:
            out["rpc"] = dict(self.rpc)
        if self.coordinator_rss:
            out["coordinator_rss"] = self.coordinator_rss
        return out

    def write_json(self, path: str) -> None:
        """Persist :meth:`to_dict` for offline analysis of a run's profile.

        This is the "extract parallel profiles from application executions"
        use the paper's conclusion highlights: a machine-readable timeline
        of every job's start/end/slot.
        """
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    @staticmethod
    def launch_rate(results: Sequence[JobResult]) -> float:
        """Jobs started per second across ``results`` (the Fig. 3-5 metric)."""
        if not results:
            return 0.0
        starts = [r.start_time for r in results]
        span = max(starts) - min(starts)
        if span <= 0:
            return float("inf")
        # N starts over `span` seconds means N-1 inter-start gaps.
        return (len(results) - 1) / span
