"""Typed engine options mirroring the GNU Parallel CLI flags we support.

The subset implemented is the one the paper's workflows exercise, plus the
bookkeeping flags (joblog/resume/results) any production use needs:

``-j/--jobs`` (counts, ``0``, ``+N``, ``-N`` and ``N%`` forms),
``-k/--keep-order``, ``--halt``, ``--retries``, ``--timeout`` (seconds or
``N%`` of the median runtime), ``--delay``, ``--dry-run``,
``--tag``/``--tagstring``, ``--shuf``, ``--joblog``, ``--resume``,
``--resume-failed``, ``--results``, ``--ungroup``, ``--link``,
``--colsep``, ``--load`` (dispatch throttling on system load),
``--nice`` (applied on POSIX), ``--wd``, ``--linebuffer``, plus the
engine-specific ``--spawn-path`` selecting the local process-spawn path
and ``--dispatchers`` sharding the local dispatch loop over N spawner
worker processes.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.inputs import ceil_div
from repro.errors import OptionsError

__all__ = [
    "HaltSpec",
    "Options",
    "DEFAULT_JOBS",
    "DEFAULT_RPC_BATCH",
    "DEFAULT_KEEP_RESULTS",
    "TMPDIR_WORKDIR",
    "parse_jobs",
    "parse_timeout",
]

#: GNU Parallel's ``-j`` default is one job per CPU core.
DEFAULT_JOBS = os.cpu_count() or 1

#: ``--rpc-batch auto`` frame-size cap: big enough to amortize the pipe
#: wakeup + syscall cost across a dispatch burst, small enough that a
#: partially filled frame never represents meaningful queued latency.
DEFAULT_RPC_BATCH = 32

#: ``--keep-results auto`` retention bound: generous for interactive use
#: (every small/medium run behaves exactly as full retention), while a
#: million-job run holds a fixed-size window instead of the whole list.
DEFAULT_KEEP_RESULTS = 10_000

#: ``--workdir`` spelling for "a unique per-run directory, auto-removed"
#: — honoured by the local backend and every remote transport.
TMPDIR_WORKDIR = "..."


def parse_jobs(spec: Union[int, str], cores: Optional[int] = None) -> int:
    """Resolve a GNU Parallel ``-j`` specification to a slot count.

    Accepted forms (``man parallel``): an integer, ``0`` ("as many as
    inputs", resolved later by :meth:`Options.effective_jobs`), ``+N``
    (cores + N), ``-N`` (cores − N, min 1), and ``N%`` (percentage of
    cores, rounded up, min 1).
    """
    cores = cores if cores is not None else DEFAULT_JOBS
    if isinstance(spec, int):
        if spec < 0:
            raise OptionsError(f"--jobs must be >= 0, got {spec}")
        return spec
    text = spec.strip()
    try:
        if text.startswith("+") and text[1:].isdigit():
            return cores + int(text[1:])
        if text.startswith("-") and text[1:].isdigit():
            return max(1, cores - int(text[1:]))
        if text.endswith("%") and text[:-1].isdigit():
            pct = int(text[:-1])
            if pct <= 0:
                raise OptionsError(f"--jobs percentage must be > 0: {spec!r}")
            return max(1, ceil_div(cores * pct, 100))
        if not text.isdigit():
            raise ValueError(text)
        value = int(text)
    except ValueError:
        raise OptionsError(f"bad --jobs specification: {spec!r}") from None
    if value < 0:
        raise OptionsError(f"--jobs must be >= 0, got {value}")
    return value


def parse_timeout(spec: Union[float, int, str, None]) -> "tuple[Optional[float], Optional[float]]":
    """Parse ``--timeout``: seconds, or ``N%`` of the median job runtime.

    Returns ``(seconds, percent)`` — exactly one is non-None (or both None
    when no timeout was requested).  The percentage form mirrors GNU
    Parallel's dynamic timeout: kill jobs slower than N% of the median
    runtime observed so far.
    """
    if spec is None:
        return None, None
    if isinstance(spec, (int, float)):
        if spec <= 0:
            raise OptionsError(f"--timeout must be > 0, got {spec}")
        return float(spec), None
    text = spec.strip()
    if text.endswith("%"):
        try:
            pct = float(text[:-1])
        except ValueError:
            raise OptionsError(f"bad --timeout: {spec!r}") from None
        if pct <= 0:
            raise OptionsError(f"--timeout percentage must be > 0: {spec!r}")
        return None, pct / 100.0
    try:
        seconds = float(text)
    except ValueError:
        raise OptionsError(f"bad --timeout: {spec!r}") from None
    if seconds <= 0:
        raise OptionsError(f"--timeout must be > 0, got {seconds}")
    return seconds, None

_HALT_RE = re.compile(
    r"^(?P<when>now|soon)?,?(?P<what>fail|success|done)=(?P<n>\d+%?)$"
)


@dataclass(frozen=True)
class HaltSpec:
    """Parsed ``--halt`` policy.

    ``when``
        ``"never"`` (default), ``"now"`` (kill running jobs) or ``"soon"``
        (let running jobs finish, start no new ones).
    ``what``
        ``"fail"``, ``"success"`` or ``"done"`` — which outcomes count.
    ``threshold``
        Absolute count, or fraction in (0, 1] when ``percent`` is True.
    """

    when: str = "never"
    what: str = "fail"
    threshold: float = 0.0
    percent: bool = False

    @classmethod
    def parse(cls, spec: Optional[str]) -> "HaltSpec":
        """Parse a ``--halt`` string like ``now,fail=1`` or ``soon,fail=30%``."""
        if not spec or spec == "never":
            return cls()
        m = _HALT_RE.match(spec.strip())
        if not m:
            raise OptionsError(
                f"bad --halt spec {spec!r}; expected e.g. 'now,fail=1', "
                "'soon,fail=30%', 'now,success=1'"
            )
        when = m.group("when") or "now"
        what = m.group("what")
        n = m.group("n")
        if n.endswith("%"):
            value = int(n[:-1])
            if not 0 < value <= 100:
                raise OptionsError(f"--halt percentage out of range: {n}")
            return cls(when=when, what=what, threshold=value / 100.0, percent=True)
        value = int(n)
        if value < 1:
            raise OptionsError(f"--halt count must be >= 1: {n}")
        return cls(when=when, what=what, threshold=float(value), percent=False)

    @property
    def active(self) -> bool:
        """True unless the policy is ``never``."""
        return self.when != "never"


@dataclass
class Options:
    """Engine configuration.  Field names follow the long CLI flags."""

    #: Number of concurrent job slots (``-j``).  0 means "as many as
    #: inputs".  Accepts GNU Parallel string forms too: ``"+2"``, ``"-1"``,
    #: ``"50%"`` (resolved against the CPU count in ``__post_init__``).
    jobs: Union[int, str] = DEFAULT_JOBS
    #: Emit job output in input order (``-k`` / ``--keep-order``).
    keep_order: bool = False
    #: Halt policy string, e.g. ``"now,fail=1"``.
    halt: str = "never"
    #: Run failing jobs up to this many times in total (``--retries``, GNU
    #: Parallel semantics).  0 (default) and 1 both mean "run once".
    retries: int = 0
    #: Base delay before re-running a failed job (``--retry-delay``),
    #: seconds.  Grows exponentially per attempt (base, 2×base, 4×base,
    #: ...) with jitter, capped at ``retry_delay_max`` — so a flapping
    #: service is not hammered in lockstep by every retried job.  0
    #: (default) retries immediately.
    retry_delay: float = 0.0
    #: Upper bound on the exponential retry delay, seconds.
    retry_delay_max: float = 60.0
    #: After a ``--halt now`` (or at shutdown), how long to wait for
    #: in-flight workers to come back before abandoning them with
    #: synthetic KILLED results, seconds.
    halt_grace: float = 5.0
    #: Per-job wall-clock timeout (``--timeout``): seconds, or ``"N%"`` of
    #: the median runtime observed so far.  None = no timeout.
    timeout: Union[float, str, None] = None
    #: Minimum delay between job starts, seconds (``--delay``).
    delay: float = 0.0
    #: Print commands without running them (``--dry-run``).
    dry_run: bool = False
    #: Prefix each output line with the job's arguments (``--tag``).
    tag: bool = False
    #: Custom tag template (``--tagstring``); implies ``tag``.
    tagstring: Optional[str] = None
    #: Shuffle input order deterministically (``--shuf``).
    shuf: bool = False
    #: Seed for ``--shuf``.
    seed: Optional[int] = None
    #: Path of the job log (``--joblog``).
    joblog: Optional[str] = None
    #: Skip inputs already completed successfully in the joblog (``--resume``).
    resume: bool = False
    #: Like resume, but also re-run previously failed inputs (``--resume-failed``).
    resume_failed: bool = False
    #: Directory for per-job stdout/stderr capture (``--results``).
    results: Optional[str] = None
    #: Stream output unbuffered instead of grouping per job (``--ungroup``).
    ungroup: bool = False
    #: Treat the input sources as linked rather than crossed (``--link``).
    link: bool = False
    #: Working directory for jobs (``--wd``).
    workdir: Optional[str] = None
    #: Process-spawn path for the local backend (``--spawn-path``):
    #: ``"auto"`` (posix_spawn fast path when supported, Popen otherwise),
    #: ``"posix"`` (prefer posix_spawn; hard-unsupported combinations such
    #: as ``--wd`` still fall back), ``"popen"`` (always Popen).
    spawn_path: str = "auto"
    #: Dispatcher shard count for the local backend (``--dispatchers``):
    #: ``"auto"`` (single in-process dispatcher — sharding is opt-in) or
    #: N >= 1 spawner worker processes fed from one sharded queue.  N > 1
    #: lifts the single-dispatcher launch-rate ceiling (paper Fig. 3) by
    #: running N posix_spawn+reaper loops in separate kernel task
    #: contexts; ordering/joblog/halt merge stays centralized, so output
    #: is byte-identical to ``--dispatchers 1``.
    dispatchers: Union[int, str] = "auto"
    #: Spawn/result RPC frame size for sharded dispatch (``--rpc-batch``):
    #: ``"auto"`` (min(DEFAULT_RPC_BATCH, -j) — frames larger than the
    #: in-flight window can never fill) or N >= 1 records per frame.
    #: 1 disables coalescing: every record ships immediately, the PR6
    #: per-message shape.  Only meaningful with ``--dispatchers`` > 1.
    rpc_batch: Union[int, str] = "auto"
    #: In-memory result retention (``--keep-results``): ``"auto"``
    #: (bounded at DEFAULT_KEEP_RESULTS), ``"all"`` (unbounded — the
    #: pre-PR10 behaviour), or N >= 0 results kept.  Aggregates on
    #: :class:`~repro.core.job.RunSummary` (counts, exit codes, launch
    #: rate) are exact regardless; only the ``results`` window is capped.
    keep_results: Union[int, str] = "auto"
    #: Stream each job's stdout line-by-line as it is produced instead of
    #: buffering until the job finishes (``--linebuffer``).  Lines from
    #: different jobs may interleave, but never within a line.  With
    #: ``--keep-order`` or on the Popen spawn path output stays
    #: whole-job-buffered (a documented approximation).
    linebuffer: bool = False
    #: POSIX niceness applied to spawned processes (``--nice``).
    nice: Optional[int] = None
    #: Extra environment variables exported to every job (``--env`` analog).
    env: dict[str, str] = field(default_factory=dict)
    #: Split each input line into multiple arguments on this regex
    #: (``--colsep``); the pieces populate ``{1}``, ``{2}``, ...
    colsep: Optional[str] = None
    #: Do not start new jobs while the 1-minute load average exceeds this
    #: (``--load``).  None = no throttling.
    max_load: Optional[float] = None
    #: Load probe used by ``--load`` (returns the 1-minute load average);
    #: injectable for tests.  None = ``os.getloadavg``.
    load_probe: Optional[object] = field(default=None, repr=False)
    #: Do not start new jobs while available memory is below this many
    #: bytes (``--memfree``).  None = no memory throttling.
    memfree: Optional[int] = None
    #: Memory probe used by ``--memfree`` (returns available bytes);
    #: injectable for tests.  None = read /proc/meminfo MemAvailable.
    memfree_probe: Optional[object] = field(default=None, repr=False)
    #: ``--pipe`` mode: each input "argument" is a block of text delivered
    #: on the job's stdin instead of substituted into the command line.
    pipe_mode: bool = False
    #: Shell-quote substituted values (``-q``/``--quote``): inputs with
    #: spaces or shell metacharacters cannot break the command.
    quote: bool = False
    #: Pack this many consecutive arguments into each job (``-n``); the
    #: packed values fill ``{1}``..``{n}`` (and ``{}`` space-joined).
    max_args: Optional[int] = None
    #: Start all dispatch-pool worker threads up front instead of growing
    #: the pool lazily with observed concurrency (engine extension, not a
    #: GNU Parallel flag).  Helps very short latency-sensitive runs.
    pool_prestart: bool = False
    #: Flush the ``--joblog`` after this many records (engine extension).
    #: 1 = flush every record (the old behaviour); a time-based flush
    #: still bounds staleness between batches.
    joblog_flush_every: int = 32
    #: Cap on the exponential ``--load``/``--memfree`` poll backoff,
    #: seconds (engine extension; the poll starts at 5 ms and doubles).
    throttle_poll_max: float = 0.25
    #: Write a Chrome/Perfetto ``trace_event`` JSON trace of the run to
    #: this path (``--trace``; engine extension).  None = no trace.
    trace: Optional[str] = None
    #: Write a newline-JSON metrics log (periodic gauge samples) to this
    #: path (``--metrics``; engine extension).  None = no metrics log.
    metrics: Optional[str] = None
    #: Seconds between metrics samples (``--metrics-interval``).
    metrics_interval: float = 1.0
    #: Pre-built :class:`repro.obs.RunTracer` to observe the run with;
    #: injectable for tests and multi-instance drivers.  When None, the
    #: scheduler builds one iff ``trace``/``metrics`` ask for output
    #: (an injected tracer takes precedence — the paths are ignored).
    tracer: Optional[object] = field(default=None, repr=False)
    #: Remote host specs (``-S``/``--sshlogin``): each entry is a
    #: comma-separated list of ``[N/]host`` sshlogins; ``:`` = localhost.
    #: Non-empty makes the run remote.  ``-j`` then means slots *per host*.
    sshlogin: list[str] = field(default_factory=list)
    #: File of sshlogins, one per line, ``#`` comments (``--sshloginfile``).
    sshloginfile: Optional[str] = None
    #: Per-job file(s) to stage to the executing host (``--transferfile``);
    #: each entry is a replacement-string template rendered per job.
    transfer_files: list[str] = field(default_factory=list)
    #: Per-job file(s) to fetch back after the job (``--return``).
    return_files: list[str] = field(default_factory=list)
    #: Remove transferred/returned files from the host afterwards
    #: (``--cleanup``).
    cleanup: bool = False
    #: Files staged once per host per run, never per job (``--basefile``).
    basefiles: list[str] = field(default_factory=list)
    #: Ban a host after this many *consecutive* transport failures; its
    #: in-flight jobs re-place onto surviving hosts (engine extension).
    ban_after: int = 3
    #: Content-addressed staging dedup (``--staging-cache``): a file
    #: already staged to a host this run is never re-pushed, and
    #: ``--cleanup`` defers to the last referencing job.  On by default —
    #: it only changes *costs*, never job-visible semantics.
    staging_cache: bool = True
    #: Prefetch stage-in for up to N queued jobs ahead of slot
    #: availability (``--stage-ahead``); 0 = fully synchronous staging.
    stage_ahead: int = 0

    # Parsed halt policy (computed in __post_init__).
    halt_spec: HaltSpec = field(init=False, repr=False)
    #: Resolved timeout forms (seconds, or fraction-of-median).
    timeout_s: Optional[float] = field(init=False, repr=False)
    timeout_pct: Optional[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.jobs = parse_jobs(self.jobs)
        if self.retries < 0:
            raise OptionsError(f"--retries must be >= 0, got {self.retries}")
        self.timeout_s, self.timeout_pct = parse_timeout(self.timeout)
        if self.max_load is not None and self.max_load <= 0:
            raise OptionsError(f"--load must be > 0, got {self.max_load}")
        if self.memfree is not None and self.memfree <= 0:
            raise OptionsError(f"--memfree must be > 0, got {self.memfree}")
        if self.max_args is not None and self.max_args < 1:
            raise OptionsError(f"-n/--max-args must be >= 1, got {self.max_args}")
        if self.colsep is not None:
            try:
                re.compile(self.colsep)
            except re.error as exc:
                raise OptionsError(f"bad --colsep regex {self.colsep!r}: {exc}") from None
        if self.delay < 0:
            raise OptionsError(f"--delay must be >= 0, got {self.delay}")
        if self.retry_delay < 0:
            raise OptionsError(f"--retry-delay must be >= 0, got {self.retry_delay}")
        if self.retry_delay_max <= 0:
            raise OptionsError(
                f"retry_delay_max must be > 0, got {self.retry_delay_max}"
            )
        if self.halt_grace < 0:
            raise OptionsError(f"halt_grace must be >= 0, got {self.halt_grace}")
        if self.joblog_flush_every < 1:
            raise OptionsError(
                f"joblog_flush_every must be >= 1, got {self.joblog_flush_every}"
            )
        if self.throttle_poll_max <= 0:
            raise OptionsError(
                f"throttle_poll_max must be > 0, got {self.throttle_poll_max}"
            )
        if self.metrics_interval <= 0:
            raise OptionsError(
                f"--metrics-interval must be > 0, got {self.metrics_interval}"
            )
        if self.ban_after < 1:
            raise OptionsError(f"ban_after must be >= 1, got {self.ban_after}")
        if self.stage_ahead < 0:
            raise OptionsError(
                f"--stage-ahead must be >= 0, got {self.stage_ahead}"
            )
        if self.spawn_path not in ("auto", "posix", "popen"):
            raise OptionsError(
                f"--spawn-path must be auto, posix or popen, got {self.spawn_path!r}"
            )
        if isinstance(self.dispatchers, str):
            text = self.dispatchers.strip()
            if text != "auto":
                if not text.isdigit():
                    raise OptionsError(
                        f"--dispatchers must be auto or a positive integer, "
                        f"got {self.dispatchers!r}"
                    )
                self.dispatchers = int(text)
        if isinstance(self.dispatchers, int) and self.dispatchers < 1:
            raise OptionsError(
                f"--dispatchers must be >= 1, got {self.dispatchers}"
            )
        if isinstance(self.rpc_batch, str):
            text = self.rpc_batch.strip()
            if text != "auto":
                if not text.isdigit():
                    raise OptionsError(
                        f"--rpc-batch must be auto or a positive integer, "
                        f"got {self.rpc_batch!r}"
                    )
                self.rpc_batch = int(text)
        if isinstance(self.rpc_batch, int) and self.rpc_batch < 1:
            raise OptionsError(
                f"--rpc-batch must be >= 1, got {self.rpc_batch}"
            )
        if isinstance(self.keep_results, str):
            text = self.keep_results.strip()
            if text not in ("auto", "all"):
                if not text.isdigit():
                    raise OptionsError(
                        f"--keep-results must be auto, all or an integer "
                        f">= 0, got {self.keep_results!r}"
                    )
                self.keep_results = int(text)
        if isinstance(self.keep_results, int) and self.keep_results < 0:
            raise OptionsError(
                f"--keep-results must be >= 0, got {self.keep_results}"
            )
        if not self.remote:
            staging_flags = [
                name
                for name, value in (
                    ("--transferfile", self.transfer_files),
                    ("--return", self.return_files),
                    ("--cleanup", self.cleanup),
                    ("--basefile", self.basefiles),
                )
                if value
            ]
            if staging_flags:
                raise OptionsError(
                    f"{'/'.join(staging_flags)} require(s) -S/--sshlogin "
                    "or --sshloginfile"
                )
        if self.resume_failed:
            # --resume-failed implies --resume bookkeeping.
            self.resume = True
        if (self.resume or self.resume_failed) and not self.joblog:
            raise OptionsError("--resume/--resume-failed require --joblog")
        if self.tagstring is not None:
            self.tag = True
        self.halt_spec = HaltSpec.parse(self.halt)

    @property
    def remote(self) -> bool:
        """True when a host roster was given: dispatch goes multi-host."""
        return bool(self.sshlogin or self.sshloginfile)

    def effective_dispatchers(self) -> int:
        """Resolve ``--dispatchers`` to a shard count.

        ``"auto"`` resolves to 1: the in-process posix_spawn path already
        runs at ~85% of the per-dispatcher kernel ceiling, so sharding
        only pays when the workload is launch-rate-bound — an explicit
        choice, not a default tax on every short run.
        """
        if self.dispatchers == "auto":
            return 1
        return int(self.dispatchers)

    def effective_rpc_batch(self) -> int:
        """Resolve ``--rpc-batch`` to a frame size.

        ``"auto"`` adapts to the slot count: with ``-j`` jobs in flight
        at most ``-j`` spawn records can ever be outstanding, so a larger
        frame would only ever ship partially filled (after the idle
        deadline) and buys nothing.
        """
        if self.rpc_batch == "auto":
            jobs = self.jobs if isinstance(self.jobs, int) and self.jobs > 0 else DEFAULT_RPC_BATCH
            return max(1, min(DEFAULT_RPC_BATCH, jobs))
        return int(self.rpc_batch)

    def effective_keep_results(self) -> Optional[int]:
        """Resolve ``--keep-results``: None = keep everything, else a cap."""
        if self.keep_results == "all":
            return None
        if self.keep_results == "auto":
            return DEFAULT_KEEP_RESULTS
        return int(self.keep_results)

    def effective_jobs(self, n_inputs: Optional[int] = None) -> int:
        """Resolve ``jobs=0`` ("run everything at once") against input count."""
        if self.jobs > 0:
            return self.jobs
        if n_inputs is None:
            raise OptionsError("jobs=0 requires a finite, known input count")
        return max(1, n_inputs)
