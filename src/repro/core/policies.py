"""Run-control policies shared by the real and simulated schedulers.

Factoring halt/retry decisions out of the dispatch loops keeps GNU Parallel
semantics in exactly one place: both the thread-based local scheduler and
the discrete-event simulated scheduler delegate here, so a behavioural fix
applies to both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.job import Job, JobState
from repro.core.options import HaltSpec

__all__ = ["HaltTracker", "should_retry", "retry_backoff_delay"]


@dataclass
class HaltTracker:
    """Tracks outcomes and decides when a ``--halt`` policy fires.

    Percentage thresholds are evaluated against the total number of inputs
    (when known), exactly as GNU Parallel computes ``fail=X%``.
    """

    spec: HaltSpec
    total_jobs: Optional[int] = None
    n_failed: int = 0
    n_succeeded: int = 0
    triggered: bool = False
    reason: Optional[str] = None

    def record(self, state: JobState) -> bool:
        """Record a final job outcome; return True if the run must halt."""
        if state in (JobState.SUCCEEDED,):
            self.n_succeeded += 1
        elif state in (JobState.FAILED, JobState.TIMED_OUT):
            self.n_failed += 1
        if not self.spec.active or self.triggered:
            return self.triggered
        count = {
            "fail": self.n_failed,
            "success": self.n_succeeded,
            "done": self.n_failed + self.n_succeeded,
        }[self.spec.what]
        if self.spec.percent:
            if self.total_jobs:
                hit = count / self.total_jobs >= self.spec.threshold
            else:
                hit = False  # unbounded input: percentage can never be hit
        else:
            hit = count >= self.spec.threshold
        if hit:
            self.triggered = True
            self.reason = (
                f"halt {self.spec.when},{self.spec.what}="
                f"{self.spec.threshold:g}{'%' if self.spec.percent else ''} "
                f"reached ({count} {self.spec.what})"
            )
        return self.triggered

    @property
    def kill_running(self) -> bool:
        """True if running jobs must be terminated (``now``), not drained."""
        return self.triggered and self.spec.when == "now"


def should_retry(job: Job, exit_code: int, retries: int) -> bool:
    """GNU Parallel ``--retries``: re-run failures up to ``retries`` attempts.

    ``--retries N`` in GNU Parallel means a job runs at most N times in
    total; we follow that: a job whose ``attempt`` counter has reached N is
    not retried.  ``retries=0`` (our default) disables retrying entirely.
    """
    if exit_code == 0 or retries <= 0:
        return False
    return job.attempt < max(retries, 1)


def retry_backoff_delay(
    attempt: int,
    base: float,
    cap: float,
    rng: Optional[random.Random] = None,
) -> float:
    """``--retry-delay``: exponential backoff with jitter.

    ``attempt`` is the number of attempts already made (1-based).  The
    raw delay doubles per attempt (``base``, ``2*base``, ``4*base``, ...)
    and saturates at ``cap``; with an ``rng`` the result is jittered
    uniformly into ``[raw/2, raw]`` so a burst of same-attempt failures
    does not retry in lockstep.  ``base <= 0`` disables the delay.
    """
    if base <= 0:
        return 0.0
    raw = min(base * (2.0 ** max(0, attempt - 1)), cap)
    if rng is None:
        return raw
    return raw * (0.5 + 0.5 * rng.random())
