"""``--pipe`` mode: split an input stream into blocks fed to jobs' stdin.

GNU Parallel's second major mode: instead of one job per *argument*, the
input **stream** is chopped into blocks on record boundaries and each
block is piped to one job's standard input::

    cat bigfile | parallel --pipe --block 10M wc -l

Two splitters cover the common flags:

* :func:`split_blocks` — ``--block N`` byte-targeted blocks, never
  splitting a record (line) in half;
* :func:`split_records` — ``-N n`` exact record counts per block.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import OptionsError

__all__ = ["split_blocks", "split_records", "iter_lines"]


def iter_lines(source: Union[str, Iterable[str]]) -> Iterator[str]:
    """Normalize a pipe-mode source into newline-terminated records.

    Accepts a single string (split on newlines) or an iterable of lines
    (each gets a trailing newline if missing) — so files, lists, and
    generators all work.
    """
    if isinstance(source, str):
        for line in source.splitlines():
            yield line + "\n"
        return
    for line in source:
        yield line if line.endswith("\n") else line + "\n"


def split_blocks(
    source: Union[str, Iterable[str]], block_bytes: int = 1 << 20
) -> Iterator[str]:
    """Yield blocks of whole records totalling ~``block_bytes`` each.

    A block closes as soon as it reaches ``block_bytes`` — so a single
    oversized record forms its own block rather than being split,
    matching GNU Parallel's record-boundary guarantee.
    """
    if block_bytes < 1:
        raise OptionsError(f"--block must be >= 1 byte, got {block_bytes}")
    buf: list[str] = []
    size = 0
    for record in iter_lines(source):
        buf.append(record)
        size += len(record.encode("utf-8"))
        if size >= block_bytes:
            yield "".join(buf)
            buf, size = [], 0
    if buf:
        yield "".join(buf)


def split_records(
    source: Union[str, Iterable[str]], n_records: int
) -> Iterator[str]:
    """Yield blocks of exactly ``n_records`` records (last may be short)."""
    if n_records < 1:
        raise OptionsError(f"-N must be >= 1, got {n_records}")
    buf: list[str] = []
    for record in iter_lines(source):
        buf.append(record)
        if len(buf) == n_records:
            yield "".join(buf)
            buf = []
    if buf:
        yield "".join(buf)
