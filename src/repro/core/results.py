"""Result persistence and retention: ``--results`` trees, bounded windows.

GNU Parallel's ``--results mydir`` stores, for each job, files::

    mydir/1/<value of source 1>/[2/<value of source 2>/...]/stdout
    .../stderr
    .../seq

(the numbered level names the input source, the next level its value).
We reproduce that layout so downstream tooling written against GNU
Parallel result trees works unchanged.  Values are sanitized for path
safety (``/`` → ``_``), a divergence GNU Parallel handles with encoding;
documented here for clarity.

This module also owns :func:`retention_buffer`, the in-memory half of
the streaming result plane: at million-job scale (the paper's regime)
the coordinator must not hold every :class:`JobResult` — durable records
belong to the joblog/``--results``/metrics sinks, and the in-memory
window is a bounded deque unless the caller opts into full retention.
"""

from __future__ import annotations

import os
import re
import threading
from collections import deque
from typing import MutableSequence

from repro.core.job import JobResult

__all__ = ["ResultsWriter", "result_dir_for", "retention_buffer"]


def retention_buffer(keep: "int | None") -> MutableSequence[JobResult]:
    """The in-memory results window for one run.

    ``keep=None`` (full retention, ``--keep-results all``) returns a
    plain list; an integer returns a ``deque(maxlen=keep)`` that evicts
    the oldest result on overflow — coordinator RSS then scales with the
    window, not the job count.  ``RunSummary.record`` counts evictions.
    """
    if keep is None:
        return []
    if keep < 0:
        raise ValueError(f"retention bound must be >= 0, got {keep}")
    return deque(maxlen=keep)

_UNSAFE = re.compile(r"[/\x00]")


def _sanitize(value: str) -> str:
    """Make an input value usable as a single path component."""
    out = _UNSAFE.sub("_", value)
    return out if out not in ("", ".", "..") else f"_{out}_"


def result_dir_for(root: str, args: tuple[str, ...]) -> str:
    """The per-job directory for an argument group under ``root``."""
    parts: list[str] = [root]
    for i, value in enumerate(args, start=1):
        parts.append(str(i))
        parts.append(_sanitize(value))
    return os.path.join(*parts)


class ResultsWriter:
    """Writes the per-job stdout/stderr/seq files.  Thread-safe."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()

    def write(self, result: JobResult) -> str:
        """Persist one job's capture; returns the job's directory."""
        job_dir = result_dir_for(self.root, result.args)
        with self._lock:
            os.makedirs(job_dir, exist_ok=True)
        with open(os.path.join(job_dir, "stdout"), "w", encoding="utf-8") as fh:
            fh.write(result.stdout)
        with open(os.path.join(job_dir, "stderr"), "w", encoding="utf-8") as fh:
            fh.write(result.stderr)
        with open(os.path.join(job_dir, "seq"), "w", encoding="utf-8") as fh:
            fh.write(f"{result.seq}\n")
        return job_dir
