"""Input sources for the engine: ``:::``, ``::::``, stdin, links, queues.

GNU Parallel composes multiple input sources into a stream of *argument
groups* (one value per source, all combinations by default).  This module
reproduces those semantics:

* :func:`from_items` — one in-memory source.
* :func:`from_file` — one line per argument (``::::`` / ``-a``).
* :func:`combine` — cartesian product of several sources (``::: a b ::: 1 2``
  yields ``a 1``, ``a 2``, ``b 1``, ``b 2``) with GNU Parallel's ordering:
  the *last* source varies fastest.
* :func:`link` — zipped sources (``--link`` / ``:::+``); shorter sources
  wrap around, as GNU Parallel does.
* :func:`shuffled` — ``--shuf`` with a deterministic seed.
* :class:`QueueSource` — a live, appendable source reproducing the paper's
  ``tail -n+0 -f q.proc | parallel ...`` idiom (§IV-A): the engine keeps
  consuming as producers append, until :meth:`QueueSource.close`.

All sources yield ``tuple[str, ...]`` argument groups.  The *first* source
may be an unbounded iterator (streamed); sources after the first are
materialized, matching GNU Parallel (it reads later sources fully before
starting).
"""

from __future__ import annotations

import itertools
import os
import queue as _queue
import random
import threading
from typing import Iterable, Iterator, Sequence

from repro.errors import InputSourceError

__all__ = [
    "ArgGroup",
    "ceil_div",
    "from_items",
    "from_file",
    "combine",
    "link",
    "shuffled",
    "QueueSource",
    "group_args",
]

ArgGroup = tuple[str, ...]


def ceil_div(n: int, d: int) -> int:
    """``ceil(n / d)`` in exact integer arithmetic.

    The one shared spelling for every "how many groups of ``d`` cover
    ``n``" computation — ``-n/--max-args`` job totals, ``-j N%`` slot
    counts — so the short-final-group rounding cannot drift between call
    sites.
    """
    return -(-n // d)


def _coerce(value: object) -> str:
    """Input values are stringified exactly once, at the source boundary."""
    return value if isinstance(value, str) else str(value)


def from_items(items: Iterable[object]) -> Iterator[ArgGroup]:
    """A single source: each item becomes a one-element argument group."""
    for item in items:
        yield (_coerce(item),)


def from_file(path: str | os.PathLike, strip: bool = True) -> Iterator[ArgGroup]:
    """One argument group per line of ``path`` (GNU Parallel ``::::``).

    Trailing newlines are always removed; ``strip`` additionally removes
    surrounding whitespace.  Empty lines are skipped, as GNU Parallel does
    with its default ``--no-run-if-empty`` behaviour off — we follow the
    common expectation and skip blanks (documented divergence: real GNU
    Parallel runs empty lines unless ``--no-run-if-empty``).
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if strip:
                line = line.strip()
            if line:
                yield (line,)


def combine(sources: Sequence[Iterable[object]]) -> Iterator[ArgGroup]:
    """Cartesian product of sources; the last source varies fastest.

    The first source may be unbounded (it is streamed); the rest are
    materialized.
    """
    if not sources:
        raise InputSourceError("combine() needs at least one source")
    first, rest = sources[0], [list(s) for s in sources[1:]]
    for r in rest:
        if not r:
            return  # empty source => empty product
    for head in first:
        head_s = _coerce(head)
        if not rest:
            yield (head_s,)
        else:
            for tail in itertools.product(*rest):
                yield (head_s, *map(_coerce, tail))


def link(sources: Sequence[Iterable[object]]) -> Iterator[ArgGroup]:
    """Zip sources together (``--link``); shorter sources wrap around.

    The overall length equals the longest source's length, with shorter
    sources recycled — exactly GNU Parallel's ``--link`` behaviour.  The
    first source may be unbounded only if it is the longest (we stream the
    first source and cycle the others).
    """
    if not sources:
        raise InputSourceError("link() needs at least one source")
    rest = [list(s) for s in sources[1:]]
    for r in rest:
        if not r:
            raise InputSourceError("--link with an empty source")
    first_list = list(sources[0])
    if not first_list:
        raise InputSourceError("--link with an empty source")
    longest = max(len(first_list), *(len(r) for r in rest)) if rest else len(first_list)
    for i in range(longest):
        group = [first_list[i % len(first_list)]]
        group.extend(r[i % len(r)] for r in rest)
        yield tuple(map(_coerce, group))


def shuffled(source: Iterable[object], seed: int | None = None) -> list[ArgGroup]:
    """Materialize and shuffle a source (``--shuf``), deterministically.

    ``seed=None`` uses a fixed default (0) rather than OS entropy so runs
    are reproducible by default; pass an explicit seed to vary.  Returns
    the shuffled *list* — shuffling necessarily materializes, and handing
    the list back lets the scheduler read ``len()`` for ``--eta``/halt
    totals without a second materialization pass.
    """
    groups = [g if isinstance(g, tuple) else (_coerce(g),) for g in source]
    rng = random.Random(0 if seed is None else seed)
    rng.shuffle(groups)
    return groups


class QueueSource:
    """A live input source: producers append, the engine consumes.

    Reproduces ``tail -n+0 -f q.proc | parallel`` from the paper's
    fetch-process workflow: the consumer blocks awaiting new entries and
    only stops when the producer calls :meth:`close`.

    Thread-safe; usable simultaneously from producer threads and the
    engine's dispatcher thread.
    """

    _CLOSE = object()

    def __init__(self):
        self._q: _queue.Queue = _queue.Queue()
        self._closed = threading.Event()

    def put(self, item: object) -> None:
        """Append one input item (one argument group)."""
        if self._closed.is_set():
            raise InputSourceError("put() on a closed QueueSource")
        self._q.put((_coerce(item),))

    def close(self) -> None:
        """Signal end-of-input; the engine drains what remains then stops."""
        if not self._closed.is_set():
            self._closed.set()
            self._q.put(self._CLOSE)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed.is_set()

    def __iter__(self) -> Iterator[ArgGroup]:
        while True:
            item = self._q.get()
            if item is self._CLOSE:
                return
            yield item


def group_args(source: Iterable[ArgGroup], n: int) -> Iterator[ArgGroup]:
    """Pack ``n`` consecutive single-argument groups into one job's group.

    GNU Parallel ``-n/--max-args``: ``parallel -n 3 cmd ::: a b c d e``
    runs ``cmd a b c`` then ``cmd d e``.  Multi-source groups pass through
    untouched (GNU Parallel likewise ignores -n with linked/crossed
    sources' positional semantics).
    """
    if n < 1:
        raise InputSourceError(f"-n/--max-args must be >= 1, got {n}")
    buf: list[str] = []
    for group in source:
        if len(group) != 1:
            if buf:
                yield tuple(buf)
                buf = []
            yield group
            continue
        buf.append(group[0])
        if len(buf) == n:
            yield tuple(buf)
            buf = []
    if buf:
        yield tuple(buf)


def normalize(source: Iterable[object]) -> Iterator[ArgGroup]:
    """Accept raw items or pre-built argument groups; yield argument groups.

    Strings are treated as single arguments (never iterated char-by-char);
    tuples pass through as multi-source groups; everything else is
    stringified.
    """
    for item in source:
        if isinstance(item, tuple):
            yield tuple(_coerce(v) for v in item)
        else:
            yield (_coerce(item),)
