"""Public engine API: the :class:`Parallel` class and helpers.

Typical uses::

    from repro import Parallel

    # Shell commands, GNU Parallel style
    summary = Parallel("gzip {}", jobs=8).run(files)

    # Multiple input sources (::: a b ::: 1 2)
    summary = Parallel("convert {1} -scale {2}% {1.}_{2}.png").run_sources(
        [files, ["25", "50"]]
    )

    # Python callables ("last-mile parallelizing driver")
    summary = Parallel(process_record, jobs=32).run(records)

    # Streaming queue input (the paper's fetch-process idiom)
    q = QueueSource()
    ...  # a producer thread q.put()s timestamps and finally q.close()s
    summary = Parallel(consume, jobs=8).run(q)
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.backends.base import Backend
from repro.core.backends.callable_backend import CallableBackend
from repro.core.backends.local import LocalShellBackend
from repro.core.inputs import combine, link
from repro.core.job import JobResult, RunSummary
from repro.core.options import Options
from repro.core.scheduler import run_scheduler
from repro.core.template import CommandTemplate

__all__ = ["Parallel", "run_parallel"]

CommandLike = Union[str, Sequence[str], Callable[..., object]]


class Parallel:
    """A configured engine instance, reusable across runs.

    Parameters
    ----------
    command:
        A shell-command template string (GNU Parallel replacement strings
        supported), an argv-list template, or a Python callable.
    backend:
        Override the execution backend; defaults to
        :class:`LocalShellBackend` for command templates and
        :class:`CallableBackend` for callables.
    output:
        A writable text stream for job output (e.g. ``sys.stdout``) or a
        callback ``(JobResult, formatted_text) -> None``; None collects
        results silently.
    **option_fields:
        Any :class:`~repro.core.options.Options` field (``jobs``,
        ``keep_order``, ``halt``, ``retries``, ...).
    """

    def __init__(
        self,
        command: CommandLike,
        backend: Optional[Backend] = None,
        output: object = None,
        options: Optional[Options] = None,
        progress: Optional[Callable[..., None]] = None,
        **option_fields,
    ):
        if options is not None and option_fields:
            raise TypeError("pass either options= or keyword option fields, not both")
        self.options = options if options is not None else Options(**option_fields)
        self._progress = progress
        self._command = command
        if callable(command) and not isinstance(command, (str, list, tuple)):
            self.template: Optional[CommandTemplate] = None
            if backend == "processes":
                # CPU-bound Python: escape the GIL with worker processes.
                from repro.core.backends.multiprocess import MultiprocessBackend

                backend = MultiprocessBackend(command)
            self._default_backend: Backend | None = backend or CallableBackend(command)
        else:
            self.template = CommandTemplate(command)  # type: ignore[arg-type]
            self._default_backend = backend
        self._output = output

    # -- running -------------------------------------------------------------
    def run(self, inputs: Iterable[object]) -> RunSummary:
        """Run one job per input item (a single input source)."""
        return self._run(inputs)

    def run_sources(self, sources: Sequence[Iterable[object]]) -> RunSummary:
        """Run over multiple input sources (``:::`` ... ``:::`` ...).

        Crossed (cartesian product) by default; zipped when the engine was
        configured with ``link=True``.
        """
        groups = link(sources) if self.options.link else combine(sources)
        return self._run(groups)

    def pipe(
        self,
        source: object,
        block_size: int = 1 << 20,
        n_records: Optional[int] = None,
    ) -> RunSummary:
        """GNU Parallel ``--pipe``: feed blocks of ``source`` to jobs' stdin.

        ``source`` is a string or an iterable of lines.  Blocks are built
        from whole records: ``n_records`` lines per job when given
        (``-N n``), otherwise ~``block_size`` bytes per job (``--block``).
        The command line is *not* substituted with the block; ``{#}`` and
        ``{%}`` still work::

            Parallel("wc -l").pipe(huge_text, block_size=1 << 20)
        """
        import dataclasses

        from repro.core.pipemode import split_blocks, split_records

        if self.template is None:
            raise TypeError("pipe mode needs a command template, not a callable")
        blocks = (
            split_records(source, n_records)
            if n_records is not None
            else split_blocks(source, block_size)
        )
        options = dataclasses.replace(self.options, pipe_mode=True)
        template = CommandTemplate(self._command, implicit_append=False)  # type: ignore[arg-type]
        backend = self._make_backend(template=template)
        return run_scheduler(
            template, blocks, self._scheduler_options(options, backend),
            backend, self._make_emit(), progress=self._progress,
        )

    def map(self, inputs: Iterable[object]) -> list[object]:
        """Callable-backend convenience: return values in input order.

        Raises :class:`RuntimeError` if any job failed, with the first
        failure's traceback attached.
        """
        options = self.options
        if options.keep_results == "auto":
            # map() hands back every return value, so the default bounded
            # retention window must widen to the whole run; an explicit
            # --keep-results is honoured (and truncates, documented).
            import dataclasses

            options = dataclasses.replace(options, keep_results="all")
        summary = self._run(inputs, options=options)
        if summary.n_failed:
            first_bad = next(r for r in summary.sorted_results() if not r.ok)
            raise RuntimeError(
                f"{summary.n_failed} job(s) failed; first failure (seq "
                f"{first_bad.seq}):\n{first_bad.stderr}"
            )
        return [r.value for r in summary.sorted_results()]

    def _run(
        self, source: Iterable[object], options: Optional[Options] = None
    ) -> RunSummary:
        backend = self._make_backend()
        emit = self._make_emit()
        options = options if options is not None else self.options
        return run_scheduler(
            self.template, source, self._scheduler_options(options, backend),
            backend, emit, progress=self._progress,
        )

    # -- plumbing ------------------------------------------------------------
    def _make_backend(self, template: Optional[CommandTemplate] = None) -> Backend:
        if self._default_backend is not None:
            return self._fresh_backend(self._default_backend)
        if self.options.remote:
            from repro.errors import OptionsError
            from repro.remote import LocalTransport, RemoteBackend

            tmpl = template if template is not None else self.template
            if tmpl is None:
                raise OptionsError(
                    "-S/--sshlogin requires a command template, not a callable"
                )
            return RemoteBackend.from_options(
                self.options, transport=LocalTransport(), template=tmpl
            )
        return LocalShellBackend()

    @staticmethod
    def _scheduler_options(options: Options, backend: Backend) -> Options:
        """Remote runs: the scheduler's concurrency is the roster's total.

        ``-j`` means slots *per host* under ``-S`` (GNU Parallel), so the
        dispatch cap becomes the sum of per-host slots, read off the
        backend (or a fault-injecting wrapper's inner backend).
        """
        total = getattr(backend, "total_slots", None)
        if total is None:
            total = getattr(getattr(backend, "inner", None), "total_slots", None)
        if total is None or total == options.jobs:
            return options
        import dataclasses

        return dataclasses.replace(options, jobs=total)

    @classmethod
    def _fresh_backend(cls, backend: Backend) -> Backend:
        # Backends are single-run (they track in-flight processes and
        # cancellation); recreate stateful defaults per run where we own
        # them.  Fault-injecting wrappers are refreshed recursively so a
        # reused engine does not inherit a cancelled inner backend.
        from repro.faults.backend import FaultyBackend
        from repro.remote.backend import RemoteBackend

        if isinstance(backend, LocalShellBackend):
            return LocalShellBackend(shell=backend.shell)
        if isinstance(backend, CallableBackend):
            return CallableBackend(backend.func)
        if isinstance(backend, RemoteBackend):
            return backend.renew()
        if isinstance(backend, FaultyBackend):
            # Reset in place (not a copy) so the caller's handle keeps
            # seeing the injected-fault counters after the run.
            backend.inner = cls._fresh_backend(backend.inner)
            backend.reset()
            return backend
        return backend

    def _make_emit(self):
        out = self._output
        if out is None:
            return None
        if callable(out) and not hasattr(out, "write"):
            return out

        def emit(result: JobResult, text: str) -> None:
            if text:
                out.write(text)
                if not text.endswith("\n"):
                    out.write("\n")
            if result.stderr and out is sys.stdout:
                sys.stderr.write(result.stderr)

        return emit


def run_parallel(
    command: CommandLike, inputs: Iterable[object], **option_fields
) -> RunSummary:
    """One-shot convenience: ``run_parallel("echo {}", items, jobs=4)``."""
    return Parallel(command, **option_fields).run(inputs)
