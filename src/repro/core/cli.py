"""``pyparallel`` — a GNU Parallel-compatible command-line front end.

Supports the paper's usage patterns, e.g.::

    pyparallel -j128 ./payload.sh {} :::: inputs.txt
    pyparallel -j8 'HIP_VISIBLE_DEVICES=$(({%} - 1)) celer-sim {}' ::: *.inp.json
    pyparallel -j36 python3 ./darshan_arch.py ::: $(seq 1 12) ::: 0 1 2
    cat files.txt | pyparallel -j32 rsync -R -Ha {} /dest/

Input-source separators: ``:::`` (literal args), ``::::`` (arg files),
``:::+`` (linked literal args).  With no separator, newline-separated
arguments are read from stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.engine import Parallel
from repro.core.inputs import combine, from_file, link
from repro.core.options import DEFAULT_JOBS, Options
from repro.errors import OptionsError, ReproError

__all__ = ["main", "build_arg_parser", "split_command_line"]

SEPARATORS = (":::", "::::", ":::+")


def build_arg_parser() -> argparse.ArgumentParser:
    """The option parser for everything left of the first separator."""
    p = argparse.ArgumentParser(
        prog="pyparallel",
        description="Run commands in parallel (GNU Parallel work-alike).",
    )
    p.add_argument("-j", "--jobs", default=str(DEFAULT_JOBS),
                   help="concurrent jobs: N, 0 (all at once), +N, -N, or N%%")
    p.add_argument("-k", "--keep-order", action="store_true",
                   help="emit output in input order")
    p.add_argument("--halt", default="never",
                   help="halt policy, e.g. now,fail=1 or soon,fail=30%%")
    p.add_argument("--retries", type=int, default=0,
                   help="run failing jobs up to N times in total")
    p.add_argument("--retry-delay", type=float, default=0.0, metavar="SECS",
                   dest="retry_delay",
                   help="base delay before re-running a failed job "
                        "(exponential backoff with jitter)")
    # Chaos testing only: a JSON FaultPlan (inline or a file path) wrapped
    # around the shell backend.  Hidden — not part of the GNU Parallel CLI.
    p.add_argument("--fault-plan", default=None, dest="fault_plan",
                   help=argparse.SUPPRESS)
    p.add_argument("--timeout", default=None,
                   help="per-job timeout: seconds, or N%% of median runtime")
    p.add_argument("--pipe", action="store_true",
                   help="split stdin into blocks fed to jobs' standard input")
    p.add_argument("--block", type=int, default=1 << 20, metavar="BYTES",
                   help="target block size for --pipe (default 1M)")
    p.add_argument("-N", "--max-replace-args", type=int, default=None,
                   metavar="N", help="records per block in --pipe mode")
    p.add_argument("-n", "--max-args", type=int, default=None, metavar="N",
                   help="arguments per job (packed into {1}..{N})")
    p.add_argument("--colsep", default=None, metavar="REGEX",
                   help="split input lines into columns on REGEX ({1}, {2}, ...)")
    p.add_argument("--load", type=float, default=None, dest="max_load",
                   help="do not start jobs while 1-min load average exceeds this")
    p.add_argument("--memfree", type=int, default=None, metavar="BYTES",
                   help="do not start jobs while available memory is below this")
    # Engine extensions (not GNU Parallel flags): dispatch-pool tunables.
    p.add_argument("--pool-prestart", action="store_true", dest="pool_prestart",
                   help="start all worker threads up front instead of "
                        "growing the pool lazily")
    p.add_argument("--joblog-flush-every", type=int, default=32, metavar="N",
                   dest="joblog_flush_every",
                   help="flush the joblog every N records (default 32; "
                        "1 = every record)")
    p.add_argument("--throttle-poll-max", type=float, default=0.25,
                   metavar="SECS", dest="throttle_poll_max",
                   help="cap for the exponential --load/--memfree poll "
                        "interval (default 0.25s)")
    # Observability (engine extensions): structured run tracing/metrics.
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome/Perfetto trace_event JSON trace of "
                        "the run (open in chrome://tracing or ui.perfetto.dev)")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="write a newline-JSON metrics log (queue depth, slot "
                        "occupancy, throughput EWMA, ...)")
    p.add_argument("--metrics-interval", type=float, default=1.0,
                   metavar="SECS", dest="metrics_interval",
                   help="seconds between metrics samples (default 1.0)")
    p.add_argument("--bar", action="store_true",
                   help="show a progress bar on stderr")
    p.add_argument("-q", "--quote", action="store_true",
                   help="shell-quote substituted input values")
    p.add_argument("--delay", type=float, default=0.0,
                   help="minimum seconds between job starts")
    p.add_argument("--dry-run", action="store_true",
                   help="print commands without running them")
    p.add_argument("--tag", action="store_true",
                   help="prefix output lines with the input arguments")
    p.add_argument("--tagstring", default=None,
                   help="custom tag template (implies --tag)")
    p.add_argument("--shuf", action="store_true",
                   help="shuffle the input order (deterministic seed)")
    p.add_argument("--seed", type=int, default=None, help="seed for --shuf")
    p.add_argument("--joblog", default=None, help="write a GNU Parallel joblog")
    p.add_argument("--resume", action="store_true",
                   help="skip inputs already successful in --joblog")
    p.add_argument("--resume-failed", action="store_true",
                   help="like --resume but re-run previous failures")
    p.add_argument("--results", default=None,
                   help="directory for per-job stdout/stderr trees")
    p.add_argument("-u", "--ungroup", action="store_true",
                   help="stream output unbuffered")
    p.add_argument("--linebuffer", "--lb", action="store_true",
                   dest="linebuffer",
                   help="stream each job's output line-by-line as it is "
                        "produced (lines from different jobs may interleave)")
    # Engine extension: which process-spawn implementation the local
    # backend uses (posix_spawn fast path vs. subprocess.Popen).
    p.add_argument("--spawn-path", default="auto", dest="spawn_path",
                   choices=("auto", "posix", "popen"),
                   help="local process-spawn path: auto (default; posix_spawn "
                        "where supported), posix, or popen")
    # Engine extension: shard the local dispatch loop over N spawner
    # worker processes (lifts the single-dispatcher launch-rate ceiling).
    p.add_argument("--dispatchers", default="auto", dest="dispatchers",
                   metavar="auto|N",
                   help="dispatcher shards for the local backend: auto "
                        "(default; one in-process dispatcher) or N worker "
                        "processes fed from one sharded queue; output is "
                        "byte-identical either way")
    # Engine extension: spawn/result frame size for sharded dispatch —
    # the control-plane amortization knob.
    p.add_argument("--rpc-batch", default="auto", dest="rpc_batch",
                   metavar="auto|N",
                   help="records per shard RPC frame with --dispatchers: "
                        "auto (default; adapts to -j) or N >= 1 "
                        "(1 = ship every record immediately)")
    # Engine extension: in-memory result retention window.
    p.add_argument("--keep-results", default="auto", dest="keep_results",
                   metavar="N|all",
                   help="in-memory results kept on the run summary: N, "
                        "all (unbounded), or auto (default; a bounded "
                        "window — joblog/results/metrics sinks remain "
                        "the durable record)")
    p.add_argument("--link", action="store_true",
                   help="link (zip) input sources instead of crossing them")
    p.add_argument("--wd", "--workdir", dest="workdir", default=None,
                   help="working directory for jobs ('...' = a unique "
                        "per-run directory, removed afterwards)")
    # Remote execution (GNU Parallel --sshlogin family).
    p.add_argument("-S", "--sshlogin", action="append", default=[],
                   dest="sshlogin", metavar="[N/]HOST,...",
                   help="run jobs on these hosts (repeatable; N/host sets "
                        "the host's slot count, ':' is the local machine); "
                        "-j then means slots per host")
    p.add_argument("--sshloginfile", "--slf", default=None, metavar="FILE",
                   dest="sshloginfile",
                   help="read sshlogins from FILE (one per line, # comments)")
    p.add_argument("--transferfile", "--trc", action="append", default=[],
                   dest="transfer_files", metavar="TMPL",
                   help="stage this file to the executing host per job "
                        "(replacement strings supported; repeatable)")
    p.add_argument("--return", action="append", default=[],
                   dest="return_files", metavar="TMPL",
                   help="fetch this file back from the host after the job "
                        "(repeatable)")
    p.add_argument("--cleanup", action="store_true",
                   help="remove transferred and returned files from the "
                        "host after each job")
    p.add_argument("--basefile", action="append", default=[],
                   dest="basefiles", metavar="FILE",
                   help="stage this file once per host per run (repeatable)")
    p.add_argument("--ban-after", type=int, default=3, metavar="N",
                   dest="ban_after",
                   help="ban a host after N consecutive transport failures "
                        "(engine extension; default 3)")
    p.add_argument("--staging-cache", choices=("on", "off"), default="on",
                   dest="staging_cache",
                   help="content-addressed staging dedup: never re-push a "
                        "file already on a host this run, defer --cleanup "
                        "to the last referencing job (engine extension; "
                        "default on)")
    p.add_argument("--stage-ahead", type=int, default=0, metavar="N",
                   dest="stage_ahead",
                   help="prefetch stage-in for up to N queued jobs before "
                        "a slot frees, off the dispatch critical path "
                        "(engine extension; default 0 = synchronous)")
    p.add_argument("--nice", type=int, default=None,
                   help="niceness for spawned jobs")
    p.add_argument("-a", "--arg-file", action="append", default=[],
                   metavar="FILE", help="read arguments from FILE (repeatable)")
    p.add_argument("command", nargs=argparse.REMAINDER,
                   help="command template (replacement strings supported)")
    return p


def split_command_line(
    argv: Sequence[str],
) -> tuple[list[str], list[tuple[str, list[str]]]]:
    """Split argv into (head, sources).

    ``head`` is everything before the first separator (options + command);
    ``sources`` is a list of (separator, tokens) chunks.
    """
    head: list[str] = []
    sources: list[tuple[str, list[str]]] = []
    current: Optional[list[str]] = None
    for token in argv:
        if token in SEPARATORS:
            current = []
            sources.append((token, current))
        elif current is not None:
            current.append(token)
        else:
            head.append(token)
    return head, sources


def _build_input(
    sources: list[tuple[str, list[str]]],
    arg_files: list[str],
    use_link: bool,
    stdin,
):
    """Materialize the run's input stream from separators/files/stdin."""
    lists: list[list[str]] = []
    linked = use_link
    for sep, tokens in sources:
        if sep == ":::":
            lists.append(tokens)
        elif sep == ":::+":
            linked = True
            lists.append(tokens)
        else:  # '::::'
            for path in tokens:
                lists.append([g[0] for g in from_file(path)])
    for path in arg_files:
        lists.append([g[0] for g in from_file(path)])
    if not lists:
        return (line.rstrip("\n") for line in stdin), False
    if len(lists) == 1:
        return lists[0], linked
    return (link(lists) if linked else combine(lists)), linked


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``pyparallel`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    head, sources = split_command_line(argv)
    parser = build_arg_parser()
    ns = parser.parse_args(head)
    if not ns.command:
        parser.error("no command template given")

    try:
        options = Options(
            jobs=ns.jobs,
            keep_order=ns.keep_order,
            halt=ns.halt,
            retries=ns.retries,
            timeout=ns.timeout,
            delay=ns.delay,
            dry_run=ns.dry_run,
            tag=ns.tag,
            tagstring=ns.tagstring,
            shuf=ns.shuf,
            seed=ns.seed,
            joblog=ns.joblog,
            resume=ns.resume,
            resume_failed=ns.resume_failed,
            results=ns.results,
            ungroup=ns.ungroup,
            link=ns.link,
            workdir=ns.workdir,
            nice=ns.nice,
            spawn_path=ns.spawn_path,
            dispatchers=ns.dispatchers,
            rpc_batch=ns.rpc_batch,
            keep_results=ns.keep_results,
            linebuffer=ns.linebuffer,
            colsep=ns.colsep,
            max_load=ns.max_load,
            memfree=ns.memfree,
            quote=ns.quote,
            max_args=ns.max_args,
            retry_delay=ns.retry_delay,
            pool_prestart=ns.pool_prestart,
            joblog_flush_every=ns.joblog_flush_every,
            throttle_poll_max=ns.throttle_poll_max,
            trace=ns.trace,
            metrics=ns.metrics,
            metrics_interval=ns.metrics_interval,
            sshlogin=ns.sshlogin,
            sshloginfile=ns.sshloginfile,
            transfer_files=ns.transfer_files,
            return_files=ns.return_files,
            cleanup=ns.cleanup,
            basefiles=ns.basefiles,
            ban_after=ns.ban_after,
            staging_cache=(ns.staging_cache == "on"),
            stage_ahead=ns.stage_ahead,
        )
        if ns.fault_plan and options.remote:
            raise OptionsError(
                "--fault-plan applies to the local backend; combine "
                "FaultyTransport with the remote API instead"
            )
        command = " ".join(ns.command) if len(ns.command) > 1 else ns.command[0]
        progress = None
        if ns.bar:
            from repro.core.progress import ProgressBar

            progress = ProgressBar(sys.stderr)
        backend = None
        if ns.fault_plan:
            from repro.core.backends.local import LocalShellBackend
            from repro.faults import FaultPlan, FaultyBackend

            backend = FaultyBackend(LocalShellBackend(), FaultPlan.load(ns.fault_plan))
        engine = Parallel(command, backend=backend, output=sys.stdout,
                          options=options, progress=progress)
        if ns.pipe:
            summary = engine.pipe(
                sys.stdin, block_size=ns.block, n_records=ns.max_replace_args
            )
        else:
            inputs, _linked = _build_input(sources, ns.arg_file, ns.link, sys.stdin)
            summary = engine.run(inputs)
    except ReproError as exc:
        print(f"pyparallel: error: {exc}", file=sys.stderr)
        return 255
    if summary.halted:
        print(f"pyparallel: {summary.halt_reason}", file=sys.stderr)
    return summary.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
