"""Output grouping, ordering (``--keep-order``) and tagging (``--tag``).

GNU Parallel buffers each job's output and emits it as a unit when the job
finishes ("grouping"); with ``-k`` it additionally holds completed output
until all earlier-sequence jobs have emitted.  :class:`OutputSequencer`
implements that hold-and-release logic as pure, backend-agnostic code so
both the real and simulated schedulers share it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional

from repro.core.job import JobResult
from repro.core.options import Options
from repro.core.template import CommandTemplate

__all__ = ["OutputSequencer", "format_output"]


@lru_cache(maxsize=64)
def _tag_template(tagstring: str) -> CommandTemplate:
    # Parsing the --tagstring template per emitted result was a per-job
    # cost; a run uses one tagstring, so the cache is effectively a
    # parse-once.
    return CommandTemplate(tagstring, implicit_append=False)


def format_output(result: JobResult, options: Options) -> str:
    """Render one job's stdout per the tagging options.

    ``--tag`` prefixes every line with the input arguments (tab-joined);
    ``--tagstring`` uses a replacement-string template instead.
    """
    text = result.stdout
    if not options.tag:
        return text
    if options.tagstring:
        tag = _tag_template(options.tagstring).render(
            result.args, seq=result.seq, slot=result.slot
        )
    else:
        tag = "\t".join(result.args)
    if not text:
        return ""
    lines = text.splitlines(keepends=True)
    return "".join(f"{tag}\t{line}" for line in lines)


class OutputSequencer:
    """Emit job outputs, optionally in input (sequence) order.

    ``emit`` is called once per job with the formatted text.  With
    ``keep_order`` False, emission happens on push; with True, results are
    held until every lower sequence number has been pushed (or declared
    skipped via :meth:`skip`).
    """

    def __init__(
        self,
        emit: Callable[[JobResult, str], None],
        options: Options,
        keep_order: Optional[bool] = None,
    ):
        self._emit = emit
        self._options = options
        self._keep = options.keep_order if keep_order is None else keep_order
        self._next_seq = 1
        self._held: dict[int, JobResult] = {}
        self._skipped: set[int] = set()

    def skip(self, seq: int) -> None:
        """Declare a sequence number that will never produce output."""
        self._skipped.add(seq)
        if self._keep:
            self._flush()

    def push(self, result: JobResult) -> None:
        """Offer one finished job's result for emission."""
        if not self._keep:
            self._emit(result, format_output(result, self._options))
            return
        self._held[result.seq] = result
        self._flush()

    def _flush(self) -> None:
        while True:
            if self._next_seq in self._skipped:
                self._skipped.discard(self._next_seq)
                self._next_seq += 1
                continue
            result = self._held.pop(self._next_seq, None)
            if result is None:
                return
            self._emit(result, format_output(result, self._options))
            self._next_seq += 1

    @property
    def pending(self) -> int:
        """Number of results held back waiting for earlier sequences."""
        return len(self._held)
