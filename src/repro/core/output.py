"""Output grouping, ordering (``--keep-order``) and tagging (``--tag``).

GNU Parallel buffers each job's output and emits it as a unit when the job
finishes ("grouping"); with ``-k`` it additionally holds completed output
until all earlier-sequence jobs have emitted.  :class:`OutputSequencer`
implements that hold-and-release logic as pure, backend-agnostic code so
both the real and simulated schedulers share it.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Callable, Optional

from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options
from repro.core.template import CommandTemplate

__all__ = ["OutputSequencer", "format_output"]


@lru_cache(maxsize=64)
def _tag_template(tagstring: str) -> CommandTemplate:
    # Parsing the --tagstring template per emitted result was a per-job
    # cost; a run uses one tagstring, so the cache is effectively a
    # parse-once.
    return CommandTemplate(tagstring, implicit_append=False)


def _render_tag(
    args: tuple[str, ...], seq: int, slot: int, options: Options
) -> Optional[str]:
    """The ``--tag``/``--tagstring`` line prefix for one job (None = untagged)."""
    if not options.tag:
        return None
    if options.tagstring:
        return _tag_template(options.tagstring).render(args, seq=seq, slot=slot)
    return "\t".join(args)


def _tag_lines(text: str, tag: str) -> str:
    return "".join(
        f"{tag}\t{line}" for line in text.splitlines(keepends=True)
    )


def format_output(result: JobResult, options: Options) -> str:
    """Render one job's stdout per the tagging options.

    ``--tag`` prefixes every line with the input arguments (tab-joined);
    ``--tagstring`` uses a replacement-string template instead.
    """
    text = result.stdout
    tag = _render_tag(result.args, result.seq, result.slot, options)
    if tag is None:
        return text
    if not text:
        return ""
    return _tag_lines(text, tag)


class OutputSequencer:
    """Emit job outputs, optionally in input (sequence) order.

    ``emit`` is called once per job with the formatted text.  With
    ``keep_order`` False, emission happens on push; with True, results are
    held until every lower sequence number has been pushed (or declared
    skipped via :meth:`skip`).
    """

    def __init__(
        self,
        emit: Callable[[JobResult, str], None],
        options: Options,
        keep_order: Optional[bool] = None,
    ):
        self._emit = emit
        self._options = options
        self._keep = options.keep_order if keep_order is None else keep_order
        self._next_seq = 1
        self._held: dict[int, JobResult] = {}
        self._skipped: set[int] = set()
        #: Sequence numbers whose stdout already went out incrementally
        #: (``--linebuffer`` streaming); their push suppresses the buffered
        #: re-emission.  Guarded by ``_emit_lock`` — stream callbacks run
        #: on a backend reaper thread, pushes on the scheduler thread.
        self._streamed: set[int] = set()
        self._emit_lock = threading.Lock()

    def stream_for(self, job: Job, slot: int = 0) -> Optional[Callable[[str], None]]:
        """An incremental stdout emitter for one dispatched job, or None.

        Streaming engages only when it cannot violate ordering guarantees:
        ``--linebuffer`` without ``--keep-order`` (with ``-k`` output stays
        whole-job-buffered, GNU Parallel's ``--group`` approximation).  The
        returned callback receives complete-line text chunks as the job
        produces them — safe to call from a backend's reaper thread; tags
        are applied per line, and the job's buffered stdout is suppressed
        when its result is eventually pushed.
        """
        if not self._options.linebuffer or self._keep:
            return None
        tag = _render_tag(job.args, job.seq, slot, self._options)
        #: A stand-in result for mid-job emission: emit callbacks receive
        #: it instead of the (not-yet-existing) final JobResult.
        partial = JobResult(
            seq=job.seq, args=job.args, command=job.command,
            exit_code=0, slot=slot, state=JobState.RUNNING,
        )
        seq = job.seq

        def stream(text: str) -> None:
            if not text:
                return
            if tag is not None:
                text = _tag_lines(text, tag)
            with self._emit_lock:
                self._streamed.add(seq)
                self._emit(partial, text)

        return stream

    def skip(self, seq: int) -> None:
        """Declare a sequence number that will never produce output."""
        self._skipped.add(seq)
        if self._keep:
            self._flush()

    def push(self, result: JobResult) -> None:
        """Offer one finished job's result for emission."""
        if not self._keep:
            streamed = result.seq in self._streamed
            if streamed:
                self._streamed.discard(result.seq)
            text = "" if streamed else format_output(result, self._options)
            with self._emit_lock:
                self._emit(result, text)
            return
        self._held[result.seq] = result
        self._flush()

    def _flush(self) -> None:
        while True:
            if self._next_seq in self._skipped:
                self._skipped.discard(self._next_seq)
                self._next_seq += 1
                continue
            result = self._held.pop(self._next_seq, None)
            if result is None:
                return
            self._emit(result, format_output(result, self._options))
            self._next_seq += 1

    @property
    def pending(self) -> int:
        """Number of results held back waiting for earlier sequences."""
        return len(self._held)
