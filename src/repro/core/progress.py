"""Progress reporting (GNU Parallel's ``--bar``/``--eta``).

The scheduler invokes a progress callback after every final job outcome;
:class:`ProgressBar` is a ready-made callback rendering GNU Parallel's
``--bar`` style line (percentage, counts, elapsed, ETA) to any stream::

    from repro.core.progress import ProgressBar
    Parallel("work {}", jobs=8, progress=ProgressBar(sys.stderr)).run(items)

Custom callbacks receive a :class:`Progress` snapshot — handy for GUIs,
logging, or the paper's "quick prototyping to extract parallel profiles"
use (record the completion timeline, plot it later).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["Progress", "ProgressBar"]


@dataclass(frozen=True)
class Progress:
    """One progress snapshot, passed to progress callbacks."""

    done: int
    failed: int
    total: Optional[int]  # None for unbounded (streaming) input
    elapsed: float

    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction, or None when the total is unknown."""
        if not self.total:
            return None
        return min(1.0, self.done / self.total)

    @property
    def rate(self) -> float:
        """Completed jobs per second so far."""
        return self.done / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds remaining (None when unknowable)."""
        if not self.total or self.done == 0:
            return None
        remaining = self.total - self.done
        return remaining / self.rate if self.rate > 0 else None


class ProgressBar:
    """Renders ``--bar``-style progress lines to a stream.

    Throttled to at most one render per ``min_interval`` seconds (plus a
    final render at 100%) so tight loops don't flood the terminal.
    """

    def __init__(self, stream, width: int = 30, min_interval: float = 0.1):
        self.stream = stream
        self.width = width
        self.min_interval = min_interval
        self._last_render = 0.0
        self.renders = 0

    def __call__(self, progress: Progress) -> None:
        now = time.time()
        finished = progress.total is not None and progress.done >= progress.total
        if not finished and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.renders += 1
        self.stream.write("\r" + self.format(progress))
        if finished:
            self.stream.write("\n")
        self.stream.flush()

    def format(self, p: Progress) -> str:
        """The rendered line (separate from writing, for tests)."""
        if p.fraction is None:
            return f"{p.done} done ({p.rate:.1f}/s, {p.elapsed:.0f}s elapsed)"
        filled = int(round(self.width * p.fraction))
        bar = "#" * filled + "-" * (self.width - filled)
        eta = p.eta_s
        eta_txt = f" ETA {eta:.0f}s" if eta is not None else ""
        fail_txt = f" {p.failed} failed" if p.failed else ""
        return (
            f"[{bar}] {p.fraction * 100:3.0f}% {p.done}/{p.total}"
            f"{fail_txt}{eta_txt}"
        )
