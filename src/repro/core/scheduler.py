"""The engine's dispatch loop (real-execution path).

Reproduces GNU Parallel's job-control behaviour:

* a pool of ``-j`` slots, freed slots reused lowest-first (``{%}``),
* lazy input consumption — unbounded sources (queues, pipes) stream,
* ``--delay`` pacing between starts,
* ``--retries`` with failed jobs re-queued ahead of new input,
* ``--halt`` policies (never / soon / now, fail/success/done, counts or
  percentages),
* ``--resume`` / ``--resume-failed`` against a ``--joblog``,
* ``--keep-order`` output sequencing, ``--tag`` prefixes,
* ``--results`` capture trees, ``--dry-run``.

One OS thread runs per in-flight job (GNU Parallel forks one process per
job; a Python thread per job is the analogous cost model, and the real
work happens in a subprocess anyway for the shell backend).
"""

from __future__ import annotations

import itertools
import os
import queue
import random
import re
import statistics
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from repro.core.backends.base import Backend
from repro.core.inputs import ArgGroup, normalize, shuffled
from repro.core.job import Job, JobResult, JobState, RunSummary
from repro.core.joblog import JoblogWriter, completed_seqs
from repro.core.options import Options
from repro.core.output import OutputSequencer
from repro.core.policies import HaltTracker, retry_backoff_delay, should_retry
from repro.core.results import ResultsWriter
from repro.core.slots import SlotPool
from repro.core.template import CommandTemplate

__all__ = ["run_scheduler"]

_DONE = "done"


def _read_mem_available() -> int:
    """Available memory in bytes from /proc/meminfo (inf when unreadable)."""
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 2**63  # no probe available: never throttle


def run_scheduler(
    template: Optional[CommandTemplate],
    source: Iterable[object],
    options: Options,
    backend: Backend,
    emit: Optional[Callable[[JobResult, str], None]] = None,
    progress: Optional[Callable[..., None]] = None,
) -> RunSummary:
    """Run every input through ``backend`` under GNU Parallel semantics.

    ``template`` may be None when the backend does not need a rendered
    command (callable backends); the command recorded is then a synthetic
    ``func(args...)`` string for joblog purposes.
    """
    known_total: Optional[int] = None
    if options.shuf:
        source = shuffled(normalize(source), seed=options.seed)
        known_total = None  # length recomputed below
    if hasattr(source, "__len__"):
        known_total = len(source)  # type: ignore[arg-type]

    groups: Iterator[ArgGroup] = normalize(source)
    if options.shuf and known_total is None:
        materialized = list(groups)
        known_total = len(materialized)
        groups = iter(materialized)
    if options.colsep:
        colsep_re = re.compile(options.colsep)
        groups = (
            tuple(colsep_re.split(g[0])) if len(g) == 1 else g for g in groups
        )
    if options.max_args is not None:
        from repro.core.inputs import group_args

        groups = group_args(groups, options.max_args)
        if known_total is not None:
            known_total = -(-known_total // options.max_args)  # ceil

    jobs_cap = options.effective_jobs(known_total) if options.jobs == 0 else options.jobs
    slots = SlotPool(jobs_cap)
    halt = HaltTracker(options.halt_spec, total_jobs=known_total)

    joblog: Optional[JoblogWriter] = None
    skip: set[int] = set()
    if options.joblog:
        if options.resume:
            skip = completed_seqs(options.joblog, include_failed=not options.resume_failed)
        joblog = JoblogWriter(options.joblog, append=options.resume)

    results_writer = ResultsWriter(options.results) if options.results else None
    sequencer = OutputSequencer(emit or (lambda r, text: None), options)

    summary = RunSummary()

    def notify_progress() -> None:
        if progress is None:
            return
        from repro.core.progress import Progress

        progress(
            Progress(
                done=len(summary.results) + summary.n_skipped,
                failed=summary.n_failed,
                total=known_total,
                elapsed=time.time() - wall_start,
            )
        )

    done_q: "queue.Queue[tuple[str, Job, Optional[JobResult]]]" = queue.Queue()
    retry_q: deque[Job] = deque()
    active = 0
    halted_soon = False
    #: Wall-clock deadline for draining in-flight work after ``--halt now``;
    #: None while no kill is pending.
    halt_deadline: Optional[float] = None
    #: Jobs currently running, by seq — the set we must account for (or
    #: abandon with synthetic KILLED results) before ``backend.close()``.
    in_flight: dict[int, Job] = {}
    #: Worker threads started this run, joined (bounded) at shutdown so
    #: ``backend.close()`` cannot race an in-flight ``run_job``.
    workers: list[threading.Thread] = []
    seq_counter = itertools.count(1)
    wall_start = time.time()
    last_dispatch = -float("inf")

    # --retry-delay: exponential backoff with jitter between attempts.
    # The jitter stream is seeded so chaos runs stay reproducible.
    retry_rng = random.Random(options.seed if options.seed is not None else 0)

    def retry_delay_for(attempt: int) -> float:
        return retry_backoff_delay(
            attempt, options.retry_delay, options.retry_delay_max, retry_rng
        )

    def describe(args: ArgGroup, seq: int, slot: int) -> str:
        if template is not None:
            if options.pipe_mode:
                # --pipe: the block goes to stdin, not the command line.
                return template.render(("",), seq=seq, slot=slot).rstrip()
            return template.render(args, seq=seq, slot=slot, quote=options.quote)
        return f"{getattr(backend, 'func', backend)!r}({', '.join(args)})"

    # --timeout: fixed seconds, or N% of the median runtime seen so far
    # (GNU Parallel's dynamic form; needs >= 3 completed jobs to engage).
    runtimes: list[float] = []
    runtimes_lock = threading.Lock()

    def effective_timeout() -> Optional[float]:
        if options.timeout_s is not None:
            return options.timeout_s
        if options.timeout_pct is not None:
            with runtimes_lock:
                if len(runtimes) >= 3:
                    return statistics.median(runtimes) * options.timeout_pct
        return None

    # --load: stall dispatch while the 1-minute load average is too high.
    load_probe = options.load_probe or (
        (lambda: os.getloadavg()[0]) if hasattr(os, "getloadavg") else (lambda: 0.0)
    )

    # --memfree: stall dispatch while available memory is too low.
    mem_probe = options.memfree_probe or _read_mem_available

    def wait_for_load() -> None:
        if options.max_load is not None:
            while load_probe() > options.max_load:
                time.sleep(0.05)
        if options.memfree is not None:
            while mem_probe() < options.memfree:
                time.sleep(0.05)

    def worker(job: Job, slot: int) -> None:
        try:
            result = backend.run_job(job, slot, options, timeout=effective_timeout())
            if result.state == JobState.SUCCEEDED:
                with runtimes_lock:
                    runtimes.append(result.runtime)
        except Exception as exc:  # backend bug; convert to a failed result
            now = time.time()
            result = JobResult(
                seq=job.seq,
                args=job.args,
                command=job.command,
                exit_code=126,
                stderr=f"backend error: {exc!r}",
                start_time=now,
                end_time=now,
                slot=slot,
                host=backend.host,
                attempt=job.attempt,
                state=JobState.FAILED,
            )
        finally:
            slots.release(slot)
        done_q.put((_DONE, job, result))

    def pop_ready_retry() -> Optional[Job]:
        """A retry job whose ``--retry-delay`` backoff has elapsed, or None."""
        if not retry_q:
            return None
        now = time.time()
        for i, job in enumerate(retry_q):
            if job.eligible_at <= now:
                del retry_q[i]
                return job
        return None

    def earliest_retry_at() -> float:
        return min(job.eligible_at for job in retry_q)

    def next_job() -> Optional[Job]:
        """Next dispatchable job: eligible retries first, then fresh input.

        None means no fresh input remains — retries still backing off may
        be waiting in ``retry_q``.
        """
        job = pop_ready_retry()
        if job is not None:
            return job
        for args in groups:
            seq = next(seq_counter)
            if seq in skip:
                summary.n_skipped += 1
                sequencer.skip(seq)
                continue
            return Job(seq=seq, args=args)
        return None

    def reap(timeout: Optional[float] = None) -> bool:
        """Consume one completion from the workers; False on timeout."""
        nonlocal active, halted_soon, halt_deadline
        try:
            if timeout is not None and timeout <= 0:
                _kind, job, result = done_q.get_nowait()
            else:
                _kind, job, result = done_q.get(timeout=timeout)
        except queue.Empty:
            return False
        active -= 1
        in_flight.pop(job.seq, None)
        _handle_completion(
            job, result, options, halt, retry_q, summary,
            sequencer, joblog, results_writer, retry_delay_for=retry_delay_for,
        )
        notify_progress()
        if halt.triggered and not halted_soon:
            halted_soon = True
            if halt.kill_running:
                backend.cancel_all()
                halt_deadline = time.time() + options.halt_grace
        return True

    def halt_wait() -> Optional[float]:
        """How long reap() may block: bounded once a kill is pending."""
        if halt_deadline is None:
            return None
        return max(0.0, halt_deadline - time.time())

    def drain() -> None:
        """Consume completions already posted, without blocking.

        Workers release their slot before posting, so a free slot does not
        mean an empty ``done_q`` — without this, fast jobs let the loop
        dispatch fresh input indefinitely while finished failures sit
        unprocessed, and retries starve to the back of the run.
        """
        while not done_q.empty():
            if not reap(timeout=0):
                break

    pending: Optional[Job] = next_job()

    while pending is not None or active > 0 or retry_q:
        drain()
        can_dispatch = (
            pending is not None
            and not halted_soon
            and not halt.triggered
        )
        if can_dispatch:
            slot = slots.acquire(blocking=False)
            if slot is None:
                # All slots busy: wait for a completion, then loop.
                reap()
                continue
            # Pace dispatches per --delay and throttle on --load.
            if options.delay > 0:
                gap = time.time() - last_dispatch
                if gap < options.delay:
                    time.sleep(options.delay - gap)
            wait_for_load()
            # Retries outrank fresh input at every dispatch point (a failed
            # job must not starve behind a stream of new work).
            ready_retry = pop_ready_retry()
            if ready_retry is not None:
                job = ready_retry
            else:
                job, pending = pending, None
            job.attempt += 1
            if options.pipe_mode and job.stdin_data is None:
                job.stdin_data = job.args[0]
                job.args = (f"<block {job.seq}>",)
            job.command = describe(job.args, job.seq, slot)
            job.state = JobState.RUNNING
            last_dispatch = time.time()
            summary.n_dispatched += 1
            if options.dry_run:
                slots.release(slot)
                now = time.time()
                result = JobResult(
                    seq=job.seq, args=job.args, command=job.command,
                    exit_code=0, start_time=now, end_time=now, slot=slot,
                    host=backend.host, attempt=job.attempt,
                    state=JobState.SUCCEEDED, stdout=job.command + "\n",
                )
                _handle_completion(
                    job, result, options, halt, retry_q, summary,
                    sequencer, joblog, results_writer, dry_run=True,
                )
                notify_progress()
            else:
                thread = threading.Thread(target=worker, args=(job, slot), daemon=True)
                in_flight[job.seq] = job
                workers.append(thread)
                thread.start()
                active += 1
                if len(workers) > 32 + 2 * jobs_cap:
                    workers[:] = [t for t in workers if t.is_alive()]
            if pending is None:
                pending = next_job()
            continue

        if active > 0:
            if not reap(timeout=halt_wait()):
                break  # halt grace expired: abandon stragglers
            if pending is None and not halted_soon:
                pending = pop_ready_retry()
            continue

        if halted_soon or halt.triggered:
            break  # input/retries remain but we must not start them

        if pending is None and retry_q:
            # Only backing-off retries remain: sleep out the earliest delay.
            time.sleep(max(0.0, earliest_retry_at() - time.time()))
            pending = pop_ready_retry()
            continue

        break

    summary.halted = halt.triggered
    summary.halt_reason = halt.reason

    # Shutdown: drain completions within the grace window, then account
    # for anything still wedged with a synthetic KILLED result, and join
    # the workers (bounded) so backend.close() cannot race run_job.
    shutdown_deadline = time.time() + options.halt_grace
    if halt_deadline is not None:
        shutdown_deadline = min(shutdown_deadline, halt_deadline)
    while active > 0:
        if not reap(timeout=max(0.01, shutdown_deadline - time.time())):
            break
    if active > 0:
        for job in list(in_flight.values()):
            now = time.time()
            abandoned = JobResult(
                seq=job.seq, args=job.args, command=job.command,
                exit_code=-1, stderr="abandoned in flight at shutdown",
                start_time=now, end_time=now, slot=0, host=backend.host,
                attempt=job.attempt, state=JobState.KILLED,
            )
            _handle_completion(
                job, abandoned, options, halt, retry_q, summary,
                sequencer, joblog, results_writer,
            )
        in_flight.clear()
        active = 0
    for thread in workers:
        thread.join(timeout=max(0.0, shutdown_deadline - time.time()))

    summary.wall_time = time.time() - wall_start
    if joblog is not None:
        joblog.close()
    backend.close()
    return summary


def _handle_completion(
    job: Job,
    result: Optional[JobResult],
    options: Options,
    halt: HaltTracker,
    retry_q: deque[Job],
    summary: RunSummary,
    sequencer: OutputSequencer,
    joblog: Optional[JoblogWriter],
    results_writer: Optional[ResultsWriter],
    dry_run: bool = False,
    retry_delay_for: Optional[Callable[[int], float]] = None,
) -> None:
    assert result is not None
    if joblog is not None and not dry_run:
        joblog.write(result)
    if (
        not dry_run
        and result.state in (JobState.FAILED, JobState.TIMED_OUT)
        and should_retry(job, result.exit_code, options.retries)
        and not halt.triggered
    ):
        job.state = JobState.PENDING
        delay = retry_delay_for(job.attempt) if retry_delay_for is not None else 0.0
        job.eligible_at = time.time() + delay if delay > 0 else 0.0
        retry_q.append(job)
        return
    job.state = result.state
    summary.results.append(result)
    if result.state == JobState.SUCCEEDED:
        summary.n_succeeded += 1
    elif result.state in (JobState.FAILED, JobState.TIMED_OUT):
        summary.n_failed += 1
    halt.record(result.state)
    if results_writer is not None and not dry_run:
        results_writer.write(result)
    sequencer.push(result)
