"""The engine's dispatch loop (real-execution path).

Reproduces GNU Parallel's job-control behaviour:

* a pool of ``-j`` slots, freed slots reused lowest-first (``{%}``),
* lazy input consumption — unbounded sources (queues, pipes) stream,
* ``--delay`` pacing between starts,
* ``--retries`` with failed jobs re-queued ahead of new input,
* ``--halt`` policies (never / soon / now, fail/success/done, counts or
  percentages),
* ``--resume`` / ``--resume-failed`` against a ``--joblog``,
* ``--keep-order`` output sequencing, ``--tag`` prefixes,
* ``--results`` capture trees, ``--dry-run``.

Execution model: a pool of at most ``-j`` *persistent* worker threads is
fed through an in-memory dispatch queue; each worker loops "take job →
``backend.run_job`` → post completion".  GNU Parallel forks one process
per job, but its *perl-side* bookkeeping per job is tiny — that is the
cost model this pool reproduces.  Spawning an OS thread per job (the
previous design) put ~100 µs of thread start/join on the per-job hot
path, which dominates exactly the single-node launch-rate regime the
paper's Fig. 3 stress test measures.

Ordering invariant (retry fairness): a worker posts its completion and
the *scheduler* releases the job's slot only after the completion has
been fully handled.  A free slot therefore proves the completion that
freed it — including any retry re-queue — has been processed, so retries
can never starve behind a stream of fresh input racing freed slots.
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import random
import re
import sys
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from repro.core.backends.base import Backend
from repro.core.inputs import ArgGroup, ceil_div, normalize, shuffled
from repro.core.job import Job, JobResult, JobState, RunSummary
from repro.core.joblog import JoblogWriter, completed_seqs
from repro.core.options import Options
from repro.core.output import OutputSequencer
from repro.core.policies import HaltTracker, retry_backoff_delay, should_retry
from repro.core.results import ResultsWriter, retention_buffer
from repro.core.runstats import StreamingMedian
from repro.core.slots import SlotPool
from repro.core.template import CommandTemplate
from repro.obs.tracer import RunTracer

__all__ = ["run_scheduler"]

#: Sentinel telling a pool worker to exit its take-run-post loop.
_STOP = None

#: Initial --load/--memfree poll interval; doubles up to
#: ``Options.throttle_poll_max``.
_THROTTLE_POLL_INITIAL = 0.005

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None


def _coordinator_rss() -> int:
    """This process's peak RSS in bytes (0 where unavailable).

    The bounded-memory claim of the streaming result plane is only
    checkable if the run reports it.  On Linux ``/proc/self/status``
    VmHWM is preferred over ``ru_maxrss``: the rusage counter is a
    fork-inherited high-water mark — a child briefly shares its
    parent's COW-resident pages between fork and exec, and the kernel
    folds that pre-exec peak into ``sig->maxrss`` — so a coordinator
    spawned by a large parent would report the *parent's* footprint.
    VmHWM tracks only the current address space (reset on exec).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024  # KiB on Linux


class _MemAvailableProbe:
    """``/proc/meminfo`` MemAvailable reader with a cached file handle.

    ``--memfree`` probes before every dispatch; reopening the procfs file
    each time costs a path lookup + open/close per job.  The handle is
    opened once and rewound per probe (procfs regenerates content on
    read).  Unreadable or unparseable → "infinite" memory: never throttle.
    """

    def __init__(self, path: str = "/proc/meminfo"):
        self._path = path
        self._fh = None

    def __call__(self) -> int:
        try:
            if self._fh is None:
                self._fh = open(self._path, "rb", buffering=0)
            else:
                self._fh.seek(0)
            for line in self._fh.read().splitlines():
                if line.startswith(b"MemAvailable:"):
                    return int(line.split()[1]) * 1024
        except (OSError, ValueError, IndexError):
            self.close()
        return 2**63  # no probe available: never throttle

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


class _RetryQueue:
    """Min-heap of retry jobs keyed on ``eligible_at``, FIFO within ties.

    Replaces the former O(n)-per-dispatch linear scan of a deque: peek
    and pop of the earliest-eligible job are O(1)/O(log n).
    """

    __slots__ = ("_heap", "_tie")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Job]] = []
        self._tie = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (job.eligible_at, next(self._tie), job))

    def pop_ready(self, now: float) -> Optional[Job]:
        """The earliest job whose backoff has elapsed, or None."""
        if self._heap and self._heap[0][0] <= now:
            return heapq.heappop(self._heap)[2]
        return None

    def earliest_at(self) -> float:
        """``eligible_at`` of the earliest queued retry (queue non-empty)."""
        return self._heap[0][0]


class _WorkerPool:
    """Persistent worker threads fed by an in-memory dispatch queue.

    Workers loop ``take (job, slot) → run_one → post completion``; none
    of the per-job thread create/start/join cost of the previous
    thread-per-job design remains.  The pool grows lazily with observed
    concurrency (slot-gating bounds in-flight jobs, so it can never
    exceed ``capacity``) unless ``prestart`` asks for all workers up
    front.  Threads are daemons: a worker wedged inside a backend cannot
    block interpreter exit after the bounded shutdown join.
    """

    def __init__(
        self,
        capacity: int,
        run_one: Callable[[Job, int], JobResult],
        done_q: "queue.SimpleQueue",
        prestart: bool = False,
    ):
        self.capacity = capacity
        self._run_one = run_one
        self._done_q = done_q
        self._dispatch_q: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        if prestart:
            while len(self._threads) < capacity:
                self._spawn()

    @property
    def size(self) -> int:
        """Workers spawned so far (monotone within a run, <= capacity)."""
        return len(self._threads)

    @property
    def queue_depth(self) -> int:
        """Jobs queued for dispatch, not yet taken by a worker (a gauge)."""
        return self._dispatch_q.qsize()

    def submit(self, job: Job, slot: int, active: int) -> None:
        """Queue one job; ``active`` counts in-flight jobs including it."""
        if len(self._threads) < min(self.capacity, active):
            self._spawn()
        self._dispatch_q.put((job, slot))

    def _spawn(self) -> None:
        thread = threading.Thread(
            target=self._worker_loop,
            daemon=True,
            name=f"repro-worker-{len(self._threads) + 1}",
        )
        self._threads.append(thread)
        thread.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._dispatch_q.get()
            if item is _STOP:
                return
            job, slot = item
            result = self._run_one(job, slot)
            self._done_q.put((job, slot, result))

    def shutdown(self, deadline: float) -> int:
        """Stop workers, joining until ``deadline`` (monotonic seconds).

        Returns the number of threads still alive (wedged in a backend);
        they are daemons and die with the process.
        """
        for _ in self._threads:
            self._dispatch_q.put(_STOP)
        wedged = 0
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            wedged += thread.is_alive()
        return wedged


def run_scheduler(
    template: Optional[CommandTemplate],
    source: Iterable[object],
    options: Options,
    backend: Backend,
    emit: Optional[Callable[[JobResult, str], None]] = None,
    progress: Optional[Callable[..., None]] = None,
) -> RunSummary:
    """Run every input through ``backend`` under GNU Parallel semantics.

    ``template`` may be None when the backend does not need a rendered
    command (callable backends); the command recorded is then a synthetic
    ``func(args...)`` string for joblog purposes.
    """
    # Job ingestion stays lazy end to end: a generator source streams
    # through normalize()/group_args() and is pulled one group per
    # dispatch, so an unbounded or million-item input never materializes
    # in the coordinator.  --shuf is the one necessary exception —
    # shuffling requires the whole list — and it materializes exactly
    # once, reusing that list for the --eta/halt total.
    known_total: Optional[int] = None
    groups: Iterator[ArgGroup]
    if options.shuf:
        shuffled_groups = shuffled(normalize(source), seed=options.seed)
        known_total = len(shuffled_groups)
        groups = iter(shuffled_groups)
    else:
        if hasattr(source, "__len__"):
            known_total = len(source)  # type: ignore[arg-type]
        groups = normalize(source)
    if options.colsep:
        colsep_re = re.compile(options.colsep)
        groups = (
            tuple(colsep_re.split(g[0])) if len(g) == 1 else g for g in groups
        )
    if options.max_args is not None:
        from repro.core.inputs import group_args

        groups = group_args(groups, options.max_args)
        if known_total is not None:
            # N inputs packed -n K per job → ceil(N / K) jobs; a plain
            # floor here under-counted the short final group, skewing
            # --eta/--bar totals (and HaltTracker percentages).
            known_total = ceil_div(known_total, options.max_args)

    jobs_cap = options.effective_jobs(known_total) if options.jobs == 0 else options.jobs
    slots = SlotPool(jobs_cap)
    halt = HaltTracker(options.halt_spec, total_jobs=known_total)

    # Observability: an injected tracer wins; otherwise build one only
    # when --trace/--metrics asked for output.  tracer stays None on the
    # default path, so every instrumentation site below costs a single
    # `is not None` test per job stage when tracing is off.
    tracer: Optional[RunTracer] = options.tracer  # type: ignore[assignment]
    if tracer is None and (options.trace or options.metrics):
        tracer = RunTracer.from_options(options)

    # The tracer binds before prepare_run so per-run setup work the
    # backend does there (e.g. opening persistent remote channels) is
    # itself traced — channel_open spans land in the Chrome trace.
    if tracer is not None:
        bind_tracer = getattr(backend, "bind_tracer", None)
        if bind_tracer is not None:
            bind_tracer(tracer)
    # Per-run backend setup: merged environments, process pools, remote
    # control channels — every per-job-invariant cost a backend can hoist
    # off the hot path.
    prepare_run = getattr(backend, "prepare_run", None)
    if prepare_run is not None:
        prepare_run(options)
    # Command-template interning: sharded backends ship the compiled
    # template to every dispatcher shard once, so per-job spawn frames
    # carry only the argument delta (the backend gates on template shape
    # and no-ops for unsupported forms).
    intern_hook = getattr(backend, "intern_template", None)
    if intern_hook is not None and template is not None:
        intern_hook(template, options)

    joblog: Optional[JoblogWriter] = None
    skip: set[int] = set()
    if options.joblog:
        if options.resume:
            skip = completed_seqs(options.joblog, include_failed=not options.resume_failed)
        joblog = JoblogWriter(
            options.joblog,
            append=options.resume,
            flush_every=options.joblog_flush_every,
        )

    results_writer = ResultsWriter(options.results) if options.results else None
    sequencer = OutputSequencer(emit or (lambda r, text: None), options)

    # Bounded in-memory retention (--keep-results): the deque window
    # keeps coordinator RSS O(window + slots) while every aggregate the
    # run report needs is maintained incrementally in summary.record().
    summary = RunSummary(
        results=retention_buffer(options.effective_keep_results())
    )

    def notify_progress() -> None:
        if progress is None:
            return
        from repro.core.progress import Progress

        progress(
            Progress(
                done=summary.n_completed + summary.n_skipped,
                failed=summary.n_failed,
                total=known_total,
                elapsed=time.time() - wall_start,
            )
        )

    done_q: "queue.SimpleQueue[tuple[Job, int, JobResult]]" = queue.SimpleQueue()
    retry_q = _RetryQueue()
    active = 0
    halted_soon = False
    #: Monotonic deadline for draining in-flight work after ``--halt now``;
    #: None while no kill is pending.
    halt_deadline: Optional[float] = None
    #: Jobs currently running, by seq — the set we must account for (or
    #: abandon with synthetic KILLED results) before ``backend.close()``.
    in_flight: dict[int, Job] = {}
    seq_counter = itertools.count(1)
    wall_start = time.time()
    last_dispatch = -float("inf")

    # --retry-delay: exponential backoff with jitter between attempts.
    # The jitter stream is seeded so chaos runs stay reproducible.
    retry_rng = random.Random(options.seed if options.seed is not None else 0)

    def retry_delay_for(attempt: int) -> float:
        return retry_backoff_delay(
            attempt, options.retry_delay, options.retry_delay_max, retry_rng
        )

    # Per-job command description; per-run invariants hoisted out.  A
    # constant template (possible in --pipe mode, where the command line
    # gets no substitution) renders exactly once.
    static_command: Optional[str] = None
    if template is not None and options.pipe_mode and template.is_static:
        static_command = template.render(("",), seq=0, slot=0).rstrip()
    callable_repr: Optional[str] = None
    if template is None:
        callable_repr = repr(getattr(backend, "func", backend))

    def describe(args: ArgGroup, seq: int, slot: int) -> str:
        if template is not None:
            if options.pipe_mode:
                # --pipe: the block goes to stdin, not the command line.
                if static_command is not None:
                    return static_command
                return template.render(("",), seq=seq, slot=slot).rstrip()
            return template.render(args, seq=seq, slot=slot, quote=options.quote)
        return f"{callable_repr}({', '.join(args)})"

    # --timeout: fixed seconds, or N% of the median runtime seen so far
    # (GNU Parallel's dynamic form; needs >= 3 completed jobs to engage).
    # The running median is a two-heap stream: O(log n) insert, O(1)
    # query — runtimes are only tracked when the dynamic form is active.
    fixed_timeout = options.timeout_s
    dynamic_pct = options.timeout_pct
    median_stream = StreamingMedian()
    median_lock = threading.Lock()

    def effective_timeout() -> Optional[float]:
        if fixed_timeout is not None:
            return fixed_timeout
        if dynamic_pct is not None:
            with median_lock:
                if len(median_stream) >= 3:
                    return median_stream.median() * dynamic_pct
        return None

    def run_one(job: Job, slot: int) -> JobResult:
        """Worker body: one job through the backend, exceptions contained."""
        if tracer is not None:
            tracer.job_running(job.seq, job.attempt, slot)
        try:
            result = backend.run_job(job, slot, options, timeout=effective_timeout())
            if dynamic_pct is not None and result.state == JobState.SUCCEEDED:
                with median_lock:
                    median_stream.push(result.runtime)
        except Exception as exc:  # backend bug; convert to a failed result
            now = time.time()
            result = JobResult(
                seq=job.seq,
                args=job.args,
                command=job.command,
                exit_code=126,
                stderr=f"backend error: {exc!r}",
                start_time=now,
                end_time=now,
                slot=slot,
                host=backend.host,
                attempt=job.attempt,
                state=JobState.FAILED,
            )
        return result

    pool = _WorkerPool(jobs_cap, run_one, done_q, prestart=options.pool_prestart)
    if tracer is not None:
        tracer.bind_gauges(
            queue_depth=lambda: pool.queue_depth,
            slots_in_use=lambda: slots.in_use,
            pool_size=lambda: pool.size,
            retry_depth=lambda: len(retry_q),
            in_flight=lambda: len(in_flight),
        )
        tracer.run_started(
            jobs_cap=jobs_cap, total=known_total,
            dispatchers=getattr(backend, "dispatchers", 1),
            rpc_batch=getattr(backend, "rpc_batch", 1),
        )

    # --load / --memfree probes.
    load_probe = options.load_probe or (
        (lambda: os.getloadavg()[0]) if hasattr(os, "getloadavg") else (lambda: 0.0)
    )
    default_mem_probe: Optional[_MemAvailableProbe] = None
    if options.memfree_probe is not None:
        mem_probe = options.memfree_probe
    else:
        default_mem_probe = _MemAvailableProbe()
        mem_probe = default_mem_probe
    throttled = options.max_load is not None or options.memfree is not None

    def pull_fresh() -> Optional[Job]:
        """Pull the next fresh job off the input stream (None = exhausted)."""
        for args in groups:
            seq = next(seq_counter)
            if seq in skip:
                summary.n_skipped += 1
                sequencer.skip(seq)
                continue
            if tracer is not None:
                tracer.job_submitted(seq)
            return Job(seq=seq, args=args)
        return None

    # --stage-ahead: keep up to N not-yet-dispatchable jobs pulled from
    # the input and handed to the backend's staging lane, so their
    # stage-in overlaps earlier jobs' compute.  Dispatch order is
    # unchanged — the lookahead is a FIFO the dispatch loop drains first.
    # Dry runs move no data and --pipe rewrites args at dispatch time, so
    # both stay strictly lazy.
    prefetch_hook = getattr(backend, "prefetch_job", None)
    stage_ahead_n = getattr(options, "stage_ahead", 0)
    lookahead: deque[Job] = deque()
    prefetching = (
        prefetch_hook is not None
        and stage_ahead_n > 0
        and not options.dry_run
        and not options.pipe_mode
    )

    def refill_lookahead() -> None:
        if not prefetching:
            return
        while len(lookahead) < stage_ahead_n:
            job = pull_fresh()
            if job is None:
                return
            lookahead.append(job)
            prefetch_hook(job, options)

    def next_job() -> Optional[Job]:
        """Next dispatchable job: eligible retries first, then fresh input.

        None means no fresh input remains — retries still backing off may
        be waiting in ``retry_q``.
        """
        job = retry_q.pop_ready(time.time())
        if job is not None:
            return job
        refill_lookahead()
        if lookahead:
            return lookahead.popleft()
        return pull_fresh()

    def reap(timeout: Optional[float] = None, notify: bool = True) -> bool:
        """Consume one completion from the workers; False on timeout.

        The slot is released only *after* the completion — retry re-queue
        included — has been handled, so a freed slot can never outrun its
        own completion (the structural retry-fairness guarantee).
        ``notify=False`` lets a batch drain coalesce progress callbacks
        into one per wakeup instead of one per completion.
        """
        nonlocal active, halted_soon, halt_deadline
        try:
            if timeout is not None and timeout <= 0:
                job, slot, result = done_q.get_nowait()
            else:
                job, slot, result = done_q.get(timeout=timeout)
        except queue.Empty:
            return False
        in_flight.pop(job.seq, None)
        try:
            _handle_completion(
                job, result, options, halt, retry_q, summary,
                sequencer, joblog, results_writer, retry_delay_for=retry_delay_for,
                tracer=tracer,
            )
        finally:
            slots.release(slot)
            active -= 1
        if notify:
            notify_progress()
        if halt.triggered and not halted_soon:
            halted_soon = True
            if halt.kill_running:
                backend.cancel_all()
                halt_deadline = time.monotonic() + options.halt_grace
        return True

    def halt_wait() -> Optional[float]:
        """How long reap() may block: bounded once a kill is pending."""
        if halt_deadline is None:
            return None
        return max(0.0, halt_deadline - time.monotonic())

    def drain() -> None:
        """Consume completions already posted, without blocking.

        Keeps completion handling (and thus retry re-queues and halt
        detection) current while fresh input streams through free slots.
        The whole batch is handled per wakeup with a single progress
        callback at the end — under batched shard RPC, completions arrive
        frame-at-a-time, and per-item notification would pay the callback
        cost ``jobs_per_frame`` times per wakeup for no information gain.
        """
        handled = 0
        while not done_q.empty():
            if not reap(timeout=0, notify=False):
                break
            handled += 1
        if handled:
            notify_progress()

    def wait_for_throttle() -> None:
        """Stall dispatch while ``--load``/``--memfree`` say so.

        Polls with exponential backoff (capped at
        ``options.throttle_poll_max``) instead of a fixed busy-wait; each
        wait blocks on the completion queue, so a finishing job — or the
        halt it triggers — wakes the loop immediately instead of sleeping
        out the full interval.
        """
        delay = _THROTTLE_POLL_INITIAL
        while not halted_soon and not halt.triggered:
            if options.max_load is not None and load_probe() > options.max_load:
                pass
            elif options.memfree is not None and mem_probe() < options.memfree:
                pass
            else:
                return
            reap(timeout=delay)
            delay = min(delay * 2.0, options.throttle_poll_max)

    pending: Optional[Job] = next_job()

    while pending is not None or active > 0 or retry_q:
        drain()
        can_dispatch = (
            pending is not None
            and not halted_soon
            and not halt.triggered
        )
        if can_dispatch:
            slot = slots.acquire(blocking=False)
            if slot is None:
                # All slots busy: wait for a completion, then loop.
                reap()
                continue
            # Pace dispatches per --delay and throttle on --load/--memfree.
            if options.delay > 0:
                gap = time.time() - last_dispatch
                if gap < options.delay:
                    time.sleep(options.delay - gap)
            if throttled:
                wait_for_throttle()
                if halted_soon or halt.triggered:
                    slots.release(slot)  # halt fired while stalled: no new work
                    continue
            # Retries outrank fresh input at every dispatch point (a failed
            # job must not starve behind a stream of new work).
            ready_retry = retry_q.pop_ready(time.time())
            if ready_retry is not None:
                job = ready_retry
            else:
                job, pending = pending, None
            job.attempt += 1
            if tracer is not None:
                tracer.attempt_started(job.seq, job.attempt, slot)
            if options.pipe_mode and job.stdin_data is None:
                job.stdin_data = job.args[0]
                job.args = (f"<block {job.seq}>",)
            job.command = describe(job.args, job.seq, slot)
            if options.linebuffer:
                job.stream = sequencer.stream_for(job, slot)
            job.state = JobState.RUNNING
            last_dispatch = time.time()
            summary.n_dispatched += 1
            if options.dry_run:
                slots.release(slot)
                now = time.time()
                result = JobResult(
                    seq=job.seq, args=job.args, command=job.command,
                    exit_code=0, start_time=now, end_time=now, slot=slot,
                    host=backend.host, attempt=job.attempt,
                    state=JobState.SUCCEEDED, stdout=job.command + "\n",
                )
                _handle_completion(
                    job, result, options, halt, retry_q, summary,
                    sequencer, joblog, results_writer, dry_run=True,
                    tracer=tracer,
                )
                notify_progress()
            else:
                active += 1
                in_flight[job.seq] = job
                # Dispatch is recorded before the queue put: a worker may
                # pick the job up (and stamp RUNNING) instantly.
                if tracer is not None:
                    tracer.job_dispatched(job.seq, job.attempt, slot)
                pool.submit(job, slot, active)
            if pending is None:
                pending = next_job()
            continue

        if active > 0:
            if not reap(timeout=halt_wait()):
                break  # halt grace expired: abandon stragglers
            if pending is None and not halted_soon:
                pending = retry_q.pop_ready(time.time())
            continue

        if halted_soon or halt.triggered:
            break  # input/retries remain but we must not start them

        if pending is None and retry_q:
            # Only backing-off retries remain: sleep out the earliest delay.
            time.sleep(max(0.0, retry_q.earliest_at() - time.time()))
            pending = retry_q.pop_ready(time.time())
            continue

        break

    summary.halted = halt.triggered
    summary.halt_reason = halt.reason

    # Shutdown: drain completions within the grace window, then account
    # for anything still wedged with a synthetic KILLED result, and stop
    # the pool (bounded) so backend.close() cannot race run_job.
    shutdown_deadline = time.monotonic() + options.halt_grace
    if halt_deadline is not None:
        shutdown_deadline = min(shutdown_deadline, halt_deadline)
    while active > 0:
        if not reap(timeout=max(0.01, shutdown_deadline - time.monotonic())):
            break
    if active > 0:
        for job in list(in_flight.values()):
            now = time.time()
            abandoned = JobResult(
                seq=job.seq, args=job.args, command=job.command,
                exit_code=-1, stderr="abandoned in flight at shutdown",
                start_time=now, end_time=now, slot=0, host=backend.host,
                attempt=job.attempt, state=JobState.KILLED,
            )
            _handle_completion(
                job, abandoned, options, halt, retry_q, summary,
                sequencer, joblog, results_writer, tracer=tracer,
            )
        in_flight.clear()
        active = 0
    # Idle workers only need to drain a _STOP sentinel; grant a small
    # join floor even when the halt grace window is already spent.
    pool.shutdown(max(shutdown_deadline, time.monotonic() + 0.5))

    summary.wall_time = time.time() - wall_start
    if default_mem_probe is not None:
        default_mem_probe.close()
    if joblog is not None:
        joblog.close()
    # Data-plane counters (staging cache hits, bytes avoided) land on the
    # summary so both the run report and the tracer's RUN_END carry them.
    stats_hook = getattr(backend, "staging_stats", None)
    if stats_hook is not None:
        staging_stats = stats_hook()
        if staging_stats:
            summary.staging = staging_stats
    # Control-plane counters (frames sent/received, jobs per frame,
    # interning, failover re-queues) from sharded backends.
    rpc_hook = getattr(backend, "control_plane_stats", None)
    if rpc_hook is not None:
        rpc_stats = rpc_hook()
        if rpc_stats:
            summary.rpc = rpc_stats
    summary.coordinator_rss = _coordinator_rss()
    if tracer is not None:
        tracer.run_finished(summary)
    backend.close()
    return summary


def _handle_completion(
    job: Job,
    result: Optional[JobResult],
    options: Options,
    halt: HaltTracker,
    retry_q: _RetryQueue,
    summary: RunSummary,
    sequencer: OutputSequencer,
    joblog: Optional[JoblogWriter],
    results_writer: Optional[ResultsWriter],
    dry_run: bool = False,
    retry_delay_for: Optional[Callable[[int], float]] = None,
    tracer: Optional[RunTracer] = None,
) -> None:
    assert result is not None
    if joblog is not None and not dry_run:
        joblog.write(result)
    if (
        not dry_run
        and result.state in (JobState.FAILED, JobState.TIMED_OUT)
        and should_retry(job, result.exit_code, options.retries)
        and not halt.triggered
    ):
        job.state = JobState.PENDING
        delay = retry_delay_for(job.attempt) if retry_delay_for is not None else 0.0
        job.eligible_at = time.time() + delay if delay > 0 else 0.0
        if tracer is not None:
            tracer.attempt_finished(
                job, result, retried=True, eligible_at=job.eligible_at
            )
        retry_q.push(job)
        return
    if tracer is not None:
        tracer.attempt_finished(job, result)
    job.state = result.state
    summary.record(result)
    halt.record(result.state)
    if results_writer is not None and not dry_run:
        results_writer.write(result)
    sequencer.push(result)
