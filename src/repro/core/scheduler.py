"""The engine's dispatch loop (real-execution path).

Reproduces GNU Parallel's job-control behaviour:

* a pool of ``-j`` slots, freed slots reused lowest-first (``{%}``),
* lazy input consumption — unbounded sources (queues, pipes) stream,
* ``--delay`` pacing between starts,
* ``--retries`` with failed jobs re-queued ahead of new input,
* ``--halt`` policies (never / soon / now, fail/success/done, counts or
  percentages),
* ``--resume`` / ``--resume-failed`` against a ``--joblog``,
* ``--keep-order`` output sequencing, ``--tag`` prefixes,
* ``--results`` capture trees, ``--dry-run``.

One OS thread runs per in-flight job (GNU Parallel forks one process per
job; a Python thread per job is the analogous cost model, and the real
work happens in a subprocess anyway for the shell backend).
"""

from __future__ import annotations

import itertools
import os
import queue
import re
import statistics
import threading
import time
from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from repro.core.backends.base import Backend
from repro.core.inputs import ArgGroup, normalize, shuffled
from repro.core.job import Job, JobResult, JobState, RunSummary
from repro.core.joblog import JoblogWriter, completed_seqs
from repro.core.options import Options
from repro.core.output import OutputSequencer
from repro.core.policies import HaltTracker, should_retry
from repro.core.results import ResultsWriter
from repro.core.slots import SlotPool
from repro.core.template import CommandTemplate

__all__ = ["run_scheduler"]

_DONE = "done"


def _read_mem_available() -> int:
    """Available memory in bytes from /proc/meminfo (inf when unreadable)."""
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 2**63  # no probe available: never throttle


def run_scheduler(
    template: Optional[CommandTemplate],
    source: Iterable[object],
    options: Options,
    backend: Backend,
    emit: Optional[Callable[[JobResult, str], None]] = None,
    progress: Optional[Callable[..., None]] = None,
) -> RunSummary:
    """Run every input through ``backend`` under GNU Parallel semantics.

    ``template`` may be None when the backend does not need a rendered
    command (callable backends); the command recorded is then a synthetic
    ``func(args...)`` string for joblog purposes.
    """
    known_total: Optional[int] = None
    if options.shuf:
        source = shuffled(normalize(source), seed=options.seed)
        known_total = None  # length recomputed below
    if hasattr(source, "__len__"):
        known_total = len(source)  # type: ignore[arg-type]

    groups: Iterator[ArgGroup] = normalize(source)
    if options.shuf and known_total is None:
        materialized = list(groups)
        known_total = len(materialized)
        groups = iter(materialized)
    if options.colsep:
        colsep_re = re.compile(options.colsep)
        groups = (
            tuple(colsep_re.split(g[0])) if len(g) == 1 else g for g in groups
        )
    if options.max_args is not None:
        from repro.core.inputs import group_args

        groups = group_args(groups, options.max_args)
        if known_total is not None:
            known_total = -(-known_total // options.max_args)  # ceil

    jobs_cap = options.effective_jobs(known_total) if options.jobs == 0 else options.jobs
    slots = SlotPool(jobs_cap)
    halt = HaltTracker(options.halt_spec, total_jobs=known_total)

    joblog: Optional[JoblogWriter] = None
    skip: set[int] = set()
    if options.joblog:
        if options.resume:
            skip = completed_seqs(options.joblog, include_failed=not options.resume_failed)
        joblog = JoblogWriter(options.joblog, append=options.resume)

    results_writer = ResultsWriter(options.results) if options.results else None
    sequencer = OutputSequencer(emit or (lambda r, text: None), options)

    summary = RunSummary()

    def notify_progress() -> None:
        if progress is None:
            return
        from repro.core.progress import Progress

        progress(
            Progress(
                done=len(summary.results) + summary.n_skipped,
                failed=summary.n_failed,
                total=known_total,
                elapsed=time.time() - wall_start,
            )
        )

    done_q: "queue.Queue[tuple[str, Job, Optional[JobResult]]]" = queue.Queue()
    retry_q: deque[Job] = deque()
    active = 0
    halted_soon = False
    seq_counter = itertools.count(1)
    wall_start = time.time()
    last_dispatch = -float("inf")

    def describe(args: ArgGroup, seq: int, slot: int) -> str:
        if template is not None:
            if options.pipe_mode:
                # --pipe: the block goes to stdin, not the command line.
                return template.render(("",), seq=seq, slot=slot).rstrip()
            return template.render(args, seq=seq, slot=slot, quote=options.quote)
        return f"{getattr(backend, 'func', backend)!r}({', '.join(args)})"

    # --timeout: fixed seconds, or N% of the median runtime seen so far
    # (GNU Parallel's dynamic form; needs >= 3 completed jobs to engage).
    runtimes: list[float] = []
    runtimes_lock = threading.Lock()

    def effective_timeout() -> Optional[float]:
        if options.timeout_s is not None:
            return options.timeout_s
        if options.timeout_pct is not None:
            with runtimes_lock:
                if len(runtimes) >= 3:
                    return statistics.median(runtimes) * options.timeout_pct
        return None

    # --load: stall dispatch while the 1-minute load average is too high.
    load_probe = options.load_probe or (
        (lambda: os.getloadavg()[0]) if hasattr(os, "getloadavg") else (lambda: 0.0)
    )

    # --memfree: stall dispatch while available memory is too low.
    mem_probe = options.memfree_probe or _read_mem_available

    def wait_for_load() -> None:
        if options.max_load is not None:
            while load_probe() > options.max_load:
                time.sleep(0.05)
        if options.memfree is not None:
            while mem_probe() < options.memfree:
                time.sleep(0.05)

    def worker(job: Job, slot: int) -> None:
        try:
            result = backend.run_job(job, slot, options, timeout=effective_timeout())
            if result.state == JobState.SUCCEEDED:
                with runtimes_lock:
                    runtimes.append(result.runtime)
        except Exception as exc:  # backend bug; convert to a failed result
            now = time.time()
            result = JobResult(
                seq=job.seq,
                args=job.args,
                command=job.command,
                exit_code=126,
                stderr=f"backend error: {exc!r}",
                start_time=now,
                end_time=now,
                slot=slot,
                host=backend.host,
                attempt=job.attempt,
                state=JobState.FAILED,
            )
        finally:
            slots.release(slot)
        done_q.put((_DONE, job, result))

    def next_job() -> Optional[Job]:
        """Next dispatchable job: retries first, then fresh input."""
        if retry_q:
            return retry_q.popleft()
        for args in groups:
            seq = next(seq_counter)
            if seq in skip:
                summary.n_skipped += 1
                sequencer.skip(seq)
                continue
            return Job(seq=seq, args=args)
        return None

    pending: Optional[Job] = next_job()
    exhausted = pending is None

    while pending is not None or active > 0:
        can_dispatch = (
            pending is not None
            and not halted_soon
            and not halt.triggered
        )
        if can_dispatch:
            slot = slots.acquire(blocking=False)
            if slot is None:
                # All slots busy: wait for a completion, then loop.
                kind, job, result = done_q.get()
                active -= 1
                _handle_completion(
                    job, result, options, halt, retry_q, summary,
                    sequencer, joblog, results_writer,
                )
                notify_progress()
                if halt.triggered:
                    halted_soon = True
                    if halt.kill_running:
                        backend.cancel_all()
                continue
            # Pace dispatches per --delay and throttle on --load.
            if options.delay > 0:
                gap = time.time() - last_dispatch
                if gap < options.delay:
                    time.sleep(options.delay - gap)
            wait_for_load()
            # Retries outrank fresh input at every dispatch point (a failed
            # job must not starve behind a stream of new work).
            if retry_q:
                job = retry_q.popleft()
            else:
                job, pending = pending, None
            job.attempt += 1
            if options.pipe_mode and job.stdin_data is None:
                job.stdin_data = job.args[0]
                job.args = (f"<block {job.seq}>",)
            job.command = describe(job.args, job.seq, slot)
            job.state = JobState.RUNNING
            last_dispatch = time.time()
            summary.n_dispatched += 1
            if options.dry_run:
                slots.release(slot)
                now = time.time()
                result = JobResult(
                    seq=job.seq, args=job.args, command=job.command,
                    exit_code=0, start_time=now, end_time=now, slot=slot,
                    host=backend.host, attempt=job.attempt,
                    state=JobState.SUCCEEDED, stdout=job.command + "\n",
                )
                _handle_completion(
                    job, result, options, halt, retry_q, summary,
                    sequencer, joblog, results_writer, dry_run=True,
                )
                notify_progress()
            else:
                threading.Thread(target=worker, args=(job, slot), daemon=True).start()
                active += 1
            if pending is None:
                pending = next_job()
            if pending is None:
                exhausted = True
            continue

        if active > 0:
            kind, job, result = done_q.get()
            active -= 1
            _handle_completion(
                job, result, options, halt, retry_q, summary,
                sequencer, joblog, results_writer,
            )
            notify_progress()
            if halt.triggered:
                halted_soon = True
                if halt.kill_running:
                    backend.cancel_all()
            if pending is None and retry_q and not halted_soon:
                pending = retry_q.popleft()
            continue

        if pending is not None and (halted_soon or halt.triggered):
            break  # input remains but we must not start it
        break

    summary.halted = halt.triggered
    summary.halt_reason = halt.reason
    summary.wall_time = time.time() - wall_start
    if joblog is not None:
        joblog.close()
    backend.close()
    return summary


def _handle_completion(
    job: Job,
    result: Optional[JobResult],
    options: Options,
    halt: HaltTracker,
    retry_q: deque[Job],
    summary: RunSummary,
    sequencer: OutputSequencer,
    joblog: Optional[JoblogWriter],
    results_writer: Optional[ResultsWriter],
    dry_run: bool = False,
) -> None:
    assert result is not None
    if joblog is not None and not dry_run:
        joblog.write(result)
    if (
        not dry_run
        and result.state in (JobState.FAILED, JobState.TIMED_OUT)
        and should_retry(job, result.exit_code, options.retries)
        and not halt.triggered
    ):
        job.state = JobState.PENDING
        retry_q.append(job)
        return
    job.state = result.state
    summary.results.append(result)
    if result.state == JobState.SUCCEEDED:
        summary.n_succeeded += 1
    elif result.state in (JobState.FAILED, JobState.TIMED_OUT):
        summary.n_failed += 1
    halt.record(result.state)
    if results_writer is not None and not dry_run:
        results_writer.write(result)
    sequencer.push(result)
