"""Streaming run statistics for the dispatch hot path.

The dynamic ``--timeout N%`` form needs the median runtime of all
successful jobs *so far*, queried once per dispatched job.  Recomputing
``statistics.median`` over a growing list is O(n log n) per job — the
kind of per-job cost the paper's low-overhead claim rules out.  The
classic two-heap scheme keeps the running median at O(log n) insert and
O(1) query, with O(1) amortized memory churn.
"""

from __future__ import annotations

import heapq

__all__ = ["StreamingMedian"]


class StreamingMedian:
    """Running median over a stream: O(log n) push, O(1) median.

    The lower half lives in a max-heap (stored negated), the upper half
    in a min-heap; the halves are rebalanced so ``len(lo)`` is either
    equal to ``len(hi)`` or one larger.  Matches ``statistics.median``:
    the middle element for odd counts, the mean of the two middle
    elements for even counts.
    """

    __slots__ = ("_lo", "_hi")

    def __init__(self) -> None:
        self._lo: list[float] = []  # max-heap (negated): lower half
        self._hi: list[float] = []  # min-heap: upper half

    def push(self, value: float) -> None:
        """Add one observation."""
        if self._lo and value > -self._lo[0]:
            heapq.heappush(self._hi, value)
        else:
            heapq.heappush(self._lo, -value)
        if len(self._lo) > len(self._hi) + 1:
            heapq.heappush(self._hi, -heapq.heappop(self._lo))
        elif len(self._hi) > len(self._lo):
            heapq.heappush(self._lo, -heapq.heappop(self._hi))

    def median(self) -> float:
        """The current median; raises ``ValueError`` on an empty stream."""
        if not self._lo:
            raise ValueError("median of an empty stream")
        if len(self._lo) > len(self._hi):
            return -self._lo[0]
        return (-self._lo[0] + self._hi[0]) / 2.0

    def __len__(self) -> int:
        return len(self._lo) + len(self._hi)

    def __bool__(self) -> bool:
        return bool(self._lo)
