"""GNU Parallel replacement strings.

Implements the full set of *positional* and *path-manipulating* replacement
strings from GNU Parallel (``man parallel``, REPLACEMENT STRINGS):

===========  ==============================================================
``{}``       the input line, unchanged
``{.}``      input with its (last) extension removed
``{/}``      basename of input
``{//}``     dirname of input
``{/.}``     basename with extension removed
``{#}``      job sequence number (1-based)
``{%}``      job slot number (1-based) — the key to the paper's GPU
             isolation idiom (``HIP_VISIBLE_DEVICES=$(({%} - 1))``)
``{N}``      argument from the N-th input source (1-based)
``{N.}``     positional + extension removal, likewise ``{N/}``, ``{N//}``,
             ``{N/.}``
``{=expr=}`` **not supported** (requires embedded Perl); raises
             :class:`~repro.errors.TemplateError`
===========  ==============================================================

As in GNU Parallel, a command with *no* replacement string has ``{}``
appended implicitly.

The implementation tokenizes once at construction (``parse``) and renders
per job — rendering is on the engine's hot dispatch path, so no regex work
happens per job.
"""

from __future__ import annotations

import os
import re
import shlex
from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import TemplateError

__all__ = ["CommandTemplate", "render_token", "SEQ_TOKEN", "SLOT_TOKEN"]

#: Marker objects distinguishing literal text from replacement tokens.
SEQ_TOKEN = "{#}"
SLOT_TOKEN = "{%}"

# {}, {.}, {/}, {//}, {/.}, {#}, {%}, {3}, {3.}, {3/}, {3//}, {3/.},
# plus the engine-extension {host} (the executing sshlogin; renders as the
# literal "{host}" outside remote runs, so local output is unchanged).
_TOKEN_RE = re.compile(
    r"\{(?:(?P<host>host)|(?P<pos>\d+)?(?P<op>\.|/\.|//|/|#|%)?)\}"
)
_PERL_EXPR_RE = re.compile(r"\{=.*?=\}", re.DOTALL)


@dataclass(frozen=True)
class _Token:
    """One replacement token: optional 1-based position + path operation."""

    pos: int | None  # None = whole current argument group joined / arg 1
    op: str  # "", ".", "/", "//", "/.", "#", "%"


Piece = Union[str, _Token]


def _apply_op(value: str, op: str) -> str:
    """Apply a path-manipulation operation to one argument value."""
    if op == "":
        return value
    if op == ".":
        root, _ext = os.path.splitext(value)
        return root
    if op == "/":
        return os.path.basename(value)
    if op == "//":
        # GNU Parallel renders the dirname of a bare filename as ".",
        # where os.path.dirname gives "".
        return os.path.dirname(value) or "."
    if op == "/.":
        root, _ext = os.path.splitext(os.path.basename(value))
        return root
    raise TemplateError(f"unknown replacement operation {op!r}")


def render_token(
    token: _Token, args: Sequence[str], seq: int, slot: int,
    host: "str | None" = None,
) -> str:
    """Render a single token against an argument group."""
    if token.op == "#":
        return str(seq)
    if token.op == "%":
        return str(slot)
    if token.op == "host":
        # Outside a remote run there is no executing host: render the
        # literal text back, matching what GNU Parallel (which treats
        # {host} as plain text) would pass to the job.
        return host if host is not None else "{host}"
    if token.pos is None:
        # {} over a multi-source argument group joins with a space —
        # matches GNU Parallel when sources are linked/combined.
        if len(args) == 1:
            return _apply_op(args[0], token.op)
        return " ".join(_apply_op(a, token.op) for a in args)
    index = token.pos - 1
    if index < 0 or index >= len(args):
        raise TemplateError(
            f"replacement {{{token.pos}}} out of range for {len(args)} input source(s)"
        )
    return _apply_op(args[index], token.op)


def _compile_token(token: _Token):
    """One token → one render closure ``(args, seq, slot, host) -> str``.

    All per-token decisions (positional index, path operation, seq/slot
    kind) are taken here, once per template, so per-render work is a
    plain call.  Out-of-range positionals surface as IndexError — the
    caller falls back to the checked path for the precise TemplateError.
    """
    op = token.op
    if op == "#":
        return lambda args, seq, slot, host: str(seq)
    if op == "%":
        return lambda args, seq, slot, host: str(slot)
    if op == "host":
        return lambda args, seq, slot, host: host if host is not None else "{host}"
    pos = token.pos
    if pos is not None:
        index = pos - 1
        if index < 0:

            def bad(args, seq, slot, host, pos=pos):
                raise TemplateError(
                    f"replacement {{{pos}}} out of range for "
                    f"{len(args)} input source(s)"
                )

            return bad
        if op == "":
            return lambda args, seq, slot, host, i=index: args[i]
        return lambda args, seq, slot, host, i=index, op=op: _apply_op(args[i], op)
    if op == "":

        def whole(args, seq, slot, host):
            return args[0] if len(args) == 1 else " ".join(args)

        return whole

    def whole_op(args, seq, slot, host, op=op):
        if len(args) == 1:
            return _apply_op(args[0], op)
        return " ".join(_apply_op(a, op) for a in args)

    return whole_op


class CommandTemplate:
    """A parsed command template, renderable per job.

    Parameters
    ----------
    command:
        Either a single shell-command string (tokens substituted textually,
        as GNU Parallel does) or a pre-split argv list (substitution happens
        per argv element; safer, no shell interpretation).
    """

    def __init__(self, command: Union[str, Sequence[str]], implicit_append: bool = True):
        if isinstance(command, str):
            self._argv_mode = False
            self._pieces: list[Piece] = self._parse(command)
            self._source = command
        else:
            command = list(command)
            if not command:
                raise TemplateError("empty command")
            self._argv_mode = True
            self._argv_pieces = [self._parse(word) for word in command]
            self._source = shlex.join(command)
            self._pieces = [p for word in self._argv_pieces for p in word]
        if implicit_append and not self.has_any_token:
            # GNU Parallel appends the input only when the command contains
            # no replacement string at all ({#}/{%} count as replacement
            # strings even though they don't consume the input).
            if self._argv_mode:
                self._argv_pieces.append([_Token(None, "")])
                self._pieces = [p for word in self._argv_pieces for p in word]
            else:
                self._pieces = self._pieces + [" ", _Token(None, "")]
        self._compile()

    def _compile(self) -> None:
        """Precompile the render plan (rendering is the per-job hot path).

        String mode compiles to a ``%``-format string plus one closure per
        token, so an unquoted render is one list comprehension over
        argument-free-as-possible callables and one C-level interpolation
        — no per-render token dispatch (the branch chain the per-token
        ``op`` tests used to cost, measurable at bench_template scale).
        A template with no tokens at all renders to a cached constant.
        Argv mode precomputes which words are static so only token-bearing
        words are re-rendered per job.
        """
        self._tokens: tuple[_Token, ...] = tuple(
            p for p in self._pieces if isinstance(p, _Token)
        )
        if self._argv_mode:
            self._argv_plan: list[Union[str, list[Piece]]] = [
                word
                if any(isinstance(p, _Token) for p in word)
                else "".join(word)  # type: ignore[arg-type]
                for word in self._argv_pieces
            ]
            self._fmt = ""
            self._fns: tuple = ()
            self._static: str | None = None
        else:
            self._fmt = "".join(
                "%s" if isinstance(p, _Token) else p.replace("%", "%%")
                for p in self._pieces
            )
            self._fns = tuple(_compile_token(t) for t in self._tokens)
            self._static = None if self._tokens else "".join(self._pieces)  # type: ignore[arg-type]

    @staticmethod
    def _parse(text: str) -> list[Piece]:
        if _PERL_EXPR_RE.search(text):
            raise TemplateError(
                "{=perl expression=} replacement strings are not supported "
                "(see DESIGN.md, out of scope)"
            )
        pieces: list[Piece] = []
        last = 0
        for m in _TOKEN_RE.finditer(text):
            if m.start() > last:
                pieces.append(text[last : m.start()])
            if m.group("host"):
                pieces.append(_Token(None, "host"))
                last = m.end()
                continue
            pos = int(m.group("pos")) if m.group("pos") else None
            op = m.group("op") or ""
            if pos is not None and op in ("#", "%"):
                raise TemplateError(f"positional {{{pos}{op}}} is not a valid token")
            pieces.append(_Token(pos, op))
            last = m.end()
        if last < len(text):
            pieces.append(text[last:])
        return pieces

    @property
    def source(self) -> str:
        """The original template text."""
        return self._source

    @property
    def has_any_token(self) -> bool:
        """True if the template contains any GNU replacement string.

        ``{host}`` is excluded: GNU Parallel treats it as literal text, so
        for the implicit-``{}``-append decision it must not count.
        """
        return any(
            isinstance(p, _Token) and p.op != "host" for p in self._pieces
        )

    @property
    def is_static(self) -> bool:
        """True when rendering is input-independent (no tokens at all).

        Only possible with ``implicit_append=False`` (``--pipe`` mode);
        the scheduler renders such a template exactly once per run.
        """
        return not any(isinstance(p, _Token) for p in self._pieces)

    @property
    def has_input_token(self) -> bool:
        """True if any token consumes the input argument(s)."""
        return any(
            isinstance(p, _Token) and p.op not in ("#", "%", "host")
            for p in self._pieces
        )

    @property
    def uses_slot(self) -> bool:
        """True if the template references ``{%}`` (GPU-isolation idiom)."""
        return any(isinstance(p, _Token) and p.op == "%" for p in self._pieces)

    def render(
        self,
        args: Sequence[str],
        seq: int = 1,
        slot: int = 1,
        quote: bool = False,
        host: "str | None" = None,
    ) -> str:
        """Render to a single shell-command string.

        ``quote=True`` (GNU Parallel ``-q``) shell-quotes every substituted
        input value, so arguments containing spaces, quotes, ``;`` or ``$``
        cannot be reinterpreted by the job's shell.  ``{#}``/``{%}`` are
        never quoted (they are always plain integers).  ``host`` fills
        ``{host}`` tokens (remote runs); None renders them back literally.
        """
        if self._argv_mode:
            return shlex.join(self.render_argv(args, seq, slot, host=host))
        if self._static is not None:
            return self._static
        if not quote:
            # The hot path: one closure call per token, one C-level
            # interpolation.  An out-of-range positional raises IndexError
            # here; fall through to the checked loop below, which re-walks
            # the tokens and raises the precise TemplateError.
            try:
                return self._fmt % tuple(
                    [f(args, seq, slot, host) for f in self._fns]
                )
            except IndexError:
                pass
        single = len(args) == 1
        values: list[str] = []
        for token in self._tokens:
            op = token.op
            if op == "#":
                values.append(str(seq))
                continue
            if op == "%":
                values.append(str(slot))
                continue
            if op == "host":
                values.append(host if host is not None else "{host}")
                continue
            if op == "" and single and token.pos is None:
                value = args[0]  # the dominant `cmd {}` case, zero calls
            else:
                value = render_token(token, args, seq, slot)
            values.append(shlex.quote(value) if quote else value)
        return self._fmt % tuple(values)

    def render_argv(
        self, args: Sequence[str], seq: int = 1, slot: int = 1,
        host: "str | None" = None,
    ) -> list[str]:
        """Render to an argv list (argv-mode templates only)."""
        if not self._argv_mode:
            raise TemplateError(
                "render_argv() requires a template built from an argv list"
            )
        argv: list[str] = []
        for entry in self._argv_plan:
            if isinstance(entry, str):  # static word, precomputed
                argv.append(entry)
                continue
            argv.append(
                "".join(
                    render_token(p, args, seq, slot, host=host)
                    if isinstance(p, _Token)
                    else p
                    for p in entry
                )
            )
        return argv

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommandTemplate({self._source!r})"
