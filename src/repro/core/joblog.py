"""``--joblog`` writing and ``--resume`` / ``--resume-failed`` reading.

The log format is byte-compatible with GNU Parallel's::

    Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand

so existing post-processing tooling (and GNU Parallel itself, for
cross-resume) can read our logs and vice versa.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, TextIO

from repro.core.job import JobResult

__all__ = [
    "JOBLOG_HEADER",
    "JoblogWriter",
    "JoblogEntry",
    "JoblogScan",
    "scan_joblog",
    "read_joblog",
    "completed_seqs",
]

JOBLOG_HEADER = "Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand"


@dataclass(frozen=True)
class JoblogEntry:
    """One parsed joblog line."""

    seq: int
    host: str
    start_time: float
    runtime: float
    send: int
    receive: int
    exitval: int
    signal: int
    command: str

    @property
    def ok(self) -> bool:
        return self.exitval == 0 and self.signal == 0


class JoblogWriter:
    """Appends joblog lines as jobs finish.  Thread-safe.

    Opens in append mode when resuming so prior history is preserved,
    matching GNU Parallel.

    Writes are batched: records accumulate in memory and reach the file
    (with an ``fh.flush()``) every ``flush_every`` records or
    ``flush_interval`` seconds, whichever comes first — per-record
    ``write+flush`` syscall pairs were a measurable per-job cost.  Each
    flush writes only whole lines, so a crash can tear at most the final
    record mid-``write(2)`` — exactly the damage the tolerant
    :func:`scan_joblog` / torn-tail sealing path already absorbs.
    ``flush_every=1`` restores the old flush-per-record behaviour.
    """

    def __init__(
        self,
        path: str,
        append: bool = False,
        flush_every: int = 32,
        flush_interval: float = 0.5,
    ):
        self.path = path
        self._lock = threading.Lock()
        self._buf: list[str] = []
        self._flush_every = max(1, flush_every)
        self._flush_interval = flush_interval
        self._last_flush = time.monotonic()
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        mode = "a" if append and exists else "w"
        torn_tail = False
        if mode == "a":
            # A run that died mid-write leaves a torn final record with no
            # newline; seal it so new records don't glue onto its tail.
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn_tail = fh.read(1) != b"\n"
        self._fh: Optional[TextIO] = open(path, mode, encoding="utf-8")
        if mode == "w":
            self._fh.write(JOBLOG_HEADER + "\n")
            self._fh.flush()
        elif torn_tail:
            self._fh.write("\n")
            self._fh.flush()

    def write(self, result: JobResult) -> None:
        """Record one finished job attempt."""
        line = "\t".join(
            [
                str(result.seq),
                result.host or "local",
                f"{result.start_time:.3f}",
                f"{result.runtime:.3f}",
                str(len(result.stdout.encode("utf-8", "replace")) if result.stdout else 0),
                str(len(result.stderr.encode("utf-8", "replace")) if result.stderr else 0),
                str(result.exit_code),
                "0",
                result.command.replace("\t", " ").replace("\n", " "),
            ]
        )
        with self._lock:
            if self._fh is None:
                return
            self._buf.append(line + "\n")
            now = time.monotonic()
            if (
                len(self._buf) >= self._flush_every
                or now - self._last_flush >= self._flush_interval
            ):
                self._flush_locked(now)

    def _flush_locked(self, now: float) -> None:
        if self._buf:
            self._fh.write("".join(self._buf))
            self._buf.clear()
        self._fh.flush()
        self._last_flush = now

    def flush(self) -> None:
        """Force buffered records to the file immediately."""
        with self._lock:
            if self._fh is not None:
                self._flush_locked(time.monotonic())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._flush_locked(time.monotonic())
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JoblogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JoblogScan:
    """Outcome of a tolerant joblog parse.

    A crashed run leaves a torn final record; disk corruption can garbage
    interior ones.  Rather than abort a ``--resume`` over damage that
    affects one line, the scan skips unparseable records and *counts*
    them — the skipped seqs simply re-run.
    """

    entries: list[JoblogEntry] = field(default_factory=list)
    n_malformed: int = 0
    #: 1-based file line numbers of the malformed records.
    malformed_lines: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every record parsed cleanly."""
        return self.n_malformed == 0


def scan_joblog(path: str) -> JoblogScan:
    """Tolerantly parse a joblog; missing file yields an empty scan."""
    scan = JoblogScan()
    if not os.path.exists(path):
        return scan
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("Seq\t"):
                continue
            parts = line.split("\t", 8)
            if len(parts) != 9:
                # Torn record from a crashed run: count it, don't crash.
                scan.n_malformed += 1
                scan.malformed_lines.append(lineno)
                continue
            try:
                scan.entries.append(
                    JoblogEntry(
                        seq=int(parts[0]),
                        host=parts[1],
                        start_time=float(parts[2]),
                        runtime=float(parts[3]),
                        send=int(parts[4]),
                        receive=int(parts[5]),
                        exitval=int(parts[6]),
                        signal=int(parts[7]),
                        command=parts[8],
                    )
                )
            except ValueError:
                scan.n_malformed += 1
                scan.malformed_lines.append(lineno)
    return scan


def read_joblog(path: str) -> list[JoblogEntry]:
    """Parse a joblog file; tolerates a missing file (returns []).

    Malformed records are skipped; use :func:`scan_joblog` to also count
    them.
    """
    return scan_joblog(path).entries


def completed_seqs(path: str, include_failed: bool = False) -> set[int]:
    """Sequence numbers to skip on resume.

    ``include_failed=False`` (``--resume-failed``) skips only successes;
    ``include_failed=True`` (plain ``--resume``) skips everything already
    attempted, success or failure — matching GNU Parallel, where plain
    ``--resume`` does not re-run failed jobs but ``--resume-failed`` does.
    """
    done: set[int] = set()
    for entry in read_joblog(path):
        if entry.ok or include_failed:
            done.add(entry.seq)
    return done
