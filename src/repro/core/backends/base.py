"""Execution backend interface.

A backend turns one :class:`~repro.core.job.Job` into a
:class:`~repro.core.job.JobResult`, blocking for the job's duration.  The
scheduler owns all concurrency; backends only know how to run one job.
"""

from __future__ import annotations

import abc

from repro.core.job import Job, JobResult
from repro.core.options import Options

__all__ = ["Backend"]


class Backend(abc.ABC):
    """Runs jobs; one instance is shared by all of a run's worker threads."""

    #: Reported in joblogs and results as the execution host.
    host: str = "local"

    #: Observability hook (a :class:`repro.obs.RunTracer`); None when the
    #: run is not being traced.  Backends emit point events through it
    #: (``self._tracer.instant(...)``) guarded by an ``is not None`` test.
    _tracer = None

    def bind_tracer(self, tracer) -> None:
        """Attach the run's tracer (called by the scheduler per run)."""
        self._tracer = tracer

    @abc.abstractmethod
    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        """Execute ``job`` to completion and return its result.

        ``timeout`` is the effective per-job wall-clock limit computed by
        the scheduler (seconds; None = unlimited) — backends must honour it
        by returning a TIMED_OUT result.  Backends must never raise for an
        ordinary job failure; failures are results, not exceptions.
        """

    def prepare_run(self, options: Options) -> None:
        """One-time per-run setup, called by the scheduler before dispatch.

        Backends hoist per-job-invariant work here — merged environments,
        process pools — so nothing constant is recomputed on the per-job
        hot path.  Default: nothing.
        """

    def cancel_all(self) -> None:
        """Best-effort termination of everything in flight (``--halt now``)."""

    def close(self) -> None:
        """Release backend resources after a run."""
