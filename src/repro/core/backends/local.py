"""Local shell backend: runs rendered commands as real subprocesses.

This is the engine's production path — functionally the same as what GNU
Parallel does (fork + exec via the shell), with output capture, timeouts,
working-directory and niceness support, and kill-on-halt.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import tempfile
import threading
import time

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import TMPDIR_WORKDIR, Options

__all__ = ["LocalShellBackend"]


class LocalShellBackend(Backend):
    """Executes each job's command string through ``/bin/sh -c``.

    Each spawned process gets its own process group so that ``--halt now``
    and timeouts kill the whole job tree, not just the shell.
    """

    def __init__(self, shell: str = "/bin/sh"):
        self.shell = shell
        self.host = os.uname().nodename if hasattr(os, "uname") else "local"
        self._procs: dict[int, subprocess.Popen] = {}
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        #: Per-run merged environment cache (``prepare_run``): copying
        #: ``os.environ`` per job is pure hot-path waste.  The Options the
        #: cache was built from is held by strong reference and compared
        #: with ``is`` — an id() key can collide after a collection.
        self._run_env: dict[str, str] | None = None
        self._run_opts: Options | None = None
        #: Lazily-created ``--wd ...`` per-run tempdir, removed in close().
        self._tmp_workdir: str | None = None

    def prepare_run(self, options: Options) -> None:
        self._run_env = self._merged_env(options)
        self._run_opts = options

    @staticmethod
    def _merged_env(options: Options) -> dict[str, str] | None:
        if not options.env:
            return None  # inherit, no copy at all
        env = dict(os.environ)
        env.update(options.env)
        return env

    def _env_for(self, options: Options) -> dict[str, str] | None:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # fall back to computing-and-caching on first use per options.
        if self._run_opts is not options:
            self._run_env = self._merged_env(options)
            self._run_opts = options
        return self._run_env

    def _cwd_for(self, options: Options) -> str | None:
        """Resolve ``--wd`` for this job; ``...`` = one shared per-run
        tempdir (created lazily, removed in :meth:`close`)."""
        if options.workdir != TMPDIR_WORKDIR:
            return options.workdir
        with self._lock:
            if self._tmp_workdir is None:
                self._tmp_workdir = tempfile.mkdtemp(prefix="repro-wd-")
            return self._tmp_workdir

    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        if self._cancelled.is_set():
            return self._result(job, slot, -1, "", "", time.time(), time.time(), JobState.KILLED)

        env = self._env_for(options)
        cwd = self._cwd_for(options)

        start = time.time()
        try:
            # start_new_session (setsid in the child, after fork) replaces
            # the old preexec_fn path: preexec_fn runs arbitrary Python
            # between fork and exec, which is both slow (it forces
            # single-threaded fork bookkeeping in CPython) and unsafe under
            # a threaded dispatcher.  The child is its own session (and
            # thus process-group) leader, so kill-by-group still covers the
            # whole job tree.
            proc = subprocess.Popen(
                [self.shell, "-c", job.command],
                stdin=subprocess.PIPE if job.stdin_data is not None else subprocess.DEVNULL,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=cwd,
                env=env,
                text=True,
                start_new_session=(os.name == "posix"),
            )
        except OSError as exc:
            end = time.time()
            return self._result(
                job, slot, 127, "", f"spawn failed: {exc}", start, end, JobState.FAILED
            )
        if self._tracer is not None:
            self._tracer.instant(
                "proc_spawn", seq=job.seq, slot=slot, pid=proc.pid
            )
        if options.nice is not None and hasattr(os, "setpriority"):
            # Applied from the parent right after spawn (no preexec_fn);
            # the first few ms of the job may run un-niced, an accepted
            # trade for keeping fork+exec on the fast path.  PRIO_PGRP
            # (the child is its own group leader) covers helpers the
            # shell already forked, which PRIO_PROCESS would race.
            try:
                os.setpriority(os.PRIO_PGRP, proc.pid, options.nice)
            except OSError:
                pass

        with self._lock:
            self._procs[proc.pid] = proc
            cancelled = self._cancelled.is_set()
        if cancelled:
            # cancel_all ran between the entry check and registration: its
            # snapshot missed this process, so deliver the kill ourselves.
            self._kill_group(proc)
        try:
            try:
                stdout, stderr = proc.communicate(
                    input=job.stdin_data, timeout=timeout
                )
                state = JobState.SUCCEEDED if proc.returncode == 0 else JobState.FAILED
            except subprocess.TimeoutExpired:
                self._kill_group(proc)
                if self._tracer is not None:
                    self._tracer.instant(
                        "proc_timeout_kill", seq=job.seq, slot=slot,
                        pid=proc.pid, timeout=timeout,
                    )
                stdout, stderr = proc.communicate()
                state = JobState.TIMED_OUT
        finally:
            with self._lock:
                self._procs.pop(proc.pid, None)
        end = time.time()
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return self._result(job, slot, proc.returncode, stdout, stderr, start, end, state)

    def cancel_all(self) -> None:
        self._cancelled.set()
        with self._lock:
            procs = list(self._procs.values())
        if self._tracer is not None:
            self._tracer.instant("cancel_all", n_procs=len(procs))
        for proc in procs:
            self._kill_group(proc)

    @staticmethod
    def _kill_group(proc: subprocess.Popen) -> None:
        try:
            if os.name == "posix":
                os.killpg(proc.pid, signal.SIGTERM)
            else:  # pragma: no cover - non-posix fallback
                proc.terminate()
        except (ProcessLookupError, PermissionError):
            pass

    def close(self) -> None:
        with self._lock:
            tmp, self._tmp_workdir = self._tmp_workdir, None
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    def _result(
        self,
        job: Job,
        slot: int,
        code: int,
        stdout: str,
        stderr: str,
        start: float,
        end: float,
        state: JobState,
    ) -> JobResult:
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=code,
            stdout=stdout,
            stderr=stderr,
            start_time=start,
            end_time=end,
            slot=slot,
            host=self.host,
            attempt=job.attempt,
            state=state,
        )
