"""Local shell backend: runs rendered commands as real subprocesses.

This is the engine's production path — functionally the same as what GNU
Parallel does (fork + exec via the shell), with output capture, timeouts,
working-directory and niceness support, and kill-on-halt.

Two spawn paths share the same semantics (``--spawn-path`` selects):

``posix`` (the default on capable platforms)
    ``os.posix_spawn`` with ``POSIX_SPAWN_SETSID`` and argv/env vectors
    pre-built once per run (:class:`~repro.core.backends.spawn.SpawnLauncher`),
    with every job's stdout/stderr multiplexed through one shared
    ``selectors`` loop (:class:`~repro.core.backends.reaper.PipeReaper`)
    instead of a blocking per-job ``communicate()``.  This removes the
    userspace share of per-job dispatch cost; what remains is the
    kernel's own fork/exec ceiling (see DESIGN.md, "Dispatch overhead
    anatomy").

``popen``
    The ``subprocess.Popen(start_new_session=True)`` path — the
    conservative reference implementation, and the automatic fallback
    whenever a feature combination needs it:

    ======================  ============================================
    condition               why Popen
    ======================  ============================================
    non-POSIX platform or   ``posix_spawn``/``POSIX_SPAWN_SETSID``
    old libc                unavailable (probed once)
    ``--wd``                ``posix_spawn`` has no working-directory
                            attribute
    ``--pipe`` /            per-job stdin needs ``communicate()``'s
    ``job.stdin_data``      write-side backpressure handling
    reaper loop died        defensive: the shared loop failed mid-run
    ======================  ============================================

Both paths keep the kill-by-process-group contract (``--halt now``,
``--timeout``), ``--nice`` via post-spawn ``setpriority(PRIO_PGRP)``,
output capture/ordering, and ``--tag``; the posix path additionally
streams ``--linebuffer`` output line-by-line as it arrives.

``--dispatchers N`` (N > 1) lifts both in-process paths onto the sharded
:class:`~repro.core.backends.pool.DispatcherPool`: N worker processes
each run a private launcher+reaper and the backend's ``run_job`` becomes
a thin dispatch-and-wait over the shard pipe.  Result decoding, state
mapping and everything above (sequencer, joblog, retries, halt) stay in
this process, so sharded output is byte-identical to ``--dispatchers 1``.
Unsupported combinations (``--wd``, ``--pipe``, ``--linebuffer``,
non-POSIX) silently resolve to a single in-process dispatcher, and a pool
whose every shard has died falls back to the in-process Popen path.
"""

from __future__ import annotations

import locale
import os
import shutil
import signal
import subprocess
import tempfile
import threading
import time

from repro.core.backends.base import Backend
from repro.core.backends.pool import DispatcherPool, pool_supported
from repro.core.backends.reaper import PipeReaper
from repro.core.backends.spawn import SpawnLauncher, spawn_supported
from repro.core.job import Job, JobResult, JobState
from repro.core.options import TMPDIR_WORKDIR, Options

__all__ = ["LocalShellBackend"]


def _universal_newlines(text: str) -> str:
    """The translation ``Popen(text=True)`` applies to captured output."""
    if "\r" not in text:
        return text
    return text.replace("\r\n", "\n").replace("\r", "\n")


class LocalShellBackend(Backend):
    """Executes each job's command string through ``/bin/sh -c``.

    Each spawned process gets its own process group so that ``--halt now``
    and timeouts kill the whole job tree, not just the shell.
    """

    def __init__(self, shell: str = "/bin/sh"):
        self.shell = shell
        self.host = os.uname().nodename if hasattr(os, "uname") else "local"
        #: In-flight processes by pid; the value is the pid again (posix
        #: spawn path) or the Popen object (popen path) — kill-by-group
        #: only needs the key.
        self._procs: dict[int, object] = {}
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        #: Per-run merged environment cache (``prepare_run``): copying
        #: ``os.environ`` per job is pure hot-path waste.  The Options the
        #: cache was built from is held by strong reference and compared
        #: with ``is`` — an id() key can collide after a collection.
        self._run_env: dict[str, str] | None = None
        self._run_opts: Options | None = None
        #: Lazily-created ``--wd ...`` per-run tempdir, removed in close().
        self._tmp_workdir: str | None = None
        #: posix_spawn fast path state (built per run by prepare_run).
        self._launcher: SpawnLauncher | None = None
        self._reaper: PipeReaper | None = None
        self._use_spawn = False
        #: Sharded dispatch state (``--dispatchers N``, N > 1): worker
        #: processes each running a private launcher+reaper (see
        #: ``repro.core.backends.pool``).
        self._pool: DispatcherPool | None = None
        self._dispatchers = 1
        self._pool_posix = False
        self._encoding = locale.getpreferredencoding(False)

    def prepare_run(self, options: Options) -> None:
        self._run_env = self._merged_env(options)
        self._run_opts = options
        self._setup_spawn_path(options)

    def _setup_spawn_path(self, options: Options) -> None:
        """Decide the spawn path for this run and build its machinery."""
        n_disp = 1
        if hasattr(options, "effective_dispatchers"):
            n_disp = options.effective_dispatchers()
        sharded = (
            n_disp > 1
            and pool_supported()
            and options.workdir is None  # workers have no --wd plumbing
            and not options.pipe_mode  # per-job stdin stays in-process
            and not options.linebuffer  # line streaming stays in-process
        )
        if self._pool is not None:
            # A previous run's pool: dispatcher count or options changed,
            # or this run is unsharded — rebuild from scratch either way
            # (worker env/shard count are baked in at start()).
            self._pool.close()
            self._pool = None
        if sharded:
            self._dispatchers = n_disp
            self._pool_posix = (
                getattr(options, "spawn_path", "auto") != "popen"
                and spawn_supported()
            )
            self._use_spawn = False  # jobs go to workers, not in-process
            batch = 1
            if hasattr(options, "effective_rpc_batch"):
                batch = options.effective_rpc_batch()
            self._pool = DispatcherPool(
                n_disp,
                shell=self.shell,
                env=self._run_env,
                use_posix=self._pool_posix,
                nice=options.nice,
                on_event=self._pool_event,
                batch=batch,
            )
            self._pool.start()
            return
        self._dispatchers = 1
        self._use_spawn = (
            getattr(options, "spawn_path", "auto") != "popen"
            and spawn_supported()
            and options.workdir is None  # posix_spawn has no cwd attribute
            and not options.pipe_mode  # per-job stdin: communicate() path
        )
        if self._use_spawn:
            if self._launcher is not None:
                self._launcher.close()
            self._launcher = SpawnLauncher(self.shell, env=self._run_env)
            if self._reaper is None:
                self._reaper = PipeReaper()

    def _pool_event(self, name: str, shard: int, n: int) -> None:
        """Pool event hook → trace instant.

        ``rpc_frame`` instants carry the frame's record count (the
        per-shard frame-size series that makes batching behavior visible
        in the Chrome trace); ``dispatcher_death`` carries the number of
        re-queued jobs.
        """
        if self._tracer is None:
            return
        if name == "rpc_frame":
            self._tracer.instant(name, shard=shard, n_jobs=n, lane=shard + 1)
        else:
            self._tracer.instant(name, shard=shard, requeued=n)

    def intern_template(self, template, options: Options) -> None:
        """Ship the command template to the dispatcher shards once.

        Only string-mode templates with replacement tokens qualify:
        argv-mode rendering goes through ``shlex.join`` quoting that a
        worker-side string rebuild would not reproduce, and ``--pipe``
        rewrites the argument at dispatch time.  Unsupported shapes
        simply keep sending raw rendered commands — a cost difference,
        never a semantic one.
        """
        if self._pool is None or template is None:
            return
        if getattr(template, "_argv_mode", True):
            return
        if not getattr(template, "has_any_token", False):
            return
        if getattr(options, "pipe_mode", False):
            return
        self._pool.intern_template(template.source, quote=options.quote)

    def control_plane_stats(self) -> dict:
        """RPC frame counters for the run summary (empty when unsharded)."""
        if self._pool is None:
            return {}
        return self._pool.stats()

    @property
    def spawn_path(self) -> str:
        """The path the current run resolved to (``"posix"``/``"popen"``)."""
        if self._pool is not None:
            return "posix" if self._pool_posix else "popen"
        return "posix" if self._use_spawn else "popen"

    @property
    def dispatchers(self) -> int:
        """Dispatcher shard count the current run resolved to."""
        return self._dispatchers if self._pool is not None else 1

    @property
    def rpc_batch(self) -> int:
        """RPC frame size the current run resolved to (1 = unbatched)."""
        return self._pool.batch if self._pool is not None else 1

    @staticmethod
    def _merged_env(options: Options) -> dict[str, str] | None:
        if not options.env:
            return None  # inherit, no copy at all
        env = dict(os.environ)
        env.update(options.env)
        return env

    def _env_for(self, options: Options) -> dict[str, str] | None:
        # Direct run_job callers (tests, wrappers) may skip prepare_run;
        # fall back to computing-and-caching on first use per options.
        if self._run_opts is not options:
            self._run_env = self._merged_env(options)
            self._run_opts = options
            self._setup_spawn_path(options)
        return self._run_env

    def _cwd_for(self, options: Options) -> str | None:
        """Resolve ``--wd`` for this job; ``...`` = one shared per-run
        tempdir (created lazily, removed in :meth:`close`)."""
        if options.workdir != TMPDIR_WORKDIR:
            return options.workdir
        with self._lock:
            if self._tmp_workdir is None:
                self._tmp_workdir = tempfile.mkdtemp(prefix="repro-wd-")
            return self._tmp_workdir

    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        if self._cancelled.is_set():
            return self._result(job, slot, -1, "", "", time.time(), time.time(), JobState.KILLED)

        env = self._env_for(options)

        if (
            self._pool is not None
            and self._pool.alive
            and job.stdin_data is None
        ):
            # Sharded dispatch.  A pool whose every shard has died drops
            # through to the in-process Popen path — the last rung of the
            # fallback ladder keeps the run completing on this thread.
            return self._run_job_sharded(job, slot, options, timeout)
        if (
            self._use_spawn
            and job.stdin_data is None
            and self._reaper is not None
            and self._reaper.alive
        ):
            return self._run_job_spawn(job, slot, options, timeout)
        return self._run_job_popen(job, slot, options, timeout, env)

    # -- sharded dispatch path ------------------------------------------------
    def _run_job_sharded(
        self, job: Job, slot: int, options: Options, timeout: float | None
    ) -> JobResult:
        pool = self._pool
        assert pool is not None
        start = time.time()
        # args/seq/slot ride along so an interned-template pool can send
        # the argument delta instead of the rendered command; the worker
        # re-render is byte-identical to job.command by construction.
        reply = pool.run(
            job.command, timeout=timeout, cancelled=self._cancelled,
            args=job.args, seq=job.seq, slot=slot,
        )
        end = time.time()
        if reply.kind == "lost":
            # Every shard died with this job in flight: the loss is an
            # infrastructure fault, not a job outcome.  Re-run in-process
            # on the Popen rung — the same at-least-once re-execution
            # contract the cross-shard re-queue already gives.
            return self._run_job_popen(
                job, slot, options, timeout, self._run_env
            )
        if reply.kind != "done":
            # "err": the worker's spawn itself failed (exit 127, same
            # contract as the in-process spawn-failure arm).
            message = reply.stderr.decode(self._encoding, errors="replace")
            return self._result(
                job, slot, 127, "", message, start, end, JobState.FAILED
            )
        if self._tracer is not None:
            # One span per job on the worker's timeline: lane k+1 groups
            # each shard's jobs under its own pid row in the Chrome trace
            # (lane 0 is the scheduler process itself).
            self._tracer.span(
                "spawn", reply.start, reply.start + reply.spawn_dur,
                seq=job.seq, slot=slot, path=self.spawn_path, pid=reply.pid,
                shard=reply.shard, lane=reply.shard + 1,
                lane_name=f"dispatcher {reply.shard}",
            )
        stdout = _universal_newlines(reply.stdout.decode(self._encoding))
        stderr = _universal_newlines(reply.stderr.decode(self._encoding))
        if reply.timed_out:
            state = JobState.TIMED_OUT
        elif reply.returncode == 0:
            state = JobState.SUCCEEDED
        else:
            state = JobState.FAILED
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return self._result(
            job, slot, reply.returncode, stdout, stderr,
            reply.start or start, reply.end or end, state,
        )

    # -- posix_spawn fast path ----------------------------------------------
    def _run_job_spawn(
        self, job: Job, slot: int, options: Options, timeout: float | None
    ) -> JobResult:
        launcher, reaper = self._launcher, self._reaper
        assert launcher is not None and reaper is not None
        start = time.time()
        try:
            pid, out_r, err_r = launcher.spawn(job.command)
        except OSError as exc:
            end = time.time()
            return self._result(
                job, slot, 127, "", f"spawn failed: {exc}", start, end, JobState.FAILED
            )
        spawned = time.time()
        if self._tracer is not None:
            self._tracer.span(
                "spawn", start, spawned, seq=job.seq, slot=slot,
                path="posix", pid=pid,
            )
        try:
            handle = reaper.register(
                pid, out_r, err_r,
                stream=getattr(job, "stream", None),
                encoding=self._encoding,
            )
        except RuntimeError:
            # The reaper closed between the alive check and registration;
            # collect this one job inline, then future jobs fall back.
            os.close(out_r)
            os.close(err_r)
            _, status = os.waitpid(pid, 0)
            end = time.time()
            return self._result(
                job, slot, os.waitstatus_to_exitcode(status), "",
                "reaper shut down mid-run", start, end, JobState.FAILED,
            )
        self._apply_nice(options, pid)

        with self._lock:
            self._procs[pid] = pid
            cancelled = self._cancelled.is_set()
        if cancelled:
            # cancel_all ran between the entry check and registration: its
            # snapshot missed this process, so deliver the kill ourselves.
            self._kill_group(pid)
        state = JobState.SUCCEEDED
        try:
            if not handle.wait(timeout):
                self._kill_group(pid)
                if self._tracer is not None:
                    self._tracer.instant(
                        "proc_timeout_kill", seq=job.seq, slot=slot,
                        pid=pid, timeout=timeout,
                    )
                handle.wait()
                state = JobState.TIMED_OUT
        finally:
            with self._lock:
                self._procs.pop(pid, None)
        reap_start = time.time()
        stdout = _universal_newlines(bytes(handle.stdout_buf).decode(self._encoding))
        stderr = _universal_newlines(bytes(handle.stderr_buf).decode(self._encoding))
        returncode = handle.returncode if handle.returncode is not None else -1
        if state is not JobState.TIMED_OUT and returncode != 0:
            state = JobState.FAILED
        end = time.time()
        if self._tracer is not None:
            self._tracer.span(
                "reap", reap_start, end, seq=job.seq, slot=slot, path="posix"
            )
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return self._result(job, slot, returncode, stdout, stderr, start, end, state)

    # -- Popen reference path ------------------------------------------------
    def _run_job_popen(
        self,
        job: Job,
        slot: int,
        options: Options,
        timeout: float | None,
        env: dict[str, str] | None,
    ) -> JobResult:
        cwd = self._cwd_for(options)

        start = time.time()
        try:
            # start_new_session (setsid in the child, after fork) replaces
            # the old preexec_fn path: preexec_fn runs arbitrary Python
            # between fork and exec, which is both slow (it forces
            # single-threaded fork bookkeeping in CPython) and unsafe under
            # a threaded dispatcher.  The child is its own session (and
            # thus process-group) leader, so kill-by-group still covers the
            # whole job tree.
            proc = subprocess.Popen(
                [self.shell, "-c", job.command],
                stdin=subprocess.PIPE if job.stdin_data is not None else subprocess.DEVNULL,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                cwd=cwd,
                env=env,
                text=True,
                start_new_session=(os.name == "posix"),
            )
        except OSError as exc:
            end = time.time()
            return self._result(
                job, slot, 127, "", f"spawn failed: {exc}", start, end, JobState.FAILED
            )
        spawned = time.time()
        if self._tracer is not None:
            self._tracer.span(
                "spawn", start, spawned, seq=job.seq, slot=slot,
                path="popen", pid=proc.pid,
            )
        self._apply_nice(options, proc.pid)

        with self._lock:
            self._procs[proc.pid] = proc
            cancelled = self._cancelled.is_set()
        if cancelled:
            # cancel_all ran between the entry check and registration: its
            # snapshot missed this process, so deliver the kill ourselves.
            self._kill_group(proc.pid)
        try:
            try:
                reap_start = time.time()
                stdout, stderr = proc.communicate(
                    input=job.stdin_data, timeout=timeout
                )
                state = JobState.SUCCEEDED if proc.returncode == 0 else JobState.FAILED
            except subprocess.TimeoutExpired:
                self._kill_group(proc.pid)
                if self._tracer is not None:
                    self._tracer.instant(
                        "proc_timeout_kill", seq=job.seq, slot=slot,
                        pid=proc.pid, timeout=timeout,
                    )
                stdout, stderr = proc.communicate()
                state = JobState.TIMED_OUT
        finally:
            with self._lock:
                self._procs.pop(proc.pid, None)
        end = time.time()
        if self._tracer is not None:
            # On this path collection is the blocking communicate(), so
            # the span includes the job's own runtime (documented).
            self._tracer.span(
                "reap", reap_start, end, seq=job.seq, slot=slot, path="popen"
            )
        if self._cancelled.is_set() and state is JobState.FAILED:
            state = JobState.KILLED
        return self._result(job, slot, proc.returncode, stdout, stderr, start, end, state)

    # -- shared helpers ------------------------------------------------------
    def _apply_nice(self, options: Options, pid: int) -> None:
        if options.nice is not None and hasattr(os, "setpriority"):
            # Applied from the parent right after spawn (no preexec_fn);
            # the first few ms of the job may run un-niced, an accepted
            # trade for keeping fork+exec on the fast path.  PRIO_PGRP
            # (the child is its own group leader) covers helpers the
            # shell already forked, which PRIO_PROCESS would race.
            try:
                os.setpriority(os.PRIO_PGRP, pid, options.nice)
            except OSError:
                pass

    def cancel_all(self) -> None:
        self._cancelled.set()
        with self._lock:
            pids = list(self._procs)
        if self._tracer is not None:
            self._tracer.instant("cancel_all", n_procs=len(pids))
        for pid in pids:
            self._kill_group(pid)
        if self._pool is not None:
            # Cancellation fan-out: each shard SIGTERMs every job group it
            # owns (jobs mid-dispatch are covered by run_job's post-send
            # cancelled check).
            self._pool.kill_all()

    @staticmethod
    def _kill_group(pid: int) -> None:
        try:
            if os.name == "posix":
                os.killpg(pid, signal.SIGTERM)
            else:  # pragma: no cover - non-posix fallback
                os.kill(pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass

    def close(self) -> None:
        with self._lock:
            tmp, self._tmp_workdir = self._tmp_workdir, None
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
        if self._reaper is not None:
            self._reaper.close()
            self._reaper = None
        if self._launcher is not None:
            self._launcher.close()
            self._launcher = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._use_spawn = False

    def _result(
        self,
        job: Job,
        slot: int,
        code: int,
        stdout: str,
        stderr: str,
        start: float,
        end: float,
        state: JobState,
    ) -> JobResult:
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=code,
            stdout=stdout,
            stderr=stderr,
            start_time=start,
            end_time=end,
            slot=slot,
            host=self.host,
            attempt=job.attempt,
            state=state,
        )
