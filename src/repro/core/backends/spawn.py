"""Low-overhead process launcher built on ``os.posix_spawn``.

``subprocess.Popen(start_new_session=True)`` forces a full ``fork()`` in
CPython (a session-setting ``preexec`` step disables the vfork/posix_spawn
fast paths) and builds a Python-level ``Popen`` object per job.  On the
engine's hot dispatch path that userspace overhead is comparable to the
kernel's own process-start cost.  :class:`SpawnLauncher` replaces it with
one ``posix_spawn(3)`` call per job using ``POSIX_SPAWN_SETSID`` for the
kill-by-group contract and argv/env vectors pre-built once per run — the
same amortization GNU Parallel gets from keeping its command assembly in
a single long-lived perl process.

The launcher only starts processes; output collection is the
:class:`~repro.core.backends.reaper.PipeReaper`'s job.  Callers decide
when the combination of options requires falling back to the Popen path
(see ``LocalShellBackend`` for the fallback matrix).
"""

from __future__ import annotations

import os
import shlex
import threading

__all__ = ["SpawnLauncher", "spawn_supported", "wrap_chdir"]

#: Cached availability probe result (None = not probed yet).
_supported: "bool | None" = None
_probe_lock = threading.Lock()


def spawn_supported() -> bool:
    """True when this platform can run the posix_spawn fast path.

    Requires POSIX, ``os.posix_spawn`` and libc support for
    ``POSIX_SPAWN_SETSID`` (glibc >= 2.26; probed once with a real spawn
    because libc only reports the missing attribute at call time).
    """
    global _supported
    if _supported is not None:
        return _supported
    with _probe_lock:
        if _supported is not None:
            return _supported
        if os.name != "posix" or not hasattr(os, "posix_spawn"):
            _supported = False
            return False
        try:
            devnull = os.open(os.devnull, os.O_RDWR)
            try:
                pid = os.posix_spawn(
                    "/bin/sh", ["/bin/sh", "-c", "true"], {},
                    file_actions=[
                        (os.POSIX_SPAWN_DUP2, devnull, 0),
                        (os.POSIX_SPAWN_DUP2, devnull, 1),
                        (os.POSIX_SPAWN_DUP2, devnull, 2),
                    ],
                    setsid=True,
                )
            finally:
                os.close(devnull)
            os.waitpid(pid, 0)
            _supported = True
        except (OSError, NotImplementedError, TypeError, AttributeError):
            # TypeError: Python without the setsid keyword; Not/OSError:
            # libc without POSIX_SPAWN_SETSID or no /bin/sh.
            _supported = False
    return _supported


def wrap_chdir(workdir: str, command: str) -> str:
    """Prefix ``command`` so the shell enters ``workdir`` before running.

    ``posix_spawn`` has no working-directory attribute; remote channels
    (whose sandbox workdir is transport-managed) reproduce ``cwd=`` by
    making the already-spawned shell do the chdir.  Exit 255 on a missing
    directory mirrors the transport-level connect failure a real ssh
    channel would report.
    """
    return f"cd {shlex.quote(workdir)} || exit 255; {command}"


class SpawnLauncher:
    """Spawns ``shell -c command`` jobs with pre-built argv/env vectors.

    One instance serves one run (or one remote channel): the argv prefix,
    the merged environment and the shared ``/dev/null`` stdin fd are all
    computed once, so the per-job work is two ``pipe()`` calls and one
    ``posix_spawn``.  Thread-safe — worker threads spawn concurrently.
    """

    __slots__ = ("shell", "env", "_argv_prefix", "_devnull", "_lock")

    def __init__(self, shell: str = "/bin/sh", env: "dict[str, str] | None" = None):
        self.shell = shell
        #: Environment vector passed verbatim to every spawn; None =
        #: snapshot ``os.environ`` at each call (inherit semantics).
        self.env = env
        self._argv_prefix = [shell, "-c"]
        self._devnull = os.open(os.devnull, os.O_RDONLY)
        self._lock = threading.Lock()

    def spawn(self, command: str) -> "tuple[int, int, int]":
        """Start one job; returns ``(pid, stdout_read_fd, stderr_read_fd)``.

        The child is its own session (and process-group) leader, stdin is
        ``/dev/null``, stdout/stderr are fresh pipes whose read ends the
        caller owns (hand them to the reaper).  Raises ``OSError`` when
        the spawn itself fails.
        """
        out_r, out_w = os.pipe()
        err_r, err_w = os.pipe()
        try:
            # Python pipe fds are CLOEXEC; the dup2 file actions produce
            # the child's non-CLOEXEC stdio copies, and exec() closes the
            # originals — no explicit CLOSE actions needed, and no fd
            # leak into jobs spawned concurrently by other workers.
            pid = os.posix_spawn(
                self.shell,
                self._argv_prefix + [command],
                self.env if self.env is not None else os.environ,
                file_actions=[
                    (os.POSIX_SPAWN_DUP2, self._devnull, 0),
                    (os.POSIX_SPAWN_DUP2, out_w, 1),
                    (os.POSIX_SPAWN_DUP2, err_w, 2),
                ],
                setsid=True,
            )
        except BaseException:
            os.close(out_r)
            os.close(err_r)
            os.close(out_w)
            os.close(err_w)
            raise
        os.close(out_w)
        os.close(err_w)
        return pid, out_r, err_r

    def close(self) -> None:
        """Release the shared stdin fd (idempotent)."""
        with self._lock:
            if self._devnull >= 0:
                try:
                    os.close(self._devnull)
                except OSError:
                    pass
                self._devnull = -1
