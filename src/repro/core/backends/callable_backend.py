"""Callable backend: runs Python callables instead of shell commands.

This is the "last-mile parallelizing driver" usage from the paper's
conclusion, turned into a library API: any Python function can be mapped
over inputs with full engine semantics (slots, retries, halt, keep-order,
joblog).

The callable receives the job's argument group unpacked positionally::

    Parallel(my_func).run(["a", "b"])        # my_func("a")
    Parallel(my_func).run([("a", "1"), ...]) # my_func("a", "1")

An exception marks the job failed (exit code 1, traceback on stderr);
the return value is preserved on :attr:`JobResult.value`.

Timeouts are enforced cooperatively via a watchdog that *reports* the
timeout; Python threads cannot be killed, so a runaway callable keeps its
thread until it returns (documented divergence from the subprocess
backend, where the process group is killed).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options

__all__ = ["CallableBackend"]


class CallableBackend(Backend):
    """Executes ``func(*job.args)`` in the scheduler's worker thread."""

    def __init__(self, func: Callable[..., object]):
        if not callable(func):
            raise TypeError(f"CallableBackend needs a callable, got {func!r}")
        self.func = func
        self.host = "local"
        self._cancelled = threading.Event()

    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        start = time.time()
        if self._cancelled.is_set():
            return self._result(job, slot, -1, None, "", start, start, JobState.KILLED)

        if timeout is None:
            return self._invoke(job, slot, start)

        # Cooperative timeout: run in a helper thread, give up waiting at
        # the deadline.  The helper thread is abandoned if it overruns.
        box: dict[str, JobResult] = {}

        def target():
            box["result"] = self._invoke(job, slot, start)

        helper = threading.Thread(target=target, daemon=True)
        helper.start()
        # Wait in short slices so a --halt now cancellation is noticed
        # promptly instead of sleeping out the whole timeout.
        deadline = start + timeout
        while "result" not in box:
            remaining = deadline - time.time()
            if remaining <= 0:
                break
            if self._cancelled.is_set():
                end = time.time()
                return self._result(
                    job, slot, -1, None, "", start, end, JobState.KILLED,
                    "cancelled by --halt now (callable abandoned)",
                )
            helper.join(timeout=min(0.05, remaining))
        if "result" in box:
            return box["result"]
        end = time.time()
        return self._result(
            job, slot, -1, None, f"timeout after {timeout}s", start, end, JobState.TIMED_OUT
        )

    def _invoke(self, job: Job, slot: int, start: float) -> JobResult:
        try:
            value = self.func(*job.args)
            end = time.time()
            stdout = "" if value is None else str(value)
            return self._result(job, slot, 0, value, stdout, start, end, JobState.SUCCEEDED, "")
        except Exception:
            end = time.time()
            return self._result(
                job, slot, 1, None, "", start, end, JobState.FAILED, traceback.format_exc()
            )

    def cancel_all(self) -> None:
        self._cancelled.set()

    def _result(
        self,
        job: Job,
        slot: int,
        code: int,
        value: object,
        stdout: str,
        start: float,
        end: float,
        state: JobState,
        stderr: str = "",
    ) -> JobResult:
        return JobResult(
            seq=job.seq,
            args=job.args,
            command=job.command,
            exit_code=code,
            stdout=stdout,
            stderr=stderr,
            start_time=start,
            end_time=end,
            slot=slot,
            host=self.host,
            attempt=job.attempt,
            state=state,
            value=value,
        )
