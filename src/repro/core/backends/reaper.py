"""Shared pipe reaper: one ``selectors`` loop multiplexing every job's I/O.

The Popen hot path dedicates the calling worker thread to each job's
``communicate()`` — a per-job selector setup, per-job read loop, per-job
``waitpid``.  The reaper amortizes all of that into a single background
thread: workers register a spawned pid plus its stdout/stderr read fds and
block on a per-job event; the reaper drains every registered pipe through
one ``selectors.DefaultSelector``, collects exit statuses with
``waitpid(WNOHANG)``, and wakes the owning worker when both streams hit
EOF and the process is reaped.

Semantics match ``Popen.communicate()``: completion means *EOF on both
pipes and the child reaped* — a job that backgrounds a grandchild holding
the pipe open is still "running" until that write end closes, exactly as
on the Popen path.

``--linebuffer`` support: a handle registered with a ``stream`` callback
gets its stdout delivered incrementally in complete-line chunks as they
arrive (the raw bytes are still accumulated for the final
:class:`~repro.core.job.JobResult`, so ``--joblog``/``--results`` capture
is unchanged).
"""

from __future__ import annotations

import collections
import os
import selectors
import threading
from typing import Callable, Optional

__all__ = ["PipeReaper", "ReapHandle"]

_CHUNK = 65536
#: Poll period for zombie collection while processes have closed their
#: pipes but not yet been waited on (rare: exit and EOF usually coincide).
_ZOMBIE_POLL = 0.02


class ReapHandle:
    """One registered job's collection state; workers ``wait()`` on it."""

    __slots__ = (
        "pid", "stdout_buf", "stderr_buf", "returncode",
        "_event", "_open_fds", "_stream", "_stream_tail", "encoding",
    )

    def __init__(
        self,
        pid: int,
        stream: Optional[Callable[[str], None]] = None,
        encoding: str = "utf-8",
    ):
        self.pid = pid
        self.stdout_buf = bytearray()
        self.stderr_buf = bytearray()
        #: Exit status in ``Popen.returncode`` convention (negative =
        #: killed by that signal); None until reaped.
        self.returncode: Optional[int] = None
        self.encoding = encoding
        self._event = threading.Event()
        self._open_fds = 2
        self._stream = stream
        self._stream_tail = bytearray() if stream is not None else None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is fully collected; False on timeout."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    # -- reaper-side hooks ---------------------------------------------------
    def _feed(self, which: int, chunk: bytes) -> None:
        if which == 1:
            self.stdout_buf += chunk
            if self._stream is not None:
                self._stream_tail += chunk
                cut = self._stream_tail.rfind(b"\n")
                if cut >= 0:
                    self._emit_stream(bytes(self._stream_tail[: cut + 1]))
                    del self._stream_tail[: cut + 1]
        else:
            self.stderr_buf += chunk

    def _emit_stream(self, data: bytes) -> None:
        try:
            # Complete lines only, so a UTF-8 sequence is never split;
            # errors are replaced rather than raised — strict decoding
            # (and its Popen-parity failure mode) happens at result
            # construction, not in the shared reaper thread.
            self._stream(data.decode(self.encoding, errors="replace"))
        except Exception:
            self._stream = None  # a broken sink must not kill the loop

    def _finish(self, returncode: int) -> None:
        if self._stream is not None and self._stream_tail:
            self._emit_stream(bytes(self._stream_tail))
            self._stream_tail.clear()
        self.returncode = returncode
        self._event.set()


class PipeReaper:
    """The shared multiplexer thread.  One instance serves one backend run.

    The thread starts lazily on first registration and exits on
    :meth:`close`.  If the loop ever dies on an unexpected error, every
    outstanding handle is released with exit code 127 and ``alive`` turns
    False — callers treat that as "fall back to the Popen path".
    """

    def __init__(self) -> None:
        self._sel = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._sel.register(self._wake_r, selectors.EVENT_READ, None)
        self._pending: "collections.deque[tuple[ReapHandle, int, int]]" = (
            collections.deque()
        )
        self._zombies: list[ReapHandle] = []
        self._handles: set[ReapHandle] = set()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.alive = True

    def register(
        self,
        pid: int,
        stdout_fd: int,
        stderr_fd: int,
        stream: Optional[Callable[[str], None]] = None,
        encoding: str = "utf-8",
    ) -> ReapHandle:
        """Hand a spawned job's pipes to the loop; returns its handle."""
        handle = ReapHandle(pid, stream=stream, encoding=encoding)
        with self._lock:
            if self._closed or not self.alive:
                raise RuntimeError("reaper is closed")
            self._pending.append((handle, stdout_fd, stderr_fd))
            self._handles.add(handle)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True, name="repro-reaper"
                )
                self._thread.start()
        self._wake()
        return handle

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop the loop, releasing any outstanding handles (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        self._wake()
        if thread is not None:
            thread.join(timeout=2.0)
        if thread is None:
            # The loop never started: nothing owns the selector yet.
            self._teardown()

    # -- internals -----------------------------------------------------------
    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _run(self) -> None:
        try:
            self._loop()
        except BaseException:
            self.alive = False
        finally:
            self._teardown()

    def _loop(self) -> None:
        while True:
            if self._closed:
                return
            timeout = _ZOMBIE_POLL if self._zombies else None
            for key, _ in self._sel.select(timeout):
                if key.data is None:  # wake pipe
                    try:
                        while os.read(self._wake_r, 4096):
                            pass
                    except OSError:
                        pass
                    self._admit_pending()
                    continue
                handle, which = key.data
                try:
                    chunk = os.read(key.fd, _CHUNK)
                except BlockingIOError:
                    continue
                except OSError:
                    chunk = b""
                if chunk:
                    handle._feed(which, chunk)
                    continue
                self._sel.unregister(key.fd)
                os.close(key.fd)
                handle._open_fds -= 1
                if handle._open_fds == 0:
                    self._zombies.append(handle)
            self._collect_zombies()

    def _admit_pending(self) -> None:
        while True:
            with self._lock:
                if not self._pending:
                    return
                handle, out_fd, err_fd = self._pending.popleft()
            os.set_blocking(out_fd, False)
            os.set_blocking(err_fd, False)
            self._sel.register(out_fd, selectors.EVENT_READ, (handle, 1))
            self._sel.register(err_fd, selectors.EVENT_READ, (handle, 2))

    def _collect_zombies(self) -> None:
        if not self._zombies:
            return
        still: list[ReapHandle] = []
        for handle in self._zombies:
            try:
                pid, status = os.waitpid(handle.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = handle.pid, 0  # reaped elsewhere; assume ok
            if pid == 0:
                still.append(handle)
                continue
            with self._lock:
                self._handles.discard(handle)
            handle._finish(os.waitstatus_to_exitcode(status))
        self._zombies = still

    def _teardown(self) -> None:
        """Close every fd and release every waiter (loop exit path)."""
        for key in list(self._sel.get_map().values()):
            if key.data is None:
                continue
            try:
                self._sel.unregister(key.fd)
                os.close(key.fd)
            except (OSError, KeyError):
                pass
        with self._lock:
            pending, self._pending = list(self._pending), collections.deque()
            outstanding, self._handles = list(self._handles), set()
        for handle, out_fd, err_fd in pending:
            for fd in (out_fd, err_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
        for handle in outstanding:
            if not handle.done:
                handle._finish(127)
        try:
            self._sel.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._sel.close()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
