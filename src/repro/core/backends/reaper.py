"""Shared pipe reaper: one ``selectors`` loop multiplexing every job's I/O.

The Popen hot path dedicates the calling worker thread to each job's
``communicate()`` — a per-job selector setup, per-job read loop, per-job
``waitpid``.  The reaper amortizes all of that into a single background
thread: workers register a spawned pid plus its stdout/stderr read fds and
block on a per-job event; the reaper drains every registered pipe through
one ``selectors.DefaultSelector``, collects exit statuses, and wakes the
owning worker when both streams hit EOF and the process is reaped.

Exit-status collection has two legs (the "reap ladder"):

``pidfd`` (Linux >= 5.3, the default where available)
    Each registered pid also gets an ``os.pidfd_open`` descriptor added to
    the same selector.  A pidfd becomes readable exactly once, when the
    process terminates, so the loop gets *one epoll wakeup per exit* and
    collects the status with a single guaranteed-ready
    ``waitpid(WNOHANG)`` — no polling cycle at all.

``waitpid`` polling (the fallback)
    On platforms without ``os.pidfd_open`` (or kernels/seccomp profiles
    where the first call fails), processes whose pipes have hit EOF are
    polled with ``waitpid(WNOHANG)`` every ``_ZOMBIE_POLL`` seconds until
    reaped — the pre-pidfd behaviour, kept bit-identical.

The ladder is probed per reaper instance at first registration and looked
up through ``os`` at call time, so tests can exercise the fallback by
monkeypatching ``os.pidfd_open``.

Semantics match ``Popen.communicate()``: completion means *EOF on both
pipes and the child reaped* — a job that backgrounds a grandchild holding
the pipe open is still "running" until that write end closes, exactly as
on the Popen path.  The pidfd leg preserves this: a collected exit status
is held until both pipes close.

``--linebuffer`` support: a handle registered with a ``stream`` callback
gets its stdout delivered incrementally in complete-line chunks as they
arrive (the raw bytes are still accumulated for the final
:class:`~repro.core.job.JobResult`, so ``--joblog``/``--results`` capture
is unchanged).
"""

from __future__ import annotations

import collections
import os
import selectors
import threading
from typing import Callable, Optional

__all__ = ["PipeReaper", "ReapHandle", "pidfd_supported"]

_CHUNK = 65536
#: Poll period for zombie collection while processes have closed their
#: pipes but not yet been waited on — only reached on the waitpid
#: fallback leg (with pidfds, exits arrive as selector events).
_ZOMBIE_POLL = 0.02


def pidfd_supported() -> bool:
    """True when this process can obtain pidfds for its children.

    Checked with a real ``pidfd_open`` on our own pid: the symbol exists
    on any Linux Python >= 3.9 build, but the syscall itself needs kernel
    >= 5.3 and may be denied by seccomp — only a live probe tells.
    """
    opener = getattr(os, "pidfd_open", None)
    if opener is None:
        return False
    try:
        fd = opener(os.getpid())
    except OSError:
        return False
    os.close(fd)
    return True


class ReapHandle:
    """One registered job's collection state; workers ``wait()`` on it."""

    __slots__ = (
        "pid", "stdout_buf", "stderr_buf", "returncode",
        "_event", "_open_fds", "_stream", "_stream_tail", "encoding",
        "_pidfd", "_status", "_on_done",
    )

    def __init__(
        self,
        pid: int,
        stream: Optional[Callable[[str], None]] = None,
        encoding: str = "utf-8",
        on_done: Optional[Callable[["ReapHandle"], None]] = None,
    ):
        self.pid = pid
        self.stdout_buf = bytearray()
        self.stderr_buf = bytearray()
        #: Exit status in ``Popen.returncode`` convention (negative =
        #: killed by that signal); None until reaped.
        self.returncode: Optional[int] = None
        self.encoding = encoding
        self._event = threading.Event()
        self._open_fds = 2
        self._stream = stream
        self._stream_tail = bytearray() if stream is not None else None
        #: The job's pidfd while registered with the selector; -1 on the
        #: waitpid fallback leg (or after the pidfd has fired).
        self._pidfd = -1
        #: Exit status collected ahead of pipe EOF (pidfd leg); completion
        #: still waits for both pipes to close.
        self._status: Optional[int] = None
        self._on_done = on_done

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is fully collected; False on timeout."""
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    # -- reaper-side hooks ---------------------------------------------------
    def _feed(self, which: int, chunk: bytes) -> None:
        if which == 1:
            self.stdout_buf += chunk
            if self._stream is not None:
                self._stream_tail += chunk
                cut = self._stream_tail.rfind(b"\n")
                if cut >= 0:
                    self._emit_stream(bytes(self._stream_tail[: cut + 1]))
                    del self._stream_tail[: cut + 1]
        else:
            self.stderr_buf += chunk

    def _emit_stream(self, data: bytes) -> None:
        try:
            # Complete lines only, so a UTF-8 sequence is never split;
            # errors are replaced rather than raised — strict decoding
            # (and its Popen-parity failure mode) happens at result
            # construction, not in the shared reaper thread.
            self._stream(data.decode(self.encoding, errors="replace"))
        except Exception:
            self._stream = None  # a broken sink must not kill the loop

    def _finish(self, returncode: int) -> None:
        if self._stream is not None and self._stream_tail:
            self._emit_stream(bytes(self._stream_tail))
            self._stream_tail.clear()
        self.returncode = returncode
        self._event.set()
        if self._on_done is not None:
            try:
                self._on_done(self)
            except Exception:
                pass  # a broken callback must not kill the loop


class PipeReaper:
    """The shared multiplexer thread.  One instance serves one backend run.

    The thread starts lazily on first registration and exits on
    :meth:`close`.  If the loop ever dies on an unexpected error, every
    outstanding handle is released with exit code 127 and ``alive`` turns
    False — callers treat that as "fall back to the Popen path".

    ``use_pidfd`` selects the exit-collection leg: None (default) probes
    on first registration, False forces the waitpid-polling fallback.

    ``on_batch_end`` (optional) is invoked from the reaper thread after
    any ``select()`` cycle that completed at least one handle — a batch
    boundary for callers that coalesce per-handle ``on_done`` output
    (dispatcher workers flush one result *frame* per cycle instead of
    one write per exit, so completions that queued up while the worker
    waited for CPU amortize into a single parent wakeup).
    """

    def __init__(
        self,
        use_pidfd: Optional[bool] = None,
        on_batch_end: Optional[Callable[[], None]] = None,
    ) -> None:
        self._on_batch_end = on_batch_end
        self._batch_dirty = False
        self._sel = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._sel.register(self._wake_r, selectors.EVENT_READ, None)
        self._pending: "collections.deque[tuple[ReapHandle, int, int]]" = (
            collections.deque()
        )
        self._zombies: list[ReapHandle] = []
        self._handles: set[ReapHandle] = set()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.alive = True
        #: pidfd leg state: None = not probed yet, True = in use, False =
        #: unavailable (missing symbol, ENOSYS, seccomp, ...) — then every
        #: handle takes the waitpid-polling leg.
        self._use_pidfd = use_pidfd

    @property
    def pidfd_enabled(self) -> bool:
        """True once the reaper has successfully opened a pidfd."""
        return self._use_pidfd is True

    def register(
        self,
        pid: int,
        stdout_fd: int,
        stderr_fd: int,
        stream: Optional[Callable[[str], None]] = None,
        encoding: str = "utf-8",
        on_done: Optional[Callable[[ReapHandle], None]] = None,
    ) -> ReapHandle:
        """Hand a spawned job's pipes to the loop; returns its handle.

        ``on_done`` (optional) is invoked from the reaper thread right
        after the handle completes — dispatcher workers use it to post
        results without parking a thread per job on ``wait()``.
        """
        handle = ReapHandle(pid, stream=stream, encoding=encoding, on_done=on_done)
        with self._lock:
            if self._closed or not self.alive:
                raise RuntimeError("reaper is closed")
            self._pending.append((handle, stdout_fd, stderr_fd))
            self._handles.add(handle)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True, name="repro-reaper"
                )
                self._thread.start()
        self._wake()
        return handle

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stop the loop, releasing any outstanding handles (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        self._wake()
        if thread is not None:
            thread.join(timeout=2.0)
        if thread is None:
            # The loop never started: nothing owns the selector yet.
            self._teardown()

    # -- internals -----------------------------------------------------------
    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _run(self) -> None:
        try:
            self._loop()
        except BaseException:
            self.alive = False
        finally:
            self._teardown()

    def _loop(self) -> None:
        while True:
            if self._closed:
                return
            timeout = _ZOMBIE_POLL if self._zombies else None
            for key, _ in self._sel.select(timeout):
                if key.data is None:  # wake pipe
                    try:
                        while os.read(self._wake_r, 4096):
                            pass
                    except OSError:
                        pass
                    self._admit_pending()
                    continue
                handle, which = key.data
                if which == 0:  # pidfd readable: the process terminated
                    self._sel.unregister(key.fd)
                    os.close(key.fd)
                    handle._pidfd = -1
                    if not self._collect_status(handle):
                        # Can't happen per pidfd semantics; stay safe.
                        self._zombies.append(handle)
                    elif handle._open_fds == 0:
                        self._finalize(handle)
                    continue
                try:
                    chunk = os.read(key.fd, _CHUNK)
                except BlockingIOError:
                    continue
                except OSError:
                    chunk = b""
                if chunk:
                    handle._feed(which, chunk)
                    continue
                self._sel.unregister(key.fd)
                os.close(key.fd)
                handle._open_fds -= 1
                if handle._open_fds == 0:
                    if handle._status is not None:
                        self._finalize(handle)  # pidfd already collected
                    elif handle._pidfd < 0:
                        self._zombies.append(handle)  # waitpid fallback leg
                    # else: pidfd registered; its event delivers the status
            self._collect_zombies()
            if self._batch_dirty:
                self._batch_dirty = False
                try:
                    self._on_batch_end()  # type: ignore[misc]
                except Exception:
                    pass  # a broken sink must not kill the loop

    def _admit_pending(self) -> None:
        while True:
            with self._lock:
                if not self._pending:
                    return
                handle, out_fd, err_fd = self._pending.popleft()
            os.set_blocking(out_fd, False)
            os.set_blocking(err_fd, False)
            self._sel.register(out_fd, selectors.EVENT_READ, (handle, 1))
            self._sel.register(err_fd, selectors.EVENT_READ, (handle, 2))
            pidfd = self._open_pidfd(handle.pid)
            if pidfd is not None:
                handle._pidfd = pidfd
                self._sel.register(pidfd, selectors.EVENT_READ, (handle, 0))

    def _open_pidfd(self, pid: int) -> Optional[int]:
        """One pidfd for ``pid``, or None on the waitpid fallback leg.

        Looked up through ``os`` at call time (not import time) so a
        monkeypatched ``pidfd_open`` exercises the fallback.  The first
        failure disables the leg for the whole reaper: ENOSYS (kernel
        < 5.3) and seccomp denials are process-wide conditions, and the
        zombie-poll path covers everything anyway.
        """
        if self._use_pidfd is False:
            return None
        opener = getattr(os, "pidfd_open", None)
        if opener is None:
            self._use_pidfd = False
            return None
        try:
            fd = opener(pid)
        except OSError:
            self._use_pidfd = False
            return None
        self._use_pidfd = True
        return fd

    def _collect_status(self, handle: ReapHandle) -> bool:
        """waitpid(WNOHANG) for one handle; True when the status landed."""
        try:
            pid, status = os.waitpid(handle.pid, os.WNOHANG)
        except ChildProcessError:
            pid, status = handle.pid, 0  # reaped elsewhere; assume ok
        if pid == 0:
            return False
        handle._status = os.waitstatus_to_exitcode(status)
        return True

    def _finalize(self, handle: ReapHandle) -> None:
        """Release a fully-collected handle (status + both pipe EOFs)."""
        with self._lock:
            self._handles.discard(handle)
        status = handle._status if handle._status is not None else 0
        handle._finish(status)
        if self._on_batch_end is not None:
            self._batch_dirty = True

    def _collect_zombies(self) -> None:
        if not self._zombies:
            return
        still: list[ReapHandle] = []
        for handle in self._zombies:
            if not self._collect_status(handle):
                still.append(handle)
                continue
            self._finalize(handle)
        self._zombies = still

    def _teardown(self) -> None:
        """Close every fd and release every waiter (loop exit path)."""
        for key in list(self._sel.get_map().values()):
            if key.data is None:
                continue
            try:
                self._sel.unregister(key.fd)
                os.close(key.fd)
            except (OSError, KeyError):
                pass
        with self._lock:
            pending, self._pending = list(self._pending), collections.deque()
            outstanding, self._handles = list(self._handles), set()
        for handle, out_fd, err_fd in pending:
            for fd in (out_fd, err_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
        for handle in outstanding:
            if not handle.done:
                handle._finish(127)
        if self._on_batch_end is not None:
            # Ship anything the on_done callbacks deferred: there will be
            # no further batch boundary after the loop exits.
            try:
                self._on_batch_end()
            except Exception:
                pass
        try:
            self._sel.unregister(self._wake_r)
        except (KeyError, ValueError):
            pass
        self._sel.close()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
