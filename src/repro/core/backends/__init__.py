"""Execution backends for the engine."""

from repro.core.backends.base import Backend
from repro.core.backends.callable_backend import CallableBackend
from repro.core.backends.local import LocalShellBackend
from repro.core.backends.multiprocess import MultiprocessBackend

__all__ = ["Backend", "CallableBackend", "LocalShellBackend", "MultiprocessBackend"]
