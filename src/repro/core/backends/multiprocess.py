"""Multiprocessing backend: run Python callables in worker *processes*.

The thread-based :class:`~repro.core.backends.callable_backend.CallableBackend`
is ideal for I/O-bound tasks but serializes CPU-bound Python on the GIL.
This backend executes each job in a pool of OS processes instead —
matching GNU Parallel's actual execution model (one process per job) for
pure-Python workloads.

Constraints inherent to multiprocessing: the callable and its arguments
must be picklable (no lambdas/closures), and return values travel back by
pickle.  Timeouts are enforced by abandoning the future (the worker is
recycled by the pool); ``cancel_all`` tears the whole pool down.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from typing import Callable, Optional

from repro.core.backends.base import Backend
from repro.core.job import Job, JobResult, JobState
from repro.core.options import Options

__all__ = ["MultiprocessBackend"]


def _call(func: Callable[..., object], args: tuple[str, ...]):
    """Top-level trampoline (must be picklable) returning (ok, value_or_tb)."""
    try:
        return True, func(*args)
    except Exception:
        return False, traceback.format_exc()


class MultiprocessBackend(Backend):
    """Executes ``func(*job.args)`` in a process pool."""

    def __init__(self, func: Callable[..., object], max_workers: Optional[int] = None):
        if not callable(func):
            raise TypeError(f"MultiprocessBackend needs a callable, got {func!r}")
        self.func = func
        self.host = "local"
        self._max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def prepare_run(self, options: Options) -> None:
        # Build the process pool once per run, up front, instead of paying
        # pool construction inside the first job's dispatch.
        self._ensure_pool()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._max_workers
            )
        return self._pool

    def run_job(
        self, job: Job, slot: int, options: Options, timeout: float | None = None
    ) -> JobResult:
        start = time.time()
        pool = self._ensure_pool()
        try:
            future = pool.submit(_call, self.func, job.args)
        except RuntimeError as exc:  # pool already shut down by cancel_all
            now = time.time()
            return self._result(job, slot, -1, None, "", f"{exc}", start, now,
                                JobState.KILLED)
        try:
            ok, payload = future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            end = time.time()
            return self._result(
                job, slot, -1, None, "", f"timeout after {timeout}s", start, end,
                JobState.TIMED_OUT,
            )
        except concurrent.futures.process.BrokenProcessPool as exc:
            end = time.time()
            self._pool = None  # rebuild on next job
            return self._result(
                job, slot, 134, None, "", f"worker died: {exc}", start, end,
                JobState.FAILED,
            )
        end = time.time()
        if ok:
            stdout = "" if payload is None else str(payload)
            return self._result(job, slot, 0, payload, stdout, "", start, end,
                                JobState.SUCCEEDED)
        return self._result(job, slot, 1, None, "", str(payload), start, end,
                            JobState.FAILED)

    def cancel_all(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _result(self, job, slot, code, value, stdout, stderr, start, end, state):
        return JobResult(
            seq=job.seq, args=job.args, command=job.command, exit_code=code,
            stdout=stdout, stderr=stderr, start_time=start, end_time=end,
            slot=slot, host=self.host, attempt=job.attempt, state=state,
            value=value,
        )
