"""DispatcherPool: N spawner worker processes fed from one sharded queue.

The paper's Fig. 3 shows the launch-rate ceiling is a *single-dispatcher*
phenomenon: one GNU Parallel instance forks at ~470 jobs/s while N
concurrent instances reach ~6,400/s node-wide before the kernel's own
fork bandwidth saturates.  Our posix_spawn path already sits at ~85% of
the per-process ceiling (BENCH_pr5: 831 vs 993 jobs/s on 1 vCPU), so the
next order of magnitude has to come from *parallel dispatchers* — this
module is that decomposition.

Architecture (``--dispatchers N``)::

    scheduler (one) ── OutputSequencer / JoblogWriter / retries / halt
        │
        LocalShellBackend.run_job            (merge stays centralized)
        │
        DispatcherPool ── least-loaded shard pick, failover re-queue
        ├── shard 0: worker process  [SpawnLauncher + PipeReaper(pidfd)]
        ├── shard 1: worker process  [SpawnLauncher + PipeReaper(pidfd)]
        └── shard k: ...

    Each worker owns a private posix_spawn launcher and pidfd-driven
    PipeReaper, so fork/exec + pipe collection run in N kernel task
    contexts concurrently.  Results travel back over the shard's duplex
    pipe and are delivered to the scheduler worker thread that submitted
    the job — everything above ``run_job`` (``--keep-order`` sequencing,
    ``--joblog`` rows, ``--tag`` prefixes, retries, ``--halt``) is the
    *same code* as the single-dispatcher path, which is what makes the
    cross-shard parity matrix byte-for-byte by construction.

Control-plane framing (the amortization layer):

    Per-job pickled ``Connection.send``/``recv`` round-trips made sharded
    dispatch *lose* to a single in-process dispatcher on small machines
    (BENCH_pr6: 651 vs 743 jobs/s on 1 vCPU) — every job paid ~6 wakeups
    of pipe syscall + pickle cost.  The hot message kinds (spawn, result,
    kill) therefore travel as length-prefixed ``struct``-packed *frames*
    carrying up to ``batch`` records each.  Outbound spawns buffer in a
    per-shard outbox whose flush is gated by the *pipe*, not a timer:
    the dispatching thread appends its record and immediately drains the
    outbox, but the swap happens only after the shard's send lock is
    acquired — so while one thread's frame is on the wire, records from
    concurrent dispatches pile up and ride the next frame (Nagle-style
    coalescing with zero added latency: a lone job ships at once, a
    burst amortizes automatically).  Workers batch result records the
    same way on the return path.  Rare/complex payloads (``intern``,
    ``kill_all``, ``close``, spawn errors) stay pickled: the first byte
    of a message distinguishes a frame (``_MAGIC``) from a pickle (which
    always starts with ``\\x80`` for protocol ≥ 2).

    On top of framing, the pool supports run-start **template interning**:
    the backend sends each shard the command template *source* once, and
    per-job spawn records then carry only the argument tuple + seq/slot —
    the worker re-renders the command locally, byte-identical to the
    parent's own render (string-mode templates only; argv-mode quoting is
    not worth re-deriving remotely).

Fault model: a shard that dies mid-run (its pipe hits EOF, or a send
fails) is marked dead and every job in flight on it — the flushed frames
*and* the records still sitting in its outbox — is transparently
re-dispatched to a surviving shard exactly once (``_pending`` is the
single source of truth; late duplicate deliveries drop at ``_deliver``).
With no survivors, pending jobs complete as ``lost`` and the backend
falls back to its in-process Popen path — same ladder shape as the
reaper-death fallback.

The pool deliberately does NOT own retries, ordering, or halt policy;
those live in the scheduler.  It is a throughput device, not a scheduler.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import signal
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "DispatcherPool",
    "PoolReply",
    "pool_supported",
    "pack_spawn_record",
    "pack_result_record",
    "pack_frame",
    "iter_spawn_records",
    "iter_result_records",
    "FRAME_MAGIC",
    "FK_SPAWN",
    "FK_RESULT",
    "FK_KILL",
]

#: Reply kinds a ``run()`` call can resolve to.
DONE = "done"    #: job ran; exit status + captured bytes attached
ERR = "err"      #: worker could not spawn it (message in ``stderr``)
LOST = "lost"    #: shard died and no survivor could take the job

# -- frame protocol ----------------------------------------------------------
#: First byte of a packed frame.  Pickle streams (protocol >= 2) start
#: with 0x80, so one byte disambiguates the two formats on a shared pipe.
FRAME_MAGIC = 0x9E
FK_SPAWN = 1    #: parent → worker: batch of spawn records
FK_RESULT = 2   #: worker → parent: batch of completion records
FK_KILL = 3     #: parent → worker: batch of kill tokens

_HEADER = struct.Struct("<BBH")          # magic, kind, record count
#: Spawn record header: token, flags, seq, slot, payload length.
#: flags bit 0: payload is a packed argument tuple for the interned
#: template (otherwise payload is the raw utf-8 command string).
_SPAWN_REC = struct.Struct("<QBIII")
_F_INTERNED = 1
#: Result record header: token, returncode, start, end, spawn_dur, pid,
#: stdout length, stderr length (the two byte blobs follow).
_RESULT_REC = struct.Struct("<QqdddqII")
_KILL_REC = struct.Struct("<Q")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _enc(text: str) -> bytes:
    # surrogatepass keeps os.fsdecode()-style lone surrogates (possible
    # in filename inputs) round-trippable through the frame.
    return text.encode("utf-8", "surrogatepass")


def _dec(data: bytes) -> str:
    return data.decode("utf-8", "surrogatepass")


def pack_spawn_record(
    token: int,
    seq: int,
    slot: int,
    command: "str | None" = None,
    args: "tuple[str, ...] | None" = None,
) -> bytes:
    """One spawn record: raw command, or an argument delta when interned."""
    if args is not None:
        parts = [_U16.pack(len(args))]
        for a in args:
            blob = _enc(a)
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        payload = b"".join(parts)
        flags = _F_INTERNED
    else:
        assert command is not None
        payload = _enc(command)
        flags = 0
    return _SPAWN_REC.pack(token, flags, seq, slot, len(payload)) + payload


def pack_result_record(
    token: int, rc: int, out: bytes, err: bytes,
    start: float, end: float, spawn_dur: float, pid: int,
) -> bytes:
    return (
        _RESULT_REC.pack(token, rc, start, end, spawn_dur, pid,
                         len(out), len(err))
        + out + err
    )


def pack_frame(kind: int, records: "list[bytes]") -> bytes:
    """Assemble one length-implicit frame from packed records."""
    return _HEADER.pack(FRAME_MAGIC, kind, len(records)) + b"".join(records)


def iter_spawn_records(
    frame: bytes,
) -> "Iterator[tuple[int, int, int, str | None, tuple[str, ...] | None]]":
    """Yield ``(token, seq, slot, command, args)`` from a spawn frame."""
    _, _, count = _HEADER.unpack_from(frame, 0)
    off = _HEADER.size
    for _ in range(count):
        token, flags, seq, slot, plen = _SPAWN_REC.unpack_from(frame, off)
        off += _SPAWN_REC.size
        payload = frame[off:off + plen]
        off += plen
        if flags & _F_INTERNED:
            (n_args,) = _U16.unpack_from(payload, 0)
            p = _U16.size
            args = []
            for _ in range(n_args):
                (alen,) = _U32.unpack_from(payload, p)
                p += _U32.size
                args.append(_dec(payload[p:p + alen]))
                p += alen
            yield token, seq, slot, None, tuple(args)
        else:
            yield token, seq, slot, _dec(payload), None


def iter_result_records(
    frame: bytes,
) -> "Iterator[tuple[int, int, bytes, bytes, float, float, float, int]]":
    """Yield ``(token, rc, out, err, start, end, spawn_dur, pid)``."""
    _, _, count = _HEADER.unpack_from(frame, 0)
    off = _HEADER.size
    for _ in range(count):
        token, rc, start, end, spawn_dur, pid, olen, elen = (
            _RESULT_REC.unpack_from(frame, off)
        )
        off += _RESULT_REC.size
        out = frame[off:off + olen]
        off += olen
        err = frame[off:off + elen]
        off += elen
        yield token, rc, out, err, start, end, spawn_dur, pid


#: A frame's record count travels as u16.
_MAX_BATCH = 65535


def pool_supported() -> bool:
    """True where sharded dispatch can run (POSIX fork/pipe semantics)."""
    return os.name == "posix"


@dataclass
class PoolReply:
    """Outcome of one pooled job, in worker-native (bytes) form.

    Decoding to text happens in the backend with the *same* codec and
    newline translation as the in-process paths — parity requires the
    decode step to be shared, so the pool never decodes.
    """

    kind: str                 # DONE / ERR / LOST
    returncode: int = -1
    stdout: bytes = b""
    stderr: bytes = b""
    start: float = 0.0
    end: float = 0.0
    spawn_dur: float = 0.0    # worker-side spawn latency, seconds
    pid: int = -1             # the job's own pid (worker-side)
    shard: int = -1           # shard that ran (or lost) it
    timed_out: bool = False


class _Pending:
    """Parent-side record of one in-flight job."""

    __slots__ = ("token", "record", "shard", "event", "reply")

    def __init__(self, token: int, record: bytes, shard: int):
        self.token = token
        #: The packed spawn record — shard-independent, so failover
        #: re-dispatch reuses it byte-for-byte.
        self.record = record
        self.shard = shard
        self.event = threading.Event()
        self.reply: Optional[PoolReply] = None


@dataclass
class _Shard:
    """Parent-side view of one dispatcher worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: "multiprocessing.connection.Connection"
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True
    #: Jobs currently dispatched to this shard (parent-side estimate,
    #: used for least-loaded shard selection).
    load: int = 0
    #: Spawn records buffered for the next frame (guarded by the pool
    #: lock; swapped out wholesale at flush time).
    outbox: "list[bytes]" = field(default_factory=list)
    receiver: Optional[threading.Thread] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def send(self, msg: tuple) -> bool:
        """Post one pickled op to the worker; False (and mark dead) on failure."""
        with self.send_lock:
            if not self.alive:
                return False
            try:
                self.conn.send(msg)
                return True
            except (OSError, ValueError, BrokenPipeError):
                self.alive = False
                return False

    def send_bytes(self, frame: bytes) -> bool:
        """Write one packed frame; False (and mark dead) on failure."""
        with self.send_lock:
            if not self.alive:
                return False
            try:
                self.conn.send_bytes(frame)
                return True
            except (OSError, ValueError, BrokenPipeError):
                self.alive = False
                return False


class _ResultBatcher:
    """Worker-side mirror of the parent outbox: coalesce result records.

    ``add`` is called from reaper/collector threads.  Flushing is gated
    by the pipe rather than a timer: the caller appends its record and
    drains the buffer one frame per send, swapping records out only
    after the send lock is held — completions that land while another
    thread's frame is on the wire ride the next frame.  A lone result
    ships immediately; a reap burst amortizes into one write.
    """

    def __init__(self, conn, send_lock: threading.Lock, batch: int):
        self._conn = conn
        self._send_lock = send_lock
        self._batch = max(1, min(batch, _MAX_BATCH))
        self._records: "list[bytes]" = []
        self._lock = threading.Lock()

    def add(self, record: bytes, defer: bool = False) -> None:
        """Queue one record; ship unless the caller owns a later flush.

        ``defer=True`` is the reaper-thread path: records accumulate
        across one ``select()`` cycle and the reaper's ``on_batch_end``
        hook flushes them as a single frame.
        """
        with self._lock:
            self._records.append(record)
        if not defer:
            self.flush()

    def flush(self) -> None:
        while True:
            with self._send_lock:
                with self._lock:
                    if not self._records:
                        return
                    records = self._records[:self._batch]
                    del self._records[:self._batch]
                try:
                    self._conn.send_bytes(pack_frame(FK_RESULT, records))
                except (OSError, ValueError, BrokenPipeError):
                    return  # parent is gone; the recv EOF path will exit us

    def close(self) -> None:
        self.flush()


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------
def _worker_main(
    conn,
    shard_index: int,
    shell: str,
    env: "dict[str, str] | None",
    use_posix: bool,
    nice: "int | None",
    batch: int = 1,
) -> None:
    """One dispatcher worker: spawn loop + private reaper, results by pipe.

    Runs until the parent sends ``("close",)`` or its end of the pipe
    disappears (parent death) — then kills every job it still owns and
    exits via ``os._exit`` so inherited buffers never double-flush.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns ^C policy
    # Imports deferred to the child so a "spawn" start method also works.
    from repro.core.backends.reaper import PipeReaper
    from repro.core.backends.spawn import SpawnLauncher, spawn_supported

    send_lock = threading.Lock()

    def post(msg: tuple) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                pass  # parent is gone; the EOF path below will exit us

    batcher = _ResultBatcher(conn, send_lock, batch)
    #: With batch > 1, results collected by the reaper defer their flush
    #: to its per-select()-cycle batch boundary: completions that queued
    #: while this worker waited for CPU ride one frame (and one parent
    #: wakeup) instead of one write each.
    defer_results = batch > 1

    launcher = reaper = None
    if use_posix and spawn_supported():
        launcher = SpawnLauncher(shell, env=env)
        reaper = PipeReaper(
            on_batch_end=batcher.flush if defer_results else None
        )

    #: Interned command template: (CommandTemplate, quote flag).  Set by
    #: the pickled ("intern", source, quote) op; spawn records flagged
    #: _F_INTERNED then carry only the argument tuple.
    interned = None

    procs: dict[int, int] = {}      # token -> job pgid
    #: Kill tokens that raced ahead of their spawn record (a parent-side
    #: flusher may ship the kill frame before another thread's spawn
    #: frame hits the pipe); the spawn path delivers the kill on arrival.
    early_kills: set[int] = set()
    procs_lock = threading.Lock()

    def apply_nice(pid: int) -> None:
        if nice is not None and hasattr(os, "setpriority"):
            try:
                os.setpriority(os.PRIO_PGRP, pid, nice)
            except OSError:
                pass

    def kill_group(pid: int) -> None:
        try:
            os.killpg(pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass

    def finish(token: int, rc: int, out: bytes, err: bytes,
               start: float, end: float, spawn_dur: float, pid: int,
               defer: bool = False) -> None:
        with procs_lock:
            procs.pop(token, None)
        batcher.add(pack_result_record(
            token, rc, out, err, start, end, spawn_dur, pid
        ), defer=defer)

    def run_posix(token: int, command: str) -> None:
        nonlocal launcher, reaper
        start = time.time()
        try:
            pid, out_r, err_r = launcher.spawn(command)
        except OSError as exc:
            post(("err", token, f"spawn failed: {exc}".encode()))
            return
        spawn_dur = time.time() - start
        apply_nice(pid)
        with procs_lock:
            procs[token] = pid
            killed_early = token in early_kills
            early_kills.discard(token)
        if killed_early:
            kill_group(pid)

        def on_done(handle, _token=token, _start=start,
                    _spawn_dur=spawn_dur, _pid=pid) -> None:
            finish(_token, handle.returncode, bytes(handle.stdout_buf),
                   bytes(handle.stderr_buf), _start, time.time(),
                   _spawn_dur, _pid, defer=defer_results)

        try:
            reaper.register(pid, out_r, err_r, on_done=on_done)
        except RuntimeError:
            # Reaper died mid-run: collect inline, then degrade to popen.
            os.close(out_r)
            os.close(err_r)
            _, status = os.waitpid(pid, 0)
            finish(token, os.waitstatus_to_exitcode(status), b"",
                   b"worker reaper shut down mid-run", start, time.time(),
                   spawn_dur, pid)
            reaper = None

    def run_popen(token: int, command: str) -> None:
        # Fallback leg: one collector thread per job, Popen in bytes mode.
        import subprocess

        def collect() -> None:
            start = time.time()
            try:
                proc = subprocess.Popen(
                    [shell, "-c", command],
                    stdin=subprocess.DEVNULL,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=env,
                    start_new_session=True,
                )
            except OSError as exc:
                post(("err", token, f"spawn failed: {exc}".encode()))
                return
            spawn_dur = time.time() - start
            apply_nice(proc.pid)
            with procs_lock:
                procs[token] = proc.pid
                killed_early = token in early_kills
                early_kills.discard(token)
            if killed_early:
                kill_group(proc.pid)
            out, err = proc.communicate()
            finish(token, proc.returncode, out, err, start, time.time(),
                   spawn_dur, proc.pid)

        threading.Thread(target=collect, daemon=True).start()

    def spawn(token: int, seq: int, slot: int,
              command: "str | None", args) -> None:
        if command is None:
            if interned is None:
                post(("err", token, b"spawn frame references no interned "
                                    b"template"))
                return
            template, quote = interned
            try:
                command = template.render(args, seq=seq, slot=slot, quote=quote)
            except Exception as exc:
                post(("err", token, f"render failed: {exc}".encode()))
                return
        if reaper is not None and reaper.alive:
            run_posix(token, command)
        else:
            run_popen(token, command)

    def kill_token(token: int) -> None:
        with procs_lock:
            pid = procs.get(token)
            if pid is None:
                early_kills.add(token)
        if pid is not None:
            kill_group(pid)

    def kill_all() -> None:
        with procs_lock:
            pids = list(procs.values())
        for pid in pids:
            kill_group(pid)

    try:
        while True:
            try:
                buf = conn.recv_bytes()
            except (EOFError, OSError):
                break  # parent gone
            if buf and buf[0] == FRAME_MAGIC:
                kind = buf[1]
                if kind == FK_SPAWN:
                    for token, seq, slot, command, args in iter_spawn_records(buf):
                        spawn(token, seq, slot, command, args)
                elif kind == FK_KILL:
                    off = _HEADER.size
                    while off < len(buf):
                        (token,) = _KILL_REC.unpack_from(buf, off)
                        off += _KILL_REC.size
                        kill_token(token)
                continue
            # Pickle fallback lane: rare/complex ops.
            msg = pickle.loads(buf)
            op = msg[0]
            if op == "intern":
                from repro.core.template import CommandTemplate

                try:
                    interned = (CommandTemplate(msg[1]), msg[2])
                except Exception:
                    interned = None  # parent falls back to raw commands
            elif op == "kill_all":
                kill_all()
            elif op == "close":
                break
    finally:
        kill_all()
        batcher.close()
        if reaper is not None:
            reaper.close()
        if launcher is not None:
            launcher.close()
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)  # no inherited-buffer flush, no atexit double-runs


# --------------------------------------------------------------------------
# Parent-side pool
# --------------------------------------------------------------------------
class DispatcherPool:
    """Parent handle: shard selection, result routing, failover re-queue.

    One instance serves one run.  Thread-safe: scheduler worker threads
    call :meth:`run` concurrently; each blocks on its own event until the
    shard's receiver thread delivers the reply.

    ``batch`` caps the spawn/result frame size.  Flushing is gated by
    the pipe, not a timer: a record ships as soon as the shard's send
    lock is free, and records appended while another thread's frame is
    on the wire coalesce into the next frame.  ``batch=1`` (the
    default) pins every frame to one record — the per-message wire
    shape — through the same code path.
    """

    def __init__(
        self,
        n: int,
        shell: str = "/bin/sh",
        env: "dict[str, str] | None" = None,
        use_posix: bool = True,
        nice: "int | None" = None,
        on_event: "Callable[[str, int, int], None] | None" = None,
        batch: int = 1,
    ):
        if n < 1:
            raise ValueError(f"dispatcher count must be >= 1, got {n}")
        self.n = n
        self.shell = shell
        self.env = env
        self.use_posix = use_posix
        self.nice = nice
        #: Optional ``(event_name, shard_index, n)`` hook; the backend
        #: wires it to the tracer (``dispatcher_death`` instants with the
        #: re-queued job count, ``rpc_frame`` instants with the frame's
        #: record count).
        self.on_event = on_event
        self.batch = max(1, min(int(batch), _MAX_BATCH))
        self._shards: list[_Shard] = []
        self._pending: dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self._tokens = itertools.count(1)
        self._started = False
        self._closed = False
        self._interned = False
        #: Jobs re-dispatched after a shard death (monotone counter).
        self.requeued = 0
        #: Control-plane counters (guarded by ``_lock`` on the send side;
        #: receive side is single-writer per shard).
        self.frames_sent = 0
        self.jobs_sent = 0
        self.frames_recv = 0
        self.results_recv = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        for k in range(self.n):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, k, self.shell, self.env,
                      self.use_posix, self.nice, self.batch),
                name=f"repro-dispatcher-{k}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # parent keeps only its end
            shard = _Shard(index=k, process=proc, conn=parent_conn)
            shard.receiver = threading.Thread(
                target=self._recv_loop, args=(shard,), daemon=True,
                name=f"repro-pool-recv-{k}",
            )
            self._shards.append(shard)
            shard.receiver.start()

    def intern_template(self, source: str, quote: bool = False) -> None:
        """Ship the command template to every shard once, at run start.

        After this, :meth:`run` calls that pass ``args`` send only the
        argument delta per job; the worker re-renders locally.
        """
        sent = False
        for shard in self._shards:
            if shard.alive and shard.send(("intern", source, quote)):
                sent = True
        self._interned = sent

    @property
    def interned(self) -> bool:
        """True once a template was interned on at least one shard."""
        return self._interned

    @property
    def alive(self) -> bool:
        """True while at least one shard can still take work."""
        return any(s.alive for s in self._shards)

    @property
    def shard_pids(self) -> "list[int | None]":
        """Worker pids by shard index (None once unknown); for tests."""
        return [s.pid for s in self._shards]

    def shard_loads(self) -> list[int]:
        """Parent-side in-flight estimate per shard; for tests/benchmarks."""
        with self._lock:
            return [s.load for s in self._shards]

    def stats(self) -> dict:
        """Control-plane counters for the RUN_END summary / tracer meta."""
        with self._lock:
            frames_sent = self.frames_sent
            jobs_sent = self.jobs_sent
        return {
            "batch": self.batch,
            "frames_sent": frames_sent,
            "jobs_sent": jobs_sent,
            "frames_recv": self.frames_recv,
            "results_recv": self.results_recv,
            "jobs_per_frame": (
                round(jobs_sent / frames_sent, 2) if frames_sent else 0.0
            ),
            "interned": self._interned,
            "requeued": self.requeued,
        }

    def close(self) -> None:
        """Stop every worker and release any still-blocked callers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
            leftovers = list(self._pending.values())
            self._pending.clear()
            for shard in shards:
                shard.outbox.clear()
        for shard in shards:
            shard.send(("close",))
        deadline = time.time() + 2.0
        for shard in shards:
            shard.process.join(timeout=max(0.0, deadline - time.time()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=1.0)
            shard.alive = False
            try:
                shard.conn.close()
            except OSError:
                pass
        for pending in leftovers:
            self._complete(pending, PoolReply(kind=LOST, shard=pending.shard))

    # -- job path ------------------------------------------------------------
    def run(
        self,
        command: str,
        timeout: "float | None" = None,
        cancelled: "threading.Event | None" = None,
        args: "tuple[str, ...] | None" = None,
        seq: int = 0,
        slot: int = 0,
    ) -> PoolReply:
        """Run one command on some shard; blocks until collected.

        When a template has been interned and ``args`` is given, the spawn
        record carries only the argument tuple (plus ``seq``/``slot`` for
        ``{#}``/``{%}`` rendering); ``command`` is still required as the
        failover/raw form.  Timeout semantics mirror the in-process paths:
        on expiry the job's group gets SIGTERM and we keep waiting
        (unbounded) for collection, returning the reply with
        ``timed_out=True``.  ``cancelled`` closes the cancel_all race: if
        it is set after dispatch, the kill that a concurrent
        ``kill_all()`` may have missed is delivered here.
        """
        pending = self._dispatch(command, args, seq, slot)
        if pending is None:
            return PoolReply(kind=LOST)
        if cancelled is not None and cancelled.is_set():
            # kill_all's shard snapshot may have raced this dispatch.
            self._kill(pending)
        timed_out = False
        if not pending.event.wait(timeout):
            self._kill(pending)
            timed_out = True
            pending.event.wait()
        reply = pending.reply
        assert reply is not None
        reply.timed_out = timed_out
        return reply

    def kill_all(self) -> None:
        """Fan SIGTERM out to every job on every live shard."""
        self._flush_all()
        for shard in self._shards:
            if shard.alive:
                shard.send(("kill_all",))

    # -- internals -----------------------------------------------------------
    def _pick_shard(self) -> "_Shard | None":
        """Least-loaded live shard (caller holds the lock)."""
        best = None
        for shard in self._shards:
            if not shard.alive:
                continue
            if best is None or shard.load < best.load:
                best = shard
        return best

    def _dispatch(
        self,
        command: str,
        args: "tuple[str, ...] | None",
        seq: int,
        slot: int,
    ) -> "_Pending | None":
        token = next(self._tokens)
        if self._interned and args is not None:
            record = pack_spawn_record(token, seq, slot, args=args)
        else:
            record = pack_spawn_record(token, seq, slot, command=command)
        with self._lock:
            if self._closed:
                return None
            shard = self._pick_shard()
            if shard is None:
                return None
            pending = _Pending(token, record, shard.index)
            self._pending[token] = pending
            shard.load += 1
            shard.outbox.append(record)
        self._flush_shard(shard)
        return pending

    def _flush_shard(self, shard: _Shard) -> None:
        """Drain the shard's outbox, one frame (≤ ``batch`` records) per write.

        The records are swapped out *after* the send lock is acquired:
        while one thread's frame is on the wire, records appended by
        concurrent dispatchers accumulate and ride the next frame.  The
        flush is gated by the pipe itself, never a timer — a lone record
        ships immediately, a burst coalesces, and the loop guarantees
        the caller never returns with its own record still buffered.
        """
        while True:
            with shard.send_lock:
                with self._lock:
                    if not shard.outbox:
                        return
                    records = shard.outbox[:self.batch]
                    del shard.outbox[:self.batch]
                failed = not shard.alive
                if not failed:
                    try:
                        shard.conn.send_bytes(pack_frame(FK_SPAWN, records))
                    except (OSError, ValueError, BrokenPipeError):
                        shard.alive = False
                        failed = True
            if failed:
                # The shard died under us.  Everything it owed — this
                # frame's records included (they are all registered in
                # _pending) — re-queues exactly once via _shard_down.
                self._shard_down(shard)
                return
            with self._lock:
                self.frames_sent += 1
                self.jobs_sent += len(records)
            if self.on_event is not None:
                try:
                    self.on_event("rpc_frame", shard.index, len(records))
                except Exception:
                    pass

    def _flush_all(self) -> None:
        for shard in self._shards:
            if shard.outbox:
                self._flush_shard(shard)

    def _redispatch(self, pending: _Pending) -> None:
        """Failover: move one orphaned job to a surviving shard."""
        with self._lock:
            if self._closed:
                shard = None
            else:
                shard = self._pick_shard()
                if shard is not None:
                    pending.shard = shard.index
                    self._pending[pending.token] = pending
                    shard.load += 1
                    shard.outbox.append(pending.record)
        if shard is None:
            self._complete(pending, PoolReply(kind=LOST, shard=pending.shard))
            return
        # Failover flushes immediately: promptness over amortization.  If
        # this flush finds the survivor dead too, _shard_down re-queues
        # again, terminating at LOST once no shard remains.
        self._flush_shard(shard)

    def _kill(self, pending: _Pending) -> None:
        with self._lock:
            shard = self._shards[pending.shard]
        # The spawn record may still be sitting in the outbox; a kill
        # overtaking its own spawn would be lost without this flush (the
        # worker's early_kills set covers the cross-thread residue).
        self._flush_shard(shard)
        shard.send_bytes(
            pack_frame(FK_KILL, [_KILL_REC.pack(pending.token)])
        )

    def _recv_loop(self, shard: _Shard) -> None:
        """Per-shard receiver: deliver replies until the pipe dies."""
        while True:
            try:
                buf = shard.conn.recv_bytes()
            except (EOFError, OSError):
                break
            if buf and buf[0] == FRAME_MAGIC and buf[1] == FK_RESULT:
                records = list(iter_result_records(buf))
                with self._lock:
                    self.frames_recv += 1
                    self.results_recv += len(records)
                for token, rc, out, err, start, end, spawn_dur, pid in records:
                    self._deliver(token, PoolReply(
                        kind=DONE, returncode=rc, stdout=out, stderr=err,
                        start=start, end=end, spawn_dur=spawn_dur, pid=pid,
                        shard=shard.index,
                    ))
                continue
            msg = pickle.loads(buf)
            if msg[0] == "err":
                _, token, message = msg
                self._deliver(token, PoolReply(
                    kind=ERR, returncode=127, stderr=bytes(message),
                    shard=shard.index,
                ))
        self._shard_down(shard)

    def _deliver(self, token: int, reply: PoolReply) -> None:
        with self._lock:
            pending = self._pending.pop(token, None)
            if pending is not None:
                self._shards[pending.shard].load -= 1
        if pending is None:
            return  # duplicate after failover re-dispatch; drop
        self._complete(pending, reply)

    @staticmethod
    def _complete(pending: _Pending, reply: PoolReply) -> None:
        pending.reply = reply
        pending.event.set()

    def _shard_down(self, shard: _Shard) -> None:
        """A shard died: mark it, re-queue its in-flight jobs elsewhere.

        "In flight" covers both frames already on the wire and records
        still buffered in the dead shard's outbox — every one of them is
        registered in ``_pending``, which is the single re-queue source,
        so each victim re-dispatches exactly once regardless of where in
        the frame pipeline the shard died.
        """
        with self._lock:
            if self._closed:
                return
            first_notice = shard.alive
            shard.alive = False
            shard.outbox.clear()
            victims = [p for p in self._pending.values()
                       if p.shard == shard.index]
            for p in victims:
                self._pending.pop(p.token, None)
            shard.load = 0
        if not (victims or first_notice):
            return  # duplicate notification (send failure + recv EOF)
        self.requeued += len(victims)
        if self.on_event is not None:
            try:
                self.on_event("dispatcher_death", shard.index, len(victims))
            except Exception:
                pass
        for p in victims:
            self._redispatch(p)
