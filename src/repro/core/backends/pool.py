"""DispatcherPool: N spawner worker processes fed from one sharded queue.

The paper's Fig. 3 shows the launch-rate ceiling is a *single-dispatcher*
phenomenon: one GNU Parallel instance forks at ~470 jobs/s while N
concurrent instances reach ~6,400/s node-wide before the kernel's own
fork bandwidth saturates.  Our posix_spawn path already sits at ~85% of
the per-process ceiling (BENCH_pr5: 831 vs 993 jobs/s on 1 vCPU), so the
next order of magnitude has to come from *parallel dispatchers* — this
module is that decomposition.

Architecture (``--dispatchers N``)::

    scheduler (one) ── OutputSequencer / JoblogWriter / retries / halt
        │
        LocalShellBackend.run_job            (merge stays centralized)
        │
        DispatcherPool ── least-loaded shard pick, failover re-queue
        ├── shard 0: worker process  [SpawnLauncher + PipeReaper(pidfd)]
        ├── shard 1: worker process  [SpawnLauncher + PipeReaper(pidfd)]
        └── shard k: ...

    Each worker owns a private posix_spawn launcher and pidfd-driven
    PipeReaper, so fork/exec + pipe collection run in N kernel task
    contexts concurrently.  Results travel back over the shard's duplex
    pipe and are delivered to the scheduler worker thread that submitted
    the job — everything above ``run_job`` (``--keep-order`` sequencing,
    ``--joblog`` rows, ``--tag`` prefixes, retries, ``--halt``) is the
    *same code* as the single-dispatcher path, which is what makes the
    cross-shard parity matrix byte-for-byte by construction.

Fault model: a shard that dies mid-run (its pipe hits EOF, or a send
fails) is marked dead and every job in flight on it is transparently
re-dispatched to a surviving shard.  With no survivors, pending jobs
complete as ``lost`` and the backend falls back to its in-process Popen
path — same ladder shape as the reaper-death fallback.

The pool deliberately does NOT own retries, ordering, or halt policy;
those live in the scheduler.  It is a throughput device, not a scheduler.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["DispatcherPool", "PoolReply", "pool_supported"]

#: Reply kinds a ``run()`` call can resolve to.
DONE = "done"    #: job ran; exit status + captured bytes attached
ERR = "err"      #: worker could not spawn it (message in ``stderr``)
LOST = "lost"    #: shard died and no survivor could take the job


def pool_supported() -> bool:
    """True where sharded dispatch can run (POSIX fork/pipe semantics)."""
    return os.name == "posix"


@dataclass
class PoolReply:
    """Outcome of one pooled job, in worker-native (bytes) form.

    Decoding to text happens in the backend with the *same* codec and
    newline translation as the in-process paths — parity requires the
    decode step to be shared, so the pool never decodes.
    """

    kind: str                 # DONE / ERR / LOST
    returncode: int = -1
    stdout: bytes = b""
    stderr: bytes = b""
    start: float = 0.0
    end: float = 0.0
    spawn_dur: float = 0.0    # worker-side spawn latency, seconds
    pid: int = -1             # the job's own pid (worker-side)
    shard: int = -1           # shard that ran (or lost) it
    timed_out: bool = False


class _Pending:
    """Parent-side record of one in-flight job."""

    __slots__ = ("token", "command", "shard", "event", "reply")

    def __init__(self, token: int, command: str, shard: int):
        self.token = token
        self.command = command
        self.shard = shard
        self.event = threading.Event()
        self.reply: Optional[PoolReply] = None


@dataclass
class _Shard:
    """Parent-side view of one dispatcher worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    conn: "multiprocessing.connection.Connection"
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True
    #: Jobs currently dispatched to this shard (parent-side estimate,
    #: used for least-loaded shard selection).
    load: int = 0
    receiver: Optional[threading.Thread] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def send(self, msg: tuple) -> bool:
        """Post one op to the worker; False (and mark dead) on failure."""
        with self.send_lock:
            if not self.alive:
                return False
            try:
                self.conn.send(msg)
                return True
            except (OSError, ValueError, BrokenPipeError):
                self.alive = False
                return False


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------
def _worker_main(
    conn,
    shard_index: int,
    shell: str,
    env: "dict[str, str] | None",
    use_posix: bool,
    nice: "int | None",
) -> None:
    """One dispatcher worker: spawn loop + private reaper, results by pipe.

    Runs until the parent sends ``("close",)`` or its end of the pipe
    disappears (parent death) — then kills every job it still owns and
    exits via ``os._exit`` so inherited buffers never double-flush.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns ^C policy
    # Imports deferred to the child so a "spawn" start method also works.
    from repro.core.backends.reaper import PipeReaper
    from repro.core.backends.spawn import SpawnLauncher, spawn_supported

    send_lock = threading.Lock()

    def post(msg: tuple) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                pass  # parent is gone; the EOF path below will exit us

    launcher = reaper = None
    if use_posix and spawn_supported():
        launcher = SpawnLauncher(shell, env=env)
        reaper = PipeReaper()

    procs: dict[int, int] = {}      # token -> job pgid
    procs_lock = threading.Lock()

    def apply_nice(pid: int) -> None:
        if nice is not None and hasattr(os, "setpriority"):
            try:
                os.setpriority(os.PRIO_PGRP, pid, nice)
            except OSError:
                pass

    def kill_group(pid: int) -> None:
        try:
            os.killpg(pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass

    def finish(token: int, rc: int, out: bytes, err: bytes,
               start: float, end: float, spawn_dur: float, pid: int) -> None:
        with procs_lock:
            procs.pop(token, None)
        post(("done", token, rc, out, err, start, end, spawn_dur, pid))

    def run_posix(token: int, command: str) -> None:
        nonlocal launcher, reaper
        start = time.time()
        try:
            pid, out_r, err_r = launcher.spawn(command)
        except OSError as exc:
            post(("err", token, f"spawn failed: {exc}".encode()))
            return
        spawn_dur = time.time() - start
        apply_nice(pid)
        with procs_lock:
            procs[token] = pid

        def on_done(handle, _token=token, _start=start,
                    _spawn_dur=spawn_dur, _pid=pid) -> None:
            finish(_token, handle.returncode, bytes(handle.stdout_buf),
                   bytes(handle.stderr_buf), _start, time.time(),
                   _spawn_dur, _pid)

        try:
            reaper.register(pid, out_r, err_r, on_done=on_done)
        except RuntimeError:
            # Reaper died mid-run: collect inline, then degrade to popen.
            os.close(out_r)
            os.close(err_r)
            _, status = os.waitpid(pid, 0)
            finish(token, os.waitstatus_to_exitcode(status), b"",
                   b"worker reaper shut down mid-run", start, time.time(),
                   spawn_dur, pid)
            reaper = None

    def run_popen(token: int, command: str) -> None:
        # Fallback leg: one collector thread per job, Popen in bytes mode.
        import subprocess

        def collect() -> None:
            start = time.time()
            try:
                proc = subprocess.Popen(
                    [shell, "-c", command],
                    stdin=subprocess.DEVNULL,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=env,
                    start_new_session=True,
                )
            except OSError as exc:
                post(("err", token, f"spawn failed: {exc}".encode()))
                return
            spawn_dur = time.time() - start
            apply_nice(proc.pid)
            with procs_lock:
                procs[token] = proc.pid
            out, err = proc.communicate()
            finish(token, proc.returncode, out, err, start, time.time(),
                   spawn_dur, proc.pid)

        threading.Thread(target=collect, daemon=True).start()

    def kill_all() -> None:
        with procs_lock:
            pids = list(procs.values())
        for pid in pids:
            kill_group(pid)

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent gone
            op = msg[0]
            if op == "spawn":
                _, token, command = msg
                if reaper is not None and reaper.alive:
                    run_posix(token, command)
                else:
                    run_popen(token, command)
            elif op == "kill":
                with procs_lock:
                    pid = procs.get(msg[1])
                if pid is not None:
                    kill_group(pid)
            elif op == "kill_all":
                kill_all()
            elif op == "close":
                break
    finally:
        kill_all()
        if reaper is not None:
            reaper.close()
        if launcher is not None:
            launcher.close()
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)  # no inherited-buffer flush, no atexit double-runs


# --------------------------------------------------------------------------
# Parent-side pool
# --------------------------------------------------------------------------
class DispatcherPool:
    """Parent handle: shard selection, result routing, failover re-queue.

    One instance serves one run.  Thread-safe: scheduler worker threads
    call :meth:`run` concurrently; each blocks on its own event until the
    shard's receiver thread delivers the reply.
    """

    def __init__(
        self,
        n: int,
        shell: str = "/bin/sh",
        env: "dict[str, str] | None" = None,
        use_posix: bool = True,
        nice: "int | None" = None,
        on_event: "Callable[[str, int, int], None] | None" = None,
    ):
        if n < 1:
            raise ValueError(f"dispatcher count must be >= 1, got {n}")
        self.n = n
        self.shell = shell
        self.env = env
        self.use_posix = use_posix
        self.nice = nice
        #: Optional ``(event_name, shard_index, n_requeued)`` hook; the
        #: backend wires it to the tracer (``dispatcher_death`` instants).
        self.on_event = on_event
        self._shards: list[_Shard] = []
        self._pending: dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self._tokens = itertools.count(1)
        self._started = False
        self._closed = False
        #: Jobs re-dispatched after a shard death (monotone counter).
        self.requeued = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        for k in range(self.n):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, k, self.shell, self.env,
                      self.use_posix, self.nice),
                name=f"repro-dispatcher-{k}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # parent keeps only its end
            shard = _Shard(index=k, process=proc, conn=parent_conn)
            shard.receiver = threading.Thread(
                target=self._recv_loop, args=(shard,), daemon=True,
                name=f"repro-pool-recv-{k}",
            )
            self._shards.append(shard)
            shard.receiver.start()

    @property
    def alive(self) -> bool:
        """True while at least one shard can still take work."""
        return any(s.alive for s in self._shards)

    @property
    def shard_pids(self) -> "list[int | None]":
        """Worker pids by shard index (None once unknown); for tests."""
        return [s.pid for s in self._shards]

    def shard_loads(self) -> list[int]:
        """Parent-side in-flight estimate per shard; for tests/benchmarks."""
        with self._lock:
            return [s.load for s in self._shards]

    def close(self) -> None:
        """Stop every worker and release any still-blocked callers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
            leftovers = list(self._pending.values())
            self._pending.clear()
        for shard in shards:
            shard.send(("close",))
        deadline = time.time() + 2.0
        for shard in shards:
            shard.process.join(timeout=max(0.0, deadline - time.time()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=1.0)
            shard.alive = False
            try:
                shard.conn.close()
            except OSError:
                pass
        for pending in leftovers:
            self._complete(pending, PoolReply(kind=LOST, shard=pending.shard))

    # -- job path ------------------------------------------------------------
    def run(
        self,
        command: str,
        timeout: "float | None" = None,
        cancelled: "threading.Event | None" = None,
    ) -> PoolReply:
        """Run one command on some shard; blocks until collected.

        Timeout semantics mirror the in-process paths: on expiry the job's
        group gets SIGTERM and we keep waiting (unbounded) for collection,
        returning the reply with ``timed_out=True``.  ``cancelled`` closes
        the cancel_all race: if it is set after dispatch, the kill that a
        concurrent ``kill_all()`` may have missed is delivered here.
        """
        pending = self._dispatch(command)
        if pending is None:
            return PoolReply(kind=LOST)
        if cancelled is not None and cancelled.is_set():
            # kill_all's shard snapshot may have raced this dispatch.
            self._kill(pending)
        timed_out = False
        if not pending.event.wait(timeout):
            self._kill(pending)
            timed_out = True
            pending.event.wait()
        reply = pending.reply
        assert reply is not None
        reply.timed_out = timed_out
        return reply

    def kill_all(self) -> None:
        """Fan SIGTERM out to every job on every live shard."""
        for shard in self._shards:
            if shard.alive:
                shard.send(("kill_all",))

    # -- internals -----------------------------------------------------------
    def _pick_shard(self) -> "_Shard | None":
        """Least-loaded live shard (caller holds the lock)."""
        best = None
        for shard in self._shards:
            if not shard.alive:
                continue
            if best is None or shard.load < best.load:
                best = shard
        return best

    def _dispatch(self, command: str) -> "_Pending | None":
        token = next(self._tokens)
        while True:
            with self._lock:
                if self._closed:
                    return None
                shard = self._pick_shard()
                if shard is None:
                    return None
                pending = _Pending(token, command, shard.index)
                self._pending[token] = pending
                shard.load += 1
            if shard.send(("spawn", token, command)):
                return pending
            # Send failed: the shard died under us.  Unwind and retry on
            # the next survivor (the receiver's EOF path handles jobs that
            # were already accepted).
            with self._lock:
                self._pending.pop(token, None)
                shard.load -= 1
            self._shard_down(shard)

    def _redispatch(self, pending: _Pending) -> None:
        """Failover: move one orphaned job to a surviving shard."""
        with self._lock:
            if self._closed:
                shard = None
            else:
                shard = self._pick_shard()
                if shard is not None:
                    pending.shard = shard.index
                    self._pending[pending.token] = pending
                    shard.load += 1
        if shard is None:
            self._complete(pending, PoolReply(kind=LOST, shard=pending.shard))
            return
        if not shard.send(("spawn", pending.token, pending.command)):
            with self._lock:
                self._pending.pop(pending.token, None)
                shard.load -= 1
            self._shard_down(shard)
            self._redispatch(pending)

    def _kill(self, pending: _Pending) -> None:
        with self._lock:
            shard = self._shards[pending.shard]
        shard.send(("kill", pending.token))

    def _recv_loop(self, shard: _Shard) -> None:
        """Per-shard receiver: deliver replies until the pipe dies."""
        while True:
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "done":
                _, token, rc, out, err, start, end, spawn_dur, pid = msg
                self._deliver(token, PoolReply(
                    kind=DONE, returncode=rc, stdout=out, stderr=err,
                    start=start, end=end, spawn_dur=spawn_dur, pid=pid,
                    shard=shard.index,
                ))
            elif msg[0] == "err":
                _, token, message = msg
                self._deliver(token, PoolReply(
                    kind=ERR, returncode=127, stderr=bytes(message),
                    shard=shard.index,
                ))
        self._shard_down(shard)

    def _deliver(self, token: int, reply: PoolReply) -> None:
        with self._lock:
            pending = self._pending.pop(token, None)
            if pending is not None:
                self._shards[pending.shard].load -= 1
        if pending is None:
            return  # duplicate after failover re-dispatch; drop
        self._complete(pending, reply)

    @staticmethod
    def _complete(pending: _Pending, reply: PoolReply) -> None:
        pending.reply = reply
        pending.event.set()

    def _shard_down(self, shard: _Shard) -> None:
        """A shard died: mark it, re-queue its in-flight jobs elsewhere."""
        with self._lock:
            if self._closed:
                return
            first_notice = shard.alive
            shard.alive = False
            victims = [p for p in self._pending.values()
                       if p.shard == shard.index]
            for p in victims:
                self._pending.pop(p.token, None)
            shard.load = 0
        if not (victims or first_notice):
            return  # duplicate notification (send failure + recv EOF)
        self.requeued += len(victims)
        if self.on_event is not None:
            try:
                self.on_event("dispatcher_death", shard.index, len(victims))
            except Exception:
                pass
        for p in victims:
            self._redispatch(p)
