"""GPU devices and the {%}-based isolation idiom (§IV-D)."""

from repro.gpu.device import (
    GpuBusyError,
    GpuDevice,
    GpuPool,
    parse_visible_devices,
    slot_to_device,
)

__all__ = [
    "GpuBusyError",
    "GpuDevice",
    "GpuPool",
    "parse_visible_devices",
    "slot_to_device",
]
