"""GPU devices and visibility masks.

Implements the semantics behind the paper's "GPU isolation" idiom
(§IV-D): a process that sets ``HIP_VISIBLE_DEVICES=<k>`` sees exactly one
device, and GNU Parallel's slot number ``{%}`` guarantees ``k`` is unique
among concurrent jobs when ``-j`` equals the GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

__all__ = ["GpuDevice", "GpuPool", "parse_visible_devices", "slot_to_device"]


class GpuBusyError(ReproError):
    """Raised when two jobs claim the same GPU concurrently (a correctness
    failure of the isolation scheme, surfaced loudly rather than silently
    oversubscribing)."""


@dataclass
class GpuDevice:
    """One schedulable GPU (a GCD on Frontier's MI250X)."""

    index: int
    busy_by: Optional[str] = None
    #: Total completed kernels/tasks, for utilization accounting.
    tasks_completed: int = 0

    @property
    def busy(self) -> bool:
        return self.busy_by is not None

    def claim(self, owner: str) -> None:
        """Mark the device in use by ``owner``; raises if already busy."""
        if self.busy_by is not None:
            raise GpuBusyError(
                f"GPU {self.index} already claimed by {self.busy_by!r}; "
                f"rejected claim by {owner!r}"
            )
        self.busy_by = owner

    def release(self, owner: str) -> None:
        if self.busy_by != owner:
            raise GpuBusyError(
                f"GPU {self.index} released by {owner!r} but owned by {self.busy_by!r}"
            )
        self.busy_by = None
        self.tasks_completed += 1


class GpuPool:
    """The GPUs of one node."""

    def __init__(self, count: int):
        if count < 0:
            raise ReproError(f"GPU count must be >= 0, got {count}")
        self.devices = [GpuDevice(i) for i in range(count)]

    def __len__(self) -> int:
        return len(self.devices)

    def device(self, index: int) -> GpuDevice:
        try:
            return self.devices[index]
        except IndexError:
            raise ReproError(
                f"GPU index {index} out of range (node has {len(self.devices)})"
            ) from None

    @property
    def busy_count(self) -> int:
        return sum(1 for d in self.devices if d.busy)


def parse_visible_devices(value: str) -> list[int]:
    """Parse a ``HIP_VISIBLE_DEVICES``/``CUDA_VISIBLE_DEVICES`` value."""
    value = value.strip()
    if not value:
        return []
    try:
        return [int(part) for part in value.split(",")]
    except ValueError:
        raise ReproError(f"bad VISIBLE_DEVICES value: {value!r}") from None


def slot_to_device(slot: int, gpus_per_node: int) -> int:
    """The paper's mapping: ``HIP_VISIBLE_DEVICES=$(({%} - 1))``.

    Valid only when the engine runs with ``-j <= gpus_per_node``; with a
    larger ``-j`` two slots would map onto the same device, which is
    exactly the bug the idiom avoids — so we raise rather than wrap.
    """
    if slot < 1:
        raise ReproError(f"slot numbers are 1-based, got {slot}")
    device = slot - 1
    if device >= gpus_per_node:
        raise ReproError(
            f"slot {slot} maps to GPU {device} but the node has only "
            f"{gpus_per_node}; run with -j{gpus_per_node} or fewer"
        )
    return device
