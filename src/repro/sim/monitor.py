"""Trace collection for simulation runs.

A :class:`Monitor` records timestamped samples into named series; the
analysis layer (``repro.analysis``) turns these into the statistics the
paper's figures report (makespans, interquartile ranges, launch rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

__all__ = ["Monitor", "Sample"]


@dataclass(frozen=True)
class Sample:
    """One observation: simulated ``time``, numeric ``value``, optional tag."""

    time: float
    value: float
    tag: Any = None


@dataclass
class Monitor:
    """Named series of :class:`Sample` observations."""

    series: dict[str, list[Sample]] = field(default_factory=dict)

    def record(self, name: str, time: float, value: float, tag: Any = None) -> None:
        """Append one sample to series ``name``."""
        self.series.setdefault(name, []).append(Sample(time, float(value), tag))

    def values(self, name: str) -> np.ndarray:
        """All values of series ``name`` as an array (empty if absent)."""
        return np.array([s.value for s in self.series.get(name, [])], dtype=float)

    def times(self, name: str) -> np.ndarray:
        """All timestamps of series ``name`` as an array (empty if absent)."""
        return np.array([s.time for s in self.series.get(name, [])], dtype=float)

    def count(self, name: str) -> int:
        """Number of samples in series ``name``."""
        return len(self.series.get(name, []))

    def names(self) -> Iterable[str]:
        """All series names."""
        return self.series.keys()

    def merge(self, other: "Monitor") -> None:
        """Append all of ``other``'s samples into this monitor."""
        for name, samples in other.series.items():
            self.series.setdefault(name, []).extend(samples)
