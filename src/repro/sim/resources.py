"""Shared-resource primitives for the simulation kernel.

Three primitives cover every substrate in this package:

* :class:`Resource` — counted capacity with FIFO queueing (CPU slots, GPU
  slots, rsync streams, fork bandwidth tokens).
* :class:`Store` — a queue of items with blocking get/put (work queues,
  the ``tail -f q.proc`` queue file in the fetch-process workflow).
* :class:`FairShareLink` — a processor-sharing bandwidth pipe (Lustre OSTs,
  NVMe devices, NICs): N concurrent flows each progress at ``rate / N``,
  recomputed whenever a flow arrives or departs.  This is the standard
  fluid model for shared storage/network bandwidth.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event

__all__ = ["Resource", "Request", "Store", "FairShareLink", "RateStation"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when capacity is granted.

    Supports the context-manager protocol *conceptually* via
    :meth:`Resource.release`; simulated processes typically do::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """Counted capacity with FIFO grant order.

    ``capacity`` units exist; each granted :class:`Request` holds one unit
    until released.  Grants are strictly FIFO, which models GNU Parallel's
    slot queue and Slurm's per-node core allocation adequately.
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of capacity units currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one capacity unit; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the capacity unit held by ``request``.

        Releasing an ungranted-but-waiting request cancels it; releasing a
        request twice is an error.
        """
        if request in self._users:
            self._users.discard(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("release() of a request not held or queued") from None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.add(req)
            req.succeed()


class Store:
    """An unbounded (or bounded) FIFO of items with blocking get/put."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Add ``item``; fires immediately unless the store is full."""
        ev = Event(self.env)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((ev, item))
        else:
            self._items.append(item)
            ev.succeed()
            self._wake_getters()
        return ev

    def get(self) -> Event:
        """Remove and return the oldest item; blocks while empty."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def _wake_getters(self) -> None:
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()
        self._wake_getters()


class RateStation:
    """A serialized service point with a fixed maximum throughput.

    Models anything that processes requests one at a time at ``rate``
    operations/second: a GNU Parallel dispatcher (~470 jobs/s), a node's
    kernel fork path (~6,400 forks/s), a Lustre metadata server, Podman's
    database lock (~65 launches/s), a Slurm controller.

    ``serve()`` returns an event that fires once the request has received
    its ``1/rate`` (or custom) service time; requests are served FIFO.
    The long-run completion rate can never exceed ``rate``, which is
    exactly the "launch-rate ceiling" phenomenon in the paper's Figs. 3-5.
    """

    def __init__(self, env: Environment, rate: float, name: str = ""):
        if rate <= 0:
            raise SimulationError(f"station rate must be > 0, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._gate = Resource(env, 1)
        #: Completed service count (monotone).
        self.served = 0

    @property
    def service_time(self) -> float:
        """Default per-request service time, seconds."""
        return 1.0 / self.rate

    def serve(self, work: float = 1.0) -> Event:
        """Request ``work`` units of service (default one operation)."""
        if work < 0:
            raise SimulationError(f"negative work: {work}")
        done = Event(self.env)
        self.env.process(self._serve_one(work, done), name=f"station:{self.name}")
        return done

    def _serve_one(self, work: float, done: Event):
        req = self._gate.request()
        yield req
        try:
            yield self.env.timeout(work * self.service_time)
        finally:
            self._gate.release(req)
        self.served += 1
        done.succeed(self.env.now)

    @property
    def queue_length(self) -> int:
        """Requests waiting for service."""
        return self._gate.queue_length


class _Flow:
    __slots__ = ("size", "remaining", "event", "last_update", "weight")

    def __init__(self, size: float, event: Event, now: float, weight: float):
        self.size = float(size)
        self.remaining = float(size)
        self.event = event
        self.last_update = now
        self.weight = float(weight)


class FairShareLink:
    """A processor-sharing pipe: total ``rate`` split among active flows.

    Each active flow with weight *w* progresses at ``rate * w / W`` where
    *W* is the sum of active weights.  Completion times are recomputed on
    every arrival/departure — the classic fluid approximation used for
    shared filesystem and network bandwidth.

    ``rate`` and ``size`` units are arbitrary but must agree (we use bytes
    and bytes/second throughout the storage models).

    An optional ``max_flows`` bounds concurrency (e.g. a Lustre client cap);
    excess transfers FIFO-queue.
    """

    def __init__(
        self,
        env: Environment,
        rate: float,
        max_flows: Optional[int] = None,
        name: str = "",
    ):
        if rate <= 0:
            raise SimulationError(f"link rate must be > 0, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self.max_flows = max_flows
        self._flows: list[_Flow] = []
        self._pending: deque[tuple[float, float, Event]] = deque()
        self._completion: Optional[Event] = None  # timer for next finish
        self._timer_proc = None
        #: Total units transferred through this link (monotone counter).
        self.total_transferred = 0.0

    @property
    def active_flows(self) -> int:
        """Number of flows currently sharing the link."""
        return len(self._flows)

    def transfer(self, size: float, weight: float = 1.0) -> Event:
        """Move ``size`` units through the link; fires on completion.

        Zero-size transfers complete at the current instant (but still via
        the event loop, preserving causality).
        """
        if size < 0:
            raise SimulationError(f"negative transfer size: {size}")
        if weight <= 0:
            raise SimulationError(f"transfer weight must be > 0, got {weight}")
        done = Event(self.env)
        if size == 0:
            done.succeed(0.0)
            return done
        if self.max_flows is not None and len(self._flows) >= self.max_flows:
            self._pending.append((size, weight, done))
        else:
            self._admit(size, weight, done)
        return done

    # -- internals -----------------------------------------------------------
    def _admit(self, size: float, weight: float, done: Event) -> None:
        self._settle()
        self._flows.append(_Flow(size, done, self.env.now, weight))
        self._rearm()

    def _total_weight(self) -> float:
        return sum(f.weight for f in self._flows)

    def _settle(self) -> None:
        """Account progress made since the last settle at the old share rates."""
        if not self._flows:
            return
        now = self.env.now
        total_w = self._total_weight()
        for f in self._flows:
            elapsed = now - f.last_update
            if elapsed > 0:
                progressed = self.rate * (f.weight / total_w) * elapsed
                f.remaining = max(0.0, f.remaining - progressed)
            f.last_update = now

    def _rearm(self) -> None:
        """(Re)start the timer for the earliest flow completion."""
        if self._timer_proc is not None and self._timer_proc.is_alive:
            self._timer_proc.interrupt("rearm")
            self._timer_proc = None
        if not self._flows:
            return
        total_w = self._total_weight()
        soonest = min(
            f.remaining / (self.rate * (f.weight / total_w)) for f in self._flows
        )
        self._timer_proc = self.env.process(
            self._wait_and_complete(soonest), name=f"link-timer:{self.name}"
        )

    def _wait_and_complete(self, delay: float):
        from repro.errors import InterruptError

        try:
            yield self.env.timeout(delay)
        except InterruptError:
            return
        self._timer_proc = None  # we are the timer; don't self-interrupt in _rearm
        self._settle()
        # A flow is done when its residual *time* is below the clock's
        # resolution at the current instant: with very fast links (or a
        # large `now`) the remaining work can be too small for the float
        # clock to ever advance, which would otherwise spin the timer
        # forever at one timestamp.
        total_w = self._total_weight()
        eps_t = max(1e-12, 4.0 * math.ulp(self.env.now))
        def _done(f: _Flow) -> bool:
            share = self.rate * (f.weight / total_w)
            return f.remaining <= 1e-9 or f.remaining / share <= eps_t
        finished = [f for f in self._flows if _done(f)]
        self._flows = [f for f in self._flows if not _done(f)]
        for f in finished:
            self.total_transferred += f.size
            f.event.succeed(self.env.now)
        while self._pending and (
            self.max_flows is None or len(self._flows) < self.max_flows
        ):
            size, weight, done = self._pending.popleft()
            self._flows.append(_Flow(size, done, self.env.now, weight))
        self._rearm()
