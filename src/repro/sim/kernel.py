"""Discrete-event simulation kernel.

A small, from-scratch, generator-based discrete-event engine in the style
of SimPy: simulated *processes* are Python generators that ``yield`` events;
the :class:`Environment` advances a virtual clock and resumes processes when
the events they wait on fire.

Only the features the cluster substrates need are implemented:

* :class:`Event` — one-shot triggerable with success/failure and callbacks,
* :class:`Timeout` — fires after a virtual delay,
* :class:`Process` — runs a generator, is itself an event (fires on return),
* :class:`Condition` via :func:`all_of` / :func:`any_of`,
* process interruption (:meth:`Process.interrupt`).

The event loop is a binary heap ordered by ``(time, priority, sequence)``
giving deterministic FIFO ordering among simultaneous events — determinism
matters because benchmark results must be reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import InterruptError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "all_of",
    "any_of",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for urgent events (interrupts) — processed before
#: normal events scheduled at the same instant.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Sentinel for "event not yet fired".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulated
    instant.  Processes wait on events by ``yield``-ing them.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure value has been retrieved or handled, so the
        #: kernel can detect unhandled simulated exceptions.
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` thrown."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a newly created :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT)


class _Interrupt(Event):
    """Internal urgent event carrying an interruption into a process."""

    def __init__(self, env: "Environment", process: "Process", cause: Any):
        super().__init__(env)
        self._ok = False
        self._value = InterruptError(cause)
        self._defused = True
        self.callbacks.append(process._resume_interrupt)
        env._schedule(self, priority=URGENT)


class Process(Event):
    """A simulated process driving a generator of events.

    The process is itself an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each other
    simply by yielding the :class:`Process` object.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it resumes queues both interrupts (matching SimPy).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is None and self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        _Interrupt(self.env, self, cause)

    # -- kernel plumbing ----------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # finished in the meantime; drop the interrupt
            return
        # Detach from whatever we were waiting for.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active = self
        while True:
            if event._ok:
                try:
                    next_ev = self._generator.send(event._value)
                except StopIteration as stop:
                    self._finish(True, stop.value)
                    break
                except BaseException as exc:
                    self._finish(False, exc)
                    break
            else:
                event._defused = True
                exc = event._value
                try:
                    next_ev = self._generator.throw(exc)
                except StopIteration as stop:
                    self._finish(True, stop.value)
                    break
                except BaseException as raised:
                    if raised is exc and not isinstance(raised, InterruptError):
                        # Unhandled simulated failure: propagate as process
                        # failure rather than crashing the kernel.
                        self._finish(False, raised)
                        break
                    self._finish(False, raised)
                    break

            if not isinstance(next_ev, Event):
                self._finish(
                    False,
                    SimulationError(
                        f"process {self.name!r} yielded non-event {next_ev!r}"
                    ),
                )
                break
            if next_ev.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_ev
                continue
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        self.env._active = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        if not ok and isinstance(value, BaseException):
            # Will be re-raised by Environment.run() if nobody waits on us.
            pass
        self.env._schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Composite event over several sub-events.

    Fires when ``evaluate(events, n_triggered_ok)`` returns True, or fails as
    soon as any sub-event fails.  Use :func:`all_of` / :func:`any_of`.
    The success value is a dict mapping each *triggered* sub-event to its
    value, in trigger order.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        self._results: dict[Event, Any] = {}
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        if not self._events:
            self.succeed(self._results)
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        self._results[event] = event._value
        if self._evaluate(self._events, self._count):
            self.succeed(dict(self._results))


def all_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Event that fires once *all* of ``events`` have fired successfully."""
    return Condition(env, lambda evs, n: n == len(evs), events)


def any_of(env: "Environment", events: Iterable[Event]) -> Condition:
    """Event that fires once *any* of ``events`` has fired successfully."""
    return Condition(env, lambda evs, n: n >= 1, events)


class Environment:
    """The simulation environment: virtual clock plus event loop."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulated process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """See :func:`all_of`."""
        return all_of(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """See :func:`any_of`."""
        return any_of(self, events)

    # -- scheduling and the loop --------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event: advance the clock and run its callbacks."""
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until`` is None — run until no events remain.
        * ``until`` is a number — run until the clock reaches it.
        * ``until`` is an :class:`Event` — run until it fires, returning its
          value (raising its exception if it failed).
        """
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if isinstance(until, Event):
            stop_ev = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(f"until={stop_at} is in the past (now={self._now})")

        while self._queue:
            if stop_ev is not None and stop_ev.processed:
                break
            if stop_at is not None and self.peek() > stop_at:
                self._now = stop_at
                return None
            self.step()

        if stop_ev is not None:
            if not stop_ev.triggered:
                raise SimulationError("run(until=event) exhausted schedule before event fired")
            if not stop_ev._ok:
                stop_ev._defused = True
                raise stop_ev._value
            return stop_ev._value
        if stop_at is not None:
            self._now = stop_at
        return None
