"""Calibrated network cost model for the simulated remote transport.

Separates *what the network costs* from *who pays it*: the remote
layer's :class:`~repro.remote.transport.SimTransport` advances per-host
virtual clocks by the durations this model computes, so a simulated
multi-host scaling experiment (EXPERIMENTS.md) uses the same latency and
bandwidth vocabulary as the DTN/filesystem models elsewhere in
:mod:`repro.sim`.

Jitter draws come from :class:`~repro.sim.random.RngRegistry` named
streams (one per host), keeping multi-host simulations reproducible and
insensitive to host-callback ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError

__all__ = ["NetModel"]


@dataclass(frozen=True)
class NetModel:
    """Per-hop latency + bandwidth, with optional fractional jitter.

    Defaults approximate a datacenter-class interconnect: 200 µs
    round-trip setup per operation and a 10 GbE-ish 1.25 GB/s stream.
    ``jitter`` widens each duration uniformly by up to ±``jitter``
    fraction (0 disables it).

    ``stream_bw_Bps`` caps what *one* stream can carry (TCP-window or
    per-flow QoS limits): a multi-stream transfer then reaches
    ``min(bw_Bps, streams * stream_bw_Bps)``.  Left ``None``, a single
    stream already saturates the link and streams change nothing — the
    honest default for a loopback/SAN-class hop.
    """

    latency_s: float = 200e-6
    bw_Bps: float = 1.25e9
    jitter: float = 0.0
    stream_bw_Bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise SimulationError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bw_Bps <= 0:
            raise SimulationError(f"bw_Bps must be > 0, got {self.bw_Bps}")
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.stream_bw_Bps is not None and self.stream_bw_Bps <= 0:
            raise SimulationError(
                f"stream_bw_Bps must be > 0, got {self.stream_bw_Bps}"
            )

    def effective_bw(self, streams: int = 1) -> float:
        """Aggregate bandwidth ``streams`` concurrent flows achieve."""
        if streams < 1:
            raise SimulationError(f"streams must be >= 1, got {streams}")
        if self.stream_bw_Bps is None:
            return self.bw_Bps
        return min(self.bw_Bps, streams * self.stream_bw_Bps)

    def transfer_time(self, nbytes: int, u: float = 0.0, streams: int = 1) -> float:
        """Seconds to move ``nbytes`` one hop; ``u`` in [-1, 1] jitters it."""
        base = self.latency_s + max(0, nbytes) / self.effective_bw(streams)
        return base * (1.0 + self.jitter * u)

    def remove_time(self, nfiles: int, u: float = 0.0) -> float:
        """Seconds for one batched remove of ``nfiles`` staged files.

        One round-trip per *batch* — the point of batching — regardless
        of how many paths ride in it (zero files, zero cost).
        """
        if nfiles <= 0:
            return 0.0
        return self.latency_s * (1.0 + self.jitter * u)

    def exec_time(self, runtime_s: float, u: float = 0.0) -> float:
        """Seconds for a remote command: connect latency + its runtime."""
        if runtime_s < 0:
            raise SimulationError(f"runtime_s must be >= 0, got {runtime_s}")
        return (self.latency_s + runtime_s) * (1.0 + self.jitter * u)
