"""Deterministic per-component random-number streams.

Every stochastic model in the simulator (allocation delays, straggler nodes,
container failures, task-duration jitter) draws from its own named stream so
that adding a new model never perturbs the draws of an existing one — the
standard trick for reproducible stochastic simulation.

Streams are spawned from a single root seed with
:class:`numpy.random.SeedSequence`, so ``RngRegistry(seed=42)`` always
produces identical results for identical component names.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is derived from the root seed *and* the name, so
        the call order does not matter.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive child entropy from the name deterministically.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def _stable_hash(name: str) -> int:
    """A process-stable 64-bit hash of ``name`` (Python's ``hash`` is salted)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h
