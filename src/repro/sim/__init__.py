"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.kernel.Environment`, events, processes — the kernel;
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.FairShareLink` — shared resources;
* :class:`~repro.sim.random.RngRegistry` — reproducible RNG streams;
* :class:`~repro.sim.monitor.Monitor` — trace collection.
"""

from repro.sim.kernel import (
    Environment,
    Event,
    Process,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.monitor import Monitor, Sample
from repro.sim.netmodel import NetModel
from repro.sim.random import RngRegistry
from repro.sim.resources import FairShareLink, RateStation, Request, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "all_of",
    "any_of",
    "Monitor",
    "Sample",
    "NetModel",
    "RngRegistry",
    "FairShareLink",
    "RateStation",
    "Request",
    "Resource",
    "Store",
]
