#!/usr/bin/env python3
"""Quickstart: the engine's public API in five minutes.

Run:  python examples/quickstart.py
"""

import sys
import tempfile

from repro import Parallel, run_parallel


def main() -> None:
    # 1. Shell commands with replacement strings, GNU Parallel style.
    #    (echo {} ::: apple banana cherry)
    print("== shell commands ==")
    summary = Parallel("echo got {}", jobs=2, keep_order=True,
                       output=sys.stdout).run(["apple", "banana", "cherry"])
    print(f"-> {summary.n_succeeded} jobs ok, wall {summary.wall_time:.2f}s")

    # 2. Path-manipulating replacement strings and multiple input sources
    #    (dry run prints what would execute: convert {1} -scale {2}% ...).
    print("\n== replacement strings + two input sources (dry run) ==")
    p = Parallel("convert {1} -scale {2}% {1/.}_{2}.png",
                 dry_run=True, keep_order=True, output=sys.stdout)
    p.run_sources([["/img/a.jpg", "/img/b.jpg"], ["25", "50"]])

    # 3. Python callables: the "last-mile parallelizing driver".
    print("\n== callables ==")
    squares = Parallel(lambda x: int(x) ** 2, jobs=4).map(range(8))
    print(f"squares: {squares}")

    # 4. Sequence/slot tokens — the {%} slot number drives GPU isolation.
    print("\n== job slots ==")
    summary = Parallel("echo job {#} ran in slot {%}", jobs=2,
                       keep_order=True, output=sys.stdout).run("abcd")

    # 5. Joblog + resume: crash-safe batch processing.
    print("\n== joblog / resume ==")
    with tempfile.NamedTemporaryFile(suffix=".joblog") as log:
        first = run_parallel("exit {}", ["0", "1", "0"], jobs=1, joblog=log.name)
        print(f"first run: {first.n_succeeded} ok, {first.n_failed} failed")
        second = run_parallel("exit 0 # {}", ["0", "1", "0"], jobs=1,
                              joblog=log.name, resume_failed=True)
        print(f"resume-failed: re-ran {second.n_dispatched} job(s), "
              f"skipped {second.n_skipped}")


if __name__ == "__main__":
    main()
