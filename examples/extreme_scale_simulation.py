#!/usr/bin/env python3
"""Fig. 1's extreme-scale weak scaling, replayed on the simulator.

One engine instance per Frontier node, 128 hostname-timestamp tasks per
node, output staged NVMe -> Lustre — at 1,000 / 5,000 / 9,000 nodes
(9,000 nodes = 1.152 M tasks, the paper's largest run, which finished in
561 s on the real machine).

Run:  python examples/extreme_scale_simulation.py
"""

import numpy as np

from repro.analysis import box_stats, render_table
from repro.cluster import FRONTIER, SimMachine
from repro.driver import run_multinode_batch
from repro.sim import Environment
from repro.slurm import Allocation
from repro.workloads.payload import PAYLOAD_STDOUT_BYTES, payload_duration_sampler

NODE_COUNTS = (1000, 5000, 9000)
TASKS_PER_NODE = 128


def main() -> None:
    rows = []
    for n in NODE_COUNTS:
        env = Environment()
        machine = SimMachine(env, FRONTIER, seed=42)
        alloc = Allocation(machine, n)
        run = run_multinode_batch(
            alloc,
            tasks_per_node=TASKS_PER_NODE,
            duration_sampler=payload_duration_sampler,
            jobs_per_node=TASKS_PER_NODE,
            stage_out_bytes=PAYLOAD_STDOUT_BYTES * TASKS_PER_NODE,
            nvme_write_bytes=PAYLOAD_STDOUT_BYTES * TASKS_PER_NODE,
        )
        stats = box_stats(run.completion_times)
        rows.append({
            "nodes": n,
            "tasks": run.n_tasks,
            "median_s": stats.median,
            "p75_s": stats.q3,
            "max_s": stats.maximum,
            "makespan_s": run.makespan,
        })
        print(f"simulated {n} nodes ({run.n_tasks} tasks): "
              f"makespan {run.makespan:.0f} s")

    print()
    print(render_table(
        "Weak scaling on simulated Frontier (completion times)",
        ["nodes", "tasks", "median_s", "p75_s", "max_s", "makespan_s"],
        rows,
        floatfmt="{:.1f}",
    ))
    print("\npaper reference: max 561 s for 1.152 M tasks at 9,000 nodes;"
          "\nhalf of all processes under a minute, 75% under two minutes.")


if __name__ == "__main__":
    main()
