#!/usr/bin/env python3
"""GPU isolation with {%} — the paper's Celeritas idiom (§IV-D), for real.

Reproduces the execution line::

    parallel -j8 HIP_VISIBLE_DEVICES="$(({%} - 1))" celer-sim {} \
        > outdir/{}.out ::: *.inp.json

with our engine and the toy Monte Carlo transport kernel standing in for
celer-sim.  Each job sees a unique HIP_VISIBLE_DEVICES derived from its
slot number; the script verifies no two concurrent jobs shared a device.

Run:  python examples/gpu_isolation_celeritas.py
"""

import glob
import json
import os
import sys
import tempfile

from repro import Parallel
from repro.workloads.celeritas import TransportConfig, write_input_file

N_PROBLEMS = 8
JOBS = 4  # pretend this node has 4 GPUs

# The simulated celer-sim: runs the transport problem named by argv[1]
# and reports which "GPU" it used (the env var the engine set from {%}).
CELER_SIM = (
    'python3 -c "'
    "import os, sys, json; "
    "from repro.workloads.celeritas import run_input_file; "
    "r = run_input_file(sys.argv[1]); "
    "print(json.dumps({'gpu': os.environ['HIP_VISIBLE_DEVICES'], "
    "'deposited': r.total_deposited}))"
    '" '
)


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        for i in range(N_PROBLEMS):
            write_input_file(
                os.path.join(workdir, f"run{i}.inp.json"),
                TransportConfig(n_photons=20_000, seed=i),
            )
        inputs = sorted(glob.glob(os.path.join(workdir, "*.inp.json")))

        # The paper's line, HIP_VISIBLE_DEVICES=$(({%} - 1)).
        command = 'HIP_VISIBLE_DEVICES="$(({%} - 1))" ' + CELER_SIM + "{}"
        summary = Parallel(command, jobs=JOBS).run(inputs)
        assert summary.ok, "celer-sim jobs failed"

        print(f"ran {summary.n_succeeded} transport problems on {JOBS} 'GPUs'")
        for r in summary.sorted_results():
            out = json.loads(r.stdout)
            print(
                f"  {os.path.basename(r.args[0]):>16}  slot={r.slot}  "
                f"gpu={out['gpu']}  deposited={out['deposited']:.1f} MeV"
            )
            # The isolation contract: gpu index == slot - 1, always < JOBS.
            assert int(out["gpu"]) == r.slot - 1 < JOBS

        print("GPU isolation held: every job saw exactly one device, "
              "and concurrent jobs never shared one.")


if __name__ == "__main__":
    sys.exit(main())
