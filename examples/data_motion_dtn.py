#!/usr/bin/env python3
"""Massive parallel file transfer on a DTN cluster (§IV-E), simulated.

The paper's method::

    find /gpfs/proj/data -type f | ./driver.sh | \
        parallel -j32 -X rsync -R -Ha {} /lustre/proj/

An 8-node DTN cluster runs 32 rsync streams per node (256-way transfer)
against a single sequential rsync baseline, on a synthetic project tree
with a lognormal file-size mix.

Run:  python examples/data_motion_dtn.py
"""

from repro.cluster import DTN_CLUSTER, SimMachine
from repro.dtn import run_dtn_transfer, run_sequential_transfer
from repro.sim import Environment
from repro.storage import Filesystem, RsyncCostModel, lognormal_tree

N_FILES = 5_000
PATH_BW = 2.385e9  # bytes/s end-to-end (8 x 2,385 Mb/s, the paper's rate)
COST = RsyncCostModel(startup_s=0.3, per_file_s=0.07, stream_bw=150e6)


def build(seed=0):
    env = Environment()
    machine = SimMachine(env, DTN_CLUSTER, with_lustre=False, seed=seed)
    src = Filesystem(env, "gpfs", PATH_BW, PATH_BW, metadata_rate=1e5)
    dst = Filesystem(env, "lustre", PATH_BW, PATH_BW, metadata_rate=1e5)
    files = lognormal_tree(N_FILES, mean_size=1024**2, seed=seed)
    src.add_files(files)
    return machine, src, dst, files


def main() -> None:
    print(f"synthetic project tree: {N_FILES} files, lognormal sizes")

    machine, src, dst, files = build()
    par = run_dtn_transfer(machine, src, dst, files, n_nodes=8, streams_per_node=32,
                           cost=COST)
    print(f"\n256-way parallel rsync (8 DTN nodes x 32 streams):")
    print(f"  duration : {par.duration:8.1f} s (simulated)")
    print(f"  per node : {par.per_node_mbit_s:8.0f} Mb/s (paper: ~2,385 Mb/s)")
    print(f"  files    : {dst.file_count} arrived, tree structure preserved (-R)")

    machine2, src2, dst2, files2 = build()
    seq = run_sequential_transfer(machine2, src2, dst2, files2, cost=COST)
    print(f"\nsequential rsync baseline:")
    print(f"  duration : {seq.duration:8.1f} s (simulated)")
    print(f"  speedup  : {seq.duration / par.duration:8.0f}x from parallelization "
          f"(paper: ~200x at petabyte scale)")

    # Incremental restart: run the parallel transfer again — everything skips.
    rerun = run_dtn_transfer(machine, src, dst, files, n_nodes=8,
                             streams_per_node=32, cost=COST)
    skipped = sum(s.files_skipped for s in rerun.rsync_stats)
    print(f"\nincremental restart: {skipped}/{N_FILES} files skipped "
          f"in {rerun.duration:.1f} s (rsync semantics preserved)")


if __name__ == "__main__":
    main()
