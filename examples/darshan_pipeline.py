#!/usr/bin/env python3
"""The Darshan massive-log-processing workflow (§IV-B), end to end.

Part 1 runs the *real* analysis: a synthetic year of Darshan logs is
generated, then processed with the Listing-5 one-liner semantics —
``parallel -j36 darshan_arch ::: {1..12} ::: {0..2}`` — via the engine's
callable backend (36 month x app slices, all in parallel).

Part 2 replays the Fig. 7 staged NVMe-prefetch pipeline on the simulated
Frontier storage stack and prints the per-stage timings against the
paper's 86/68-minute stages and 17% improvement.

Run:  python examples/darshan_pipeline.py
"""

import json
import tempfile

from repro import Parallel
from repro.sim import Environment
from repro.storage import make_lustre, make_nvme
from repro.workloads.darshan import (
    DarshanPipelineConfig,
    darshan_arch,
    generate_archive,
    run_staged_pipeline,
)


def main() -> None:
    # ---- Part 1: real parallel log analysis (Listing 5) -----------------
    with tempfile.TemporaryDirectory() as workdir:
        archive = f"{workdir}/archive"
        outdir = f"{workdir}/summaries"
        print("generating a synthetic year of Darshan logs ...")
        generate_archive(archive, n_jobs=60, seed=0)

        # parallel -j36 darshan_arch {1} {2} ::: {1..12} ::: {0..2}
        task = lambda month, app: darshan_arch(month, app, archive, outdir)
        summary = Parallel(task, jobs=36).run_sources(
            [[str(m) for m in range(1, 13)], ["0", "1", "2"]]
        )
        assert summary.ok
        print(f"processed {summary.n_succeeded} (month, app) slices in "
              f"{summary.wall_time:.2f}s with -j36")
        one = json.load(open(summary.sorted_results()[0].value))
        print(f"sample slice: month={one['month']} app={one['app']} "
              f"records={one['n_records']} read={one['bytes_read'] / 1e9:.1f} GB")

    # ---- Part 2: the Fig. 7 staged pipeline (simulated) -----------------
    print("\nreplaying the Fig. 7 NVMe-prefetch pipeline on simulated storage ...")
    env = Environment()
    report = run_staged_pipeline(
        env, make_lustre(env), make_nvme(env), DarshanPipelineConfig()
    )
    for i, t in enumerate(report.stage_times, start=1):
        src = "Lustre" if i == 1 else "NVMe"
        print(f"  stage {i} ({src:>6}): {t / 60:6.1f} min")
    print(f"  pipeline total : {report.total_time / 60:6.1f} min (paper: 358)")
    print(f"  all-Lustre     : {report.baseline_all_lustre / 60:6.1f} min (paper: 430)")
    print(f"  improvement    : {report.improvement:.1%} (paper: ~17%)")


if __name__ == "__main__":
    main()
