#!/usr/bin/env python3
"""Extracting a parallel profile from an execution — the paper's
"quick prototyping tool to design and extract parallel profiles" use.

Runs a mixed-duration workload twice (with -j2 and -j8), records each
run's joblog and JSON profile, and reports concurrency/utilization — the
measurements you would use to size a production allocation.

Run:  python examples/profile_extraction.py
"""

import sys
import tempfile

from repro import Parallel
from repro.analysis import profile_intervals
from repro.core.progress import ProgressBar

# A synthetic application with an uneven parallel profile: a few long
# tasks, many short ones (the classic straggler-prone mix).
DURATIONS = [0.4, 0.1, 0.1, 0.1, 0.3, 0.1, 0.1, 0.4, 0.1, 0.1, 0.1, 0.2]


def run_with(jobs: int):
    with tempfile.NamedTemporaryFile(suffix=".joblog") as log:
        summary = Parallel(
            "sleep {}", jobs=jobs, joblog=log.name,
            progress=ProgressBar(sys.stderr, min_interval=0.5),
        ).run([str(d) for d in DURATIONS])
    assert summary.ok
    profile = profile_intervals(
        [r.start_time for r in summary.results],
        [r.end_time for r in summary.results],
    )
    return summary, profile


def main() -> None:
    for jobs in (2, 8):
        summary, p = run_with(jobs)
        print(f"\n-j{jobs}: {p.n_jobs} jobs in {p.makespan:.2f}s wall")
        print(f"  peak concurrency : {p.peak_concurrency}")
        print(f"  mean concurrency : {p.mean_concurrency:.2f}")
        print(f"  slot utilization : {p.utilization(jobs):.0%} of {jobs} slots")
        print(f"  speedup vs serial: {p.speedup_vs_serial:.2f}x "
              f"(serial fraction {p.serial_fraction:.0%})")
    print("\nreading: with -j8 the long tasks bound the makespan — utilization"
          "\ndrops, telling you this workload saturates around 4-5 slots.")


if __name__ == "__main__":
    main()
