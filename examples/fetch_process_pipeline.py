#!/usr/bin/env python3
"""The fetch-process workflow (§IV-A, Fig. 6), running for real.

A producer "downloads" satellite imagery for 8 regions every cycle
(synthetic images stand in for the GOES CDN — no network here) using the
engine with -j8, and appends each batch's timestamp to a q.proc queue
file.  A consumer follows the queue file (tail -n+0 -f semantics) and
computes the paper's brightness statistic per region as soon as a batch
lands — I/O overlapped with compute, no barrier.

Run:  python examples/fetch_process_pipeline.py
"""

import tempfile
import threading
import time

from repro.workloads.fetchprocess import (
    REGIONS,
    FileQueue,
    fetch_batch,
    follow,
    process_batch,
)

N_BATCHES = 5
CYCLE_S = 0.2  # the paper sleeps 30 s between fetches; scaled down


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        data_dir = f"{workdir}/data"
        queue = FileQueue(f"{workdir}/q.proc")
        done = threading.Event()

        def getdata():
            """The paper's getdata loop: parallel -j8 curl ...; echo ts >> q.proc."""
            for i in range(N_BATCHES):
                ts = int(time.time()) + i
                fetch_batch(data_dir, ts, jobs=8)
                queue.append(str(ts))
                print(f"[getdata ] batch {ts} fetched ({len(REGIONS)} regions)")
                time.sleep(CYCLE_S)
            done.set()

        producer = threading.Thread(target=getdata)
        producer.start()

        # The paper's procdata: tail -n+0 -f q.proc | parallel -k -j8 convert ...
        print("[procdata] following q.proc ...")
        for ts in follow(queue.path, poll_s=0.02, stop=done.is_set, timeout_s=30):
            metrics = process_batch(data_dir, ts)
            top = max(metrics, key=metrics.get)
            print(
                f"[procdata] batch {ts}: brightness "
                + " ".join(f"{r}={metrics[r]:.1f}" for r in REGIONS[:4])
                + f" ... (brightest: {top})"
            )
        producer.join()
        print("all batches processed with fetching and processing overlapped")


if __name__ == "__main__":
    main()
