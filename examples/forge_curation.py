#!/usr/bin/env python3
"""FORGE data curation (§IV-C, Fig. 8), running for real.

The preprocessing stage that "cleans and curates the raw publications
data by extracting abstracts and full texts and removing non-English
language and other extraneous characters" — executed over a synthetic
publications corpus with the engine providing the parallelism GNU
Parallel provides in the paper, plus a MinHash near-duplicate pass.

Run:  python examples/forge_curation.py
"""

import time

from repro.workloads.forge import (
    RawArticle,
    curate_article,
    curate_corpus,
    curation_stats,
    synthetic_corpus,
)

N_ARTICLES = 800


def main() -> None:
    print(f"generating a synthetic corpus of {N_ARTICLES} raw articles "
          "(20% non-English, 10% missing abstracts, LaTeX/control noise) ...")
    corpus = synthetic_corpus(N_ARTICLES, seed=0)
    # Inject some near-duplicates (mirrored records / preprint copies).
    dupes = [RawArticle(f"mirror{i}", corpus[i].text) for i in range(0, 40)]
    corpus = corpus + dupes

    t0 = time.time()
    serial = [curate_article(a) for a in corpus]
    t_serial = time.time() - t0
    stats = curation_stats(serial)
    print(f"\nserial curation     : {t_serial:.2f}s, kept "
          f"{stats['n_kept']}/{stats['n_input']} "
          f"({stats['kept_rate']:.0%}), {stats['total_tokens']} tokens")

    t0 = time.time()
    curated = curate_corpus(corpus, jobs=8, dedup=False)
    t_par = time.time() - t0
    print(f"engine -j8 curation : {t_par:.2f}s, kept {len(curated)} "
          f"(same pipeline, parallel)")

    t0 = time.time()
    deduped = curate_corpus(corpus, jobs=8, dedup=True)
    print(f"+ MinHash dedup     : {time.time() - t0:.2f}s, kept "
          f"{len(deduped)} after dropping "
          f"{len(curated) - len(deduped)} near-duplicates")

    sample = deduped[0]
    print(f"\nsample curated doc {sample.doc_id}: "
          f"{sample.n_tokens} tokens, abstract starts "
          f"{sample.abstract[:50]!r}")


if __name__ == "__main__":
    main()
