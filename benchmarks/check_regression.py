#!/usr/bin/env python3
"""Fail the bench job on a >30% throughput regression.

Compares one labelled entry of a ``bench_dispatch.py`` output file against
the checked-in floors in ``benchmarks/thresholds.json``::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick \
        --label ci --out BENCH_ci.json
    python benchmarks/check_regression.py BENCH_ci.json --label ci

A benchmark passes when ``measured >= tolerance * threshold`` (default
tolerance 0.7, i.e. fail only when more than 30% below the floor — slack
for noisy shared runners).  Exit code 1 lists every failing benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_THRESHOLDS = os.path.join(os.path.dirname(__file__), "thresholds.json")


def check(bench_file: str, label: str, thresholds_file: str,
          tolerance: float) -> list[str]:
    with open(bench_file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if label not in doc:
        return [f"label {label!r} not found in {bench_file} "
                f"(have: {', '.join(sorted(doc))})"]
    results = doc[label]["results"]
    with open(thresholds_file, "r", encoding="utf-8") as fh:
        thresholds = json.load(fh)

    cpus = int(doc[label].get("cpus") or 0)
    failures = []
    for name, spec in thresholds.items():
        if name.startswith("_"):
            continue
        min_cpus = int(spec.get("min_cpus", 0))
        if min_cpus and cpus and cpus < min_cpus:
            # Concurrency-dependent floor (e.g. sharded dispatch needs a
            # second core to beat one dispatcher): skip on small runners.
            print(f"{name:<18s} skipped (needs >= {min_cpus} vCPUs, "
                  f"runner has {cpus})")
            continue
        metric = spec["metric"]
        relative = spec.get("relative_to")
        if relative is not None:
            # Floor expressed as a multiple of another threshold, so the
            # pair ratchets together (e.g. sharded >= 1.5x single-path).
            base = thresholds[relative["name"]]
            floor = float(base["threshold"]) * float(relative["factor"])
        else:
            floor = float(spec["threshold"])
        entry = results.get(name)
        if entry is None:
            failures.append(f"{name}: missing from benchmark results")
            continue
        measured = float(entry[metric])
        limit = tolerance * floor
        verdict = "ok" if measured >= limit else "REGRESSION"
        print(f"{name:<18s} {metric:<14s} measured {measured:12.1f}  "
              f"floor {limit:12.1f} ({tolerance:.0%} of {floor:.0f})  {verdict}")
        if measured < limit:
            failures.append(
                f"{name}: {measured:.1f} {metric} < {limit:.1f} "
                f"({tolerance:.0%} of threshold {floor:.0f})")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_file", help="bench_dispatch.py output JSON")
    ap.add_argument("--label", default="ci", help="entry to check")
    ap.add_argument("--thresholds", default=DEFAULT_THRESHOLDS)
    ap.add_argument("--tolerance", type=float, default=0.7,
                    help="fraction of threshold that must be met (default 0.7)")
    ns = ap.parse_args(argv)

    failures = check(ns.bench_file, ns.label, ns.thresholds, ns.tolerance)
    if failures:
        print("\nthroughput regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
