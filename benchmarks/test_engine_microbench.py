"""Real-engine microbenchmarks (multi-round pytest-benchmark timing).

These measure the Python engine itself on the local machine — the analog
of the paper's single-node stress numbers, on real processes:

* dispatch throughput for no-op callables (engine bookkeeping cost);
* dispatch throughput for real ``/bin/true`` subprocesses;
* template rendering cost (the per-job hot path).
"""

from __future__ import annotations

from repro import Parallel
from repro.core.template import CommandTemplate


def test_callable_dispatch_throughput(benchmark):
    """Jobs/s through the engine with a no-op Python callable."""
    n = 200

    def run():
        summary = Parallel(lambda x: None, jobs=8).run(range(n))
        assert summary.n_succeeded == n
        return summary

    summary = benchmark(run)
    # The pooled dispatch engine clears 50k jobs/s on a dev box; even a
    # heavily shared CI runner must manage hundreds (the pre-pool
    # thread-per-job engine already did ~10k/s).
    assert n / benchmark.stats.stats.mean > 500


def test_subprocess_dispatch_throughput(benchmark):
    """Jobs/s launching real /bin/true subprocesses (fork+exec included)."""
    n = 64

    def run():
        summary = Parallel("true # {}", jobs=8).run(range(n))
        assert summary.n_succeeded == n
        return summary

    benchmark(run)
    assert n / benchmark.stats.stats.mean > 20


def test_template_render_hot_path(benchmark):
    """Per-job render cost must stay in the microsecond regime."""
    t = CommandTemplate("convert {1} -scale {2}% {1/.}_{2}.png {#} {%}")
    args = ("/data/images/photo.jpg", "50")

    def render():
        return t.render(args, seq=12345, slot=7)

    out = benchmark(render)
    assert "photo_50.png" in out
    assert benchmark.stats.stats.mean < 1e-3  # well under a millisecond
