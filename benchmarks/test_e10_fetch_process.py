"""E10 / §IV-A, Fig. 6 — the fetch-process overlap workflow (real engine).

Runs the actual producer/consumer pair locally: a producer thread fetches
(synthesizes) 8 region images per batch and appends timestamps to a
``q.proc`` file; the consumer follows the queue file (tail -f semantics)
and processes batches with the engine as they land.

Claims:

* processing of batch k starts before the *last* fetch completes — the
  overlap that motivates the pattern (vs. a barrier version that waits
  for all fetches first);
* the overlapped pipeline beats the barrier version's wall clock.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.workloads.fetchprocess import (
    REGIONS,
    FileQueue,
    fetch_batch,
    follow,
    process_batch,
)

N_BATCHES = 6
FETCH_INTERVAL_S = 0.15  # scaled-down stand-in for the paper's 30 s cycle


def run_overlapped(tmp_dir: str) -> dict:
    import os

    os.makedirs(tmp_dir, exist_ok=True)
    data_dir = f"{tmp_dir}/data"
    queue = FileQueue(f"{tmp_dir}/q.proc")
    fetch_done = threading.Event()
    first_process_start: list[float] = []
    last_fetch_end: list[float] = []
    metrics = {}

    def producer():
        for i in range(N_BATCHES):
            ts = 1000 + i
            fetch_batch(data_dir, ts, jobs=8)
            queue.append(str(ts))
            time.sleep(FETCH_INTERVAL_S)
        last_fetch_end.append(time.monotonic())
        fetch_done.set()

    start = time.monotonic()
    t = threading.Thread(target=producer)
    t.start()
    for ts in follow(queue.path, poll_s=0.01, stop=fetch_done.is_set, timeout_s=60):
        if not first_process_start:
            first_process_start.append(time.monotonic())
        metrics[ts] = process_batch(data_dir, ts)
    t.join()
    wall = time.monotonic() - start
    return {
        "wall": wall,
        "overlap": last_fetch_end[0] - first_process_start[0],
        "metrics": metrics,
    }


def run_barrier(tmp_dir: str) -> dict:
    data_dir = f"{tmp_dir}/data"
    start = time.monotonic()
    stamps = []
    for i in range(N_BATCHES):
        ts = 1000 + i
        fetch_batch(data_dir, ts, jobs=8)
        stamps.append(str(ts))
        time.sleep(FETCH_INTERVAL_S)
    metrics = {ts: process_batch(data_dir, ts) for ts in stamps}
    return {"wall": time.monotonic() - start, "metrics": metrics}


def test_e10_fetch_process_overlap(benchmark, report_file, tmp_path):
    def experiment():
        overlapped = run_overlapped(str(tmp_path / "ov"))
        barrier = run_barrier(str(tmp_path / "ba"))
        return overlapped, barrier

    overlapped, barrier = run_once(benchmark, experiment)

    rows = [
        {"mode": "overlapped (queue + tail -f)", "wall_s": overlapped["wall"],
         "batches": len(overlapped["metrics"])},
        {"mode": "barrier (fetch all, then process)", "wall_s": barrier["wall"],
         "batches": len(barrier["metrics"])},
    ]
    table = render_table(
        "E10 - Fetch-process workflow: overlap vs barrier (real engine, local)",
        ["mode", "wall_s", "batches"],
        rows,
        floatfmt="{:.2f}",
    )
    table += f"\nProcessing began {overlapped['overlap']:.2f}s before the last fetch finished"
    report_file("e10_fetch_process", table)

    # All batches processed, per-region metrics present and sane.
    assert len(overlapped["metrics"]) == N_BATCHES
    for per_region in overlapped["metrics"].values():
        assert set(per_region) == set(REGIONS)
        assert all(0.0 <= v <= 100.0 for v in per_region.values())

    # Processing overlapped fetching (started well before fetches ended).
    assert overlapped["overlap"] > 0

    # Both modes compute identical metrics (determinism of the substitute).
    for ts, per_region in overlapped["metrics"].items():
        np.testing.assert_allclose(
            sorted(per_region.values()), sorted(barrier["metrics"][ts].values())
        )

    # And the pipeline is no slower than the barrier version.
    assert overlapped["wall"] <= barrier["wall"] * 1.2
