"""E9 / Listings 4-5 — ease of use and the srun-loop comparison.

Two measurements:

* script complexity: the engine one-liner vs the srun loop (paper: >90%
  size reduction), with an equivalence check that both describe the same
  36-task set;
* runtime: the simulated Listing-4 srun loop vs the engine running the
  same 36 launch-only tasks (the engine launches orders of magnitude
  faster because it pays no per-task scheduler round-trip or sleep).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.baselines import (
    LISTING_4_SRUN_SCRIPT,
    LISTING_5_PARALLEL_SCRIPT,
    listing4_task_set,
    listing5_task_set,
    run_srun_loop,
    script_complexity,
)
from repro.cluster import PERLMUTTER_CPU, SimMachine
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask

N_TASKS = 36  # 12 months x 3 apps
TASK_DURATION = 30.0  # a modest per-slice analysis time


def run_engine():
    env = Environment()
    machine = SimMachine(env, PERLMUTTER_CPU, with_lustre=False)
    inst = SimParallel(machine.node(0), jobs=36)
    proc = inst.run([SimTask(duration=TASK_DURATION) for _ in range(N_TASKS)])
    env.run(until=proc)
    return env.now


def run_srun():
    env = Environment()
    res = run_srun_loop(env, np.full(N_TASKS, TASK_DURATION))
    return res.makespan


def test_e9_ease_of_use(benchmark, report_file):
    def experiment():
        return run_engine(), run_srun()

    engine_time, srun_time = run_once(benchmark, experiment)

    c4 = script_complexity(LISTING_4_SRUN_SCRIPT)
    c5 = script_complexity(LISTING_5_PARALLEL_SCRIPT)
    rows = [
        {"metric": "lines", "listing4_srun": c4.lines, "listing5_parallel": c5.lines},
        {"metric": "words", "listing4_srun": c4.words, "listing5_parallel": c5.words},
        {
            "metric": "control keywords",
            "listing4_srun": c4.control_keywords,
            "listing5_parallel": c5.control_keywords,
        },
        {
            "metric": "makespan (s, 36x30s tasks)",
            "listing4_srun": round(srun_time, 2),
            "listing5_parallel": round(engine_time, 2),
        },
    ]
    table = render_table(
        "E9 - Ease of use: srun loop (Listing 4) vs engine (Listing 5)",
        ["metric", "listing4_srun", "listing5_parallel"],
        rows,
    )
    table += f"\nScript size reduction: {c5.reduction_vs(c4):.0%} (paper: >90%)"
    report_file("e9_ease_of_use", table)

    # Same work, expressed in far less script.
    assert listing4_task_set() == listing5_task_set()
    assert c5.reduction_vs(c4) >= 0.85
    assert c5.control_keywords == 0

    # The engine also *runs* faster: no sleep 0.2 + controller round-trips.
    assert engine_time < srun_time
    # With -j36 >= 36 tasks, the engine's makespan is ~ one task duration.
    assert engine_time == pytest.approx(TASK_DURATION, rel=0.05)
    # The srun loop serializes launches: >= 36 * 0.2 s of sleeps alone.
    assert srun_time >= N_TASKS * 0.2
