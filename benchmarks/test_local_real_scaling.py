"""Real-machine analog of Fig. 3: multi-instance scaling, local processes.

Runs the actual engine (real ``/bin/true`` subprocesses) as 1, 2, and 4
concurrent instances over cyclic shards — the Listing-1 pattern on one
box.  Absolute rates depend on this machine; the assertions only pin
sanity (all work done exactly once, rates positive, table printed).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.driver import run_local_sharded

N_INPUTS = 96


def measure(n_instances: int) -> dict:
    run = run_local_sharded(
        "true # {}", list(range(N_INPUTS)), n_instances=n_instances,
        jobs_per_instance=4,
    )
    assert run.ok and run.n_succeeded == N_INPUTS
    return {
        "launch_rate": run.aggregate_launch_rate,
        "wall_s": run.wall_time,
    }


def test_local_multi_instance_scaling(benchmark, report_file):
    def experiment():
        return {n: measure(n) for n in (1, 2, 4)}

    rates = run_once(benchmark, experiment)
    table = render_table(
        "Real local engine: aggregate launch rate vs instance count "
        "(96 x /bin/true)",
        ["instances", "launch_rate", "wall_s"],
        [
            {"instances": n, "launch_rate": m["launch_rate"], "wall_s": m["wall_s"]}
            for n, m in rates.items()
        ],
        floatfmt="{:.1f}",
    )
    report_file("local_real_scaling", table)

    for m in rates.values():
        assert m["launch_rate"] > 10  # dozens/s minimum on any machine
        assert m["wall_s"] < 60
