#!/usr/bin/env python3
"""Dispatch-throughput runner: the engine's analog of the paper's Fig. 3.

Measures single-node job launch/completion throughput through the real
engine — the metric the paper's low-overhead claim rests on — for:

* ``callable``: no-op Python callables (pure engine bookkeeping cost);
* ``callable_traced``: the same run with ``--trace``-style tracing live —
  the observability subsystem's overhead bound (must stay within 10% of
  the untraced rate);
* ``subprocess``: real ``/bin/true`` jobs (fork+exec included) through
  the default spawn path (posix_spawn where supported);
* ``subprocess_popen``: the same workload forced onto the Popen
  reference path (``--spawn-path popen``);
* ``subprocess_sharded``: sharded dispatch (``--dispatchers N``) pinned
  to per-message frames (``--rpc-batch 1`` — the pre-amortization wire
  shape, kept as the regression reference);
* ``subprocess_sharded_batched``: the same sharded run with the batched
  control plane (``--rpc-batch auto``: frame coalescing + template
  interning — the production configuration);
* ``control_plane_frames``: frame-codec record round-trips/s vs the
  per-message pickle baseline it replaced;
* ``spawn_ceiling``: a raw serial posix_spawn+waitpid loop — the
  kernel's process-creation ceiling the subprocess rates are bounded by;
* ``template``: per-job command-render cost (hot-path microcost).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --label after \
        --out BENCH_pr2.json

The output file accumulates one entry per label, so a before/after pair
lives in a single tracked JSON (the repo's perf trajectory seed).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Parallel  # noqa: E402
from repro.core.template import CommandTemplate  # noqa: E402


def _noop(_x):
    return None


def bench_callable(n: int = 2000, jobs: int = 8, repeats: int = 5) -> dict:
    """Jobs/s through the engine with a no-op Python callable."""
    rates = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        summary = Parallel(_noop, jobs=jobs).run(range(n))
        dt = time.perf_counter() - t0
        assert summary.n_succeeded == n, summary.n_failed
        rates.append(n / dt)
    return {"n": n, "jobs": jobs, "repeats": repeats,
            "jobs_per_s": statistics.median(rates),
            "jobs_per_s_best": max(rates)}


def bench_callable_traced(n: int = 2000, jobs: int = 8, repeats: int = 5) -> dict:
    """Jobs/s with a full RunTracer (Chrome trace sink) attached."""
    import tempfile

    from repro.core.options import Options
    from repro.obs import RunTracer

    rates = []
    with tempfile.TemporaryDirectory() as td:
        for i in range(repeats):
            trace = os.path.join(td, f"bench-{i}.trace.json")
            tracer = RunTracer.from_options(
                Options(trace=trace, metrics_interval=0.5)
            )
            options = Options(jobs=jobs, tracer=tracer)
            t0 = time.perf_counter()
            summary = Parallel(_noop, options=options).run(range(n))
            dt = time.perf_counter() - t0
            assert summary.n_succeeded == n, summary.n_failed
            assert os.path.exists(trace), "trace file was not written"
            rates.append(n / dt)
    return {"n": n, "jobs": jobs, "repeats": repeats,
            "jobs_per_s": statistics.median(rates),
            "jobs_per_s_best": max(rates)}


def bench_subprocess(n: int = 300, jobs: int = 8, repeats: int = 3,
                     spawn_path: str = "auto", dispatchers: int = 1,
                     rpc_batch=None) -> dict:
    """Jobs/s launching real /bin/true subprocesses.

    ``spawn_path`` selects the backend's launch mechanism: ``"auto"``
    resolves to the posix_spawn fast path where supported, ``"popen"``
    forces the subprocess.Popen reference path — benched separately so a
    regression in either path is visible on its own.  ``dispatchers`` > 1
    shards the dispatch loop over that many spawner worker processes.
    ``rpc_batch`` sets the control-plane frame cap for the sharded path:
    ``1`` pins the per-message wire shape (the ``subprocess_sharded``
    variant, PR6's configuration), ``"auto"`` enables frame coalescing
    and template interning (``subprocess_sharded_batched``).
    """
    kwargs = {}
    if rpc_batch is not None:
        kwargs["rpc_batch"] = rpc_batch
    rates = []
    rpc_stats = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        summary = Parallel("true # {}", jobs=jobs, spawn_path=spawn_path,
                           dispatchers=dispatchers, **kwargs).run(range(n))
        dt = time.perf_counter() - t0
        assert summary.n_succeeded == n, summary.n_failed
        rates.append(n / dt)
        rpc_stats = summary.rpc or None
    out = {"n": n, "jobs": jobs, "repeats": repeats,
           "spawn_path": spawn_path, "dispatchers": dispatchers,
           "jobs_per_s": statistics.median(rates),
           "jobs_per_s_best": max(rates)}
    if rpc_batch is not None:
        out["rpc_batch"] = rpc_batch
    if rpc_stats:
        # Frame accounting from the last repeat: how much the control
        # plane actually amortized (jobs_per_frame 1.0 = no coalescing).
        out["rpc"] = rpc_stats
    return out


def bench_control_plane_frames(n: int = 20_000, repeats: int = 5) -> dict:
    """Frame-codec throughput: packed records/s vs the pickle baseline.

    The sharded control plane's hot path — pack one spawn record, frame
    it, parse it back; pack one result record, frame it, parse it back —
    measured per record round-trip, with the per-message pickle
    ``dumps``/``loads`` it replaced as the in-file baseline.
    """
    from repro.core.backends.pool import (
        FK_RESULT,
        FK_SPAWN,
        iter_result_records,
        iter_spawn_records,
        pack_frame,
        pack_result_record,
        pack_spawn_record,
    )

    command = "sh -c 'gzip /data/in/chunk-000123.bin'"
    out_blob = b"x" * 64

    def frame_pass() -> float:
        t0 = time.perf_counter()
        for i in range(n):
            f = pack_frame(
                FK_SPAWN, [pack_spawn_record(i, i, 3, command=command)]
            )
            for _rec in iter_spawn_records(f):
                pass
            f = pack_frame(FK_RESULT, [pack_result_record(
                i, 0, out_blob, b"", 1.0, 2.0, 0.001, 4242)])
            for _rec in iter_result_records(f):
                pass
        # Each iteration round-trips one spawn + one result record.
        return 2 * n / (time.perf_counter() - t0)

    def pickle_pass() -> float:
        import pickle

        t0 = time.perf_counter()
        for i in range(n):
            msg = pickle.dumps(("spawn", i, command), protocol=-1)
            pickle.loads(msg)
            msg = pickle.dumps(
                ("done", i, 0, out_blob, b"", 1.0, 2.0, 0.001, 4242),
                protocol=-1,
            )
            pickle.loads(msg)
        return 2 * n / (time.perf_counter() - t0)

    framed = [frame_pass() for _ in range(repeats)]
    pickled = [pickle_pass() for _ in range(repeats)]
    return {"n": n, "repeats": repeats,
            "records_per_s": statistics.median(framed),
            "records_per_s_best": max(framed),
            "pickle_records_per_s": statistics.median(pickled)}


def _serial_spawn_loop(n: int) -> float:
    """One tight posix_spawn+waitpid pass over /bin/true; returns jobs/s."""
    devnull = os.open(os.devnull, os.O_RDWR)
    try:
        t0 = time.perf_counter()
        for _ in range(n):
            pid = os.posix_spawn(
                "/bin/sh", ["sh", "-c", "true"], os.environ,
                file_actions=[
                    (os.POSIX_SPAWN_DUP2, devnull, 0),
                    (os.POSIX_SPAWN_DUP2, devnull, 1),
                    (os.POSIX_SPAWN_DUP2, devnull, 2),
                ],
            )
            os.waitpid(pid, 0)
        dt = time.perf_counter() - t0
    finally:
        os.close(devnull)
    return n / dt


def bench_spawn_ceiling(n: int = 400, repeats: int = 3) -> dict:
    """The machine's raw serial process-creation ceiling (no engine).

    A tight ``posix_spawn``+``waitpid`` loop over ``/bin/true`` — the
    kernel-imposed upper bound on any subprocess dispatch rate on this
    box (the per-node fork-rate ceiling the paper's scaling model divides
    by).  The ``subprocess`` benchmark can approach but never exceed
    this; report the engine's efficiency against it rather than chasing
    absolute jobs/s across differently-sized machines.

    Repeated like every other variant (median + best-of) so the
    ceiling-vs-achieved ratio in the BENCH JSONs is stable run-to-run:
    a one-shot probe made the denominator the noisiest number in the
    file.
    """
    from repro.core.backends.spawn import spawn_supported

    if not spawn_supported():
        return {"n": 0, "jobs_per_s": 0.0, "jobs_per_s_best": 0.0,
                "supported": False}
    rates = [_serial_spawn_loop(n) for _ in range(repeats)]
    return {"n": n, "repeats": repeats,
            "jobs_per_s": statistics.median(rates),
            "jobs_per_s_best": max(rates), "supported": True}


def bench_fork_contention(n: int = 300, workers=(1, 2, 4),
                          repeats: int = 3) -> dict:
    """Aggregate spawn rate of K concurrent serial spawner processes.

    The paper's Fig. 3 in miniature: each worker process runs the same
    tight posix_spawn+waitpid loop as ``spawn_ceiling``; the aggregate
    rate over K workers maps the node's fork-bandwidth curve.  On a
    multi-vCPU box the curve rises toward the node ceiling before
    flattening; on 1 vCPU it is flat-to-falling from K=1 (pure
    contention) — both shapes calibrate the simulator's per-node
    ``fork_rate`` (see ``repro.cluster.machines.fork_rate_from_curve``).
    """
    import multiprocessing

    from repro.core.backends.spawn import spawn_supported

    if not spawn_supported():
        return {"supported": False, "curve": {}}

    def worker(count, q):
        q.put(_serial_spawn_loop(count))

    ctx = multiprocessing.get_context("fork")
    curve = {}
    for k in workers:
        per_worker = max(1, n // k)
        aggregates = []
        for _ in range(repeats):
            q = ctx.SimpleQueue()
            procs = [ctx.Process(target=worker, args=(per_worker, q))
                     for _ in range(k)]
            t0 = time.perf_counter()
            for p in procs:
                p.start()
            for p in procs:
                p.join()
            dt = time.perf_counter() - t0
            assert all(p.exitcode == 0 for p in procs)
            # Drain per-worker rates (sanity), but the aggregate is
            # wall-clock: total spawns / elapsed — what a node delivers.
            while not q.empty():
                q.get()
            aggregates.append(per_worker * k / dt)
        curve[str(k)] = {"aggregate_jobs_per_s": statistics.median(aggregates),
                         "aggregate_jobs_per_s_best": max(aggregates),
                         "n_per_worker": per_worker, "repeats": repeats}
    peak = max(v["aggregate_jobs_per_s"] for v in curve.values())
    return {"supported": True, "curve": curve,
            "peak_aggregate_jobs_per_s": peak}


def bench_remote_local_transport(
    n: int = 200, hosts: int = 4, slots: int = 2, repeats: int = 3
) -> dict:
    """Jobs/s through RemoteBackend + LocalTransport on a 4-host roster.

    The full remote path per job — least-loaded placement, per-host
    re-render, transport execute, health bookkeeping — with the cheapest
    real transport, so the number isolates coordination overhead over the
    plain ``subprocess`` rate rather than network cost.
    """
    roster = ",".join(f"{slots}/bench{i}" for i in range(hosts))
    rates = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        summary = Parallel("true # {}", sshlogin=[roster]).run(range(n))
        dt = time.perf_counter() - t0
        assert summary.n_succeeded == n, summary.n_failed
        rates.append(n / dt)
    return {"n": n, "hosts": hosts, "slots": slots, "repeats": repeats,
            "jobs_per_s": statistics.median(rates),
            "jobs_per_s_best": max(rates)}


def bench_template(iters: int = 50_000) -> dict:
    """Renders/s for a realistic multi-token template."""
    t = CommandTemplate("convert {1} -scale {2}% {1/.}_{2}.png {#} {%}")
    args = ("/data/images/photo.jpg", "50")
    out = t.render(args, seq=1, slot=1)
    assert "photo_50.png" in out
    t0 = time.perf_counter()
    for i in range(iters):
        t.render(args, seq=i, slot=7)
    dt = time.perf_counter() - t0
    return {"iters": iters, "renders_per_s": iters / dt}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--label", default="run",
                    help="entry name in the output JSON (e.g. before/after)")
    ap.add_argument("--out", default=None,
                    help="JSON file to merge results into (default: stdout)")
    ap.add_argument("--quick", action="store_true",
                    help="smaller problem sizes (CI smoke run)")
    ns = ap.parse_args(argv)

    # Shard count for the sharded variant: one dispatcher per vCPU is
    # the useful ceiling; 2 minimum so the variant exercises sharding
    # even where it cannot win (the threshold gate skips 1-vCPU boxes).
    n_disp = min(4, max(2, os.cpu_count() or 1))
    if ns.quick:
        results = {
            "callable": bench_callable(n=400, repeats=3),
            "callable_traced": bench_callable_traced(n=400, repeats=3),
            "subprocess": bench_subprocess(n=100, repeats=2),
            "subprocess_popen": bench_subprocess(n=100, repeats=2,
                                                 spawn_path="popen"),
            "subprocess_sharded": bench_subprocess(n=100, repeats=2,
                                                   dispatchers=n_disp,
                                                   rpc_batch=1),
            "subprocess_sharded_batched": bench_subprocess(
                n=100, repeats=2, dispatchers=n_disp, rpc_batch="auto"),
            "control_plane_frames": bench_control_plane_frames(
                n=5_000, repeats=3),
            "spawn_ceiling": bench_spawn_ceiling(n=150, repeats=2),
            "fork_contention": bench_fork_contention(n=100, repeats=2),
            "remote_local": bench_remote_local_transport(n=80, repeats=2),
            "template": bench_template(iters=10_000),
        }
    else:
        results = {
            "callable": bench_callable(),
            "callable_traced": bench_callable_traced(),
            "subprocess": bench_subprocess(),
            "subprocess_popen": bench_subprocess(spawn_path="popen"),
            "subprocess_sharded": bench_subprocess(dispatchers=n_disp,
                                                   rpc_batch=1),
            "subprocess_sharded_batched": bench_subprocess(
                dispatchers=n_disp, rpc_batch="auto"),
            "control_plane_frames": bench_control_plane_frames(),
            "spawn_ceiling": bench_spawn_ceiling(),
            "fork_contention": bench_fork_contention(),
            "remote_local": bench_remote_local_transport(),
            "template": bench_template(),
        }
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "results": results,
    }
    for name, r in results.items():
        rate = (r.get("jobs_per_s") or r.get("renders_per_s")
                or r.get("records_per_s")
                or r.get("peak_aggregate_jobs_per_s") or 0.0)
        print(f"{ns.label:>8s}  {name:<18s} {rate:12.1f} /s")
    if ns.out:
        doc = {}
        if os.path.exists(ns.out):
            with open(ns.out, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        doc[ns.label] = entry
        with open(ns.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[merged into {ns.out}]")
    else:
        json.dump(entry, sys.stdout, indent=1)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
