"""E4 / Fig. 4 — Shifter container launch rate on a Perlmutter CPU node.

Same stress harness as Fig. 3, but every task starts inside a Shifter
container.  Claims:

* the ceiling is ~5,200 container launches/s;
* that is ~19% startup overhead relative to bare metal's ~6,400/s;
* Shifter launches are reliable (no failures) even saturated.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis import launch_rate, render_series
from repro.cluster import NODE_FORK_RATE, PERLMUTTER_CPU, SHIFTER_LAUNCH_RATE, SimMachine
from repro.containers import BARE_METAL, SHIFTER
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask

INSTANCE_COUNTS = (1, 2, 4, 8, 16, 32)
TASKS_PER_INSTANCE = 400


def measure(runtime, n_instances: int):
    env = Environment()
    machine = SimMachine(env, PERLMUTTER_CPU, with_lustre=False)
    node = machine.node(0)
    procs = [
        SimParallel(
            node, jobs=max(1, 256 // n_instances), runtime=runtime, name=f"i{i}"
        ).run([SimTask(duration=0.0) for _ in range(TASKS_PER_INSTANCE)])
        for i in range(n_instances)
    ]
    results = []
    for p in procs:
        results.extend(env.run(until=p))
    ok = [r for r in results if r.ok]
    return launch_rate([r.launch_time for r in ok]), len(results) - len(ok)


def test_fig4_shifter_launch_rate(benchmark, report_file):
    def experiment():
        shifter = {n: measure(SHIFTER, n) for n in INSTANCE_COUNTS}
        bare_peak, _ = measure(BARE_METAL, 32)
        return shifter, bare_peak

    shifter, bare_peak = run_once(benchmark, experiment)

    rates = {n: r for n, (r, _) in shifter.items()}
    chart = render_series(
        "Fig. 4 - Shifter container launches/s vs engine instances",
        list(rates.keys()),
        [round(v, 1) for v in rates.values()],
        x_label="instances",
        y_label="launches/s",
    )
    overhead = 1.0 - rates[32] / bare_peak
    summary = (
        f"\nShifter ceiling : {rates[32]:.0f}/s (paper: ~5,200/s)\n"
        f"Bare-metal peak : {bare_peak:.0f}/s (paper: ~6,400/s)\n"
        f"Startup overhead: {overhead:.1%} (paper: ~19%)"
    )
    report_file("fig4_shifter", chart + summary)

    assert rates[32] == pytest.approx(SHIFTER_LAUNCH_RATE, rel=0.05)
    assert bare_peak == pytest.approx(NODE_FORK_RATE, rel=0.05)
    assert overhead == pytest.approx(0.19, abs=0.02)
    # No launch failures at any concurrency.
    assert all(fails == 0 for _, fails in shifter.values())
    # A single instance is dispatcher-bound, not Shifter-bound.
    assert rates[1] < 500.0
