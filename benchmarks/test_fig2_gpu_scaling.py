"""E2 / Fig. 2 — GPU weak scaling with Celeritas on Frontier.

10 to 100 nodes, 8 GPU processes per node via the {%} isolation idiom
(``HIP_VISIBLE_DEVICES=$(({%} - 1))``).  Claims reproduced:

* linear (flat) weak scaling of per-node makespans;
* run-to-run variance under ~10 seconds;
* GPU isolation holds — every node's 8 devices each execute exactly one
  task (enforced by the GpuPool, which raises on double-booking).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import render_table, trimmed_span
from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_multinode
from repro.sim import Environment
from repro.simengine import SimTask
from repro.slurm import Allocation
from repro.workloads.celeritas import CELERITAS_TASK_MEAN_S, celeritas_duration_sampler

NODE_COUNTS = (10, 25, 50, 75, 100)
GPUS_PER_NODE = 8
SEED = 7

# Fig. 2's GPU jobs see the tight-allocation regime (small node counts on
# a dedicated partition): keep the paper's straggler model out of the GPU
# study, which the paper reports as <10 s variance.
FRONTIER_GPU = MachineSpec(
    name="frontier-gpu",
    node=FRONTIER.node,
    total_nodes=FRONTIER.total_nodes,
    alloc_delay_mean=2.0,
    straggler_prob=0.0,
)


def run_scale(n_nodes: int):
    env = Environment()
    machine = SimMachine(env, FRONTIER_GPU, seed=SEED, with_lustre=False)
    alloc = Allocation(machine, n_nodes)
    rng = machine.rng_registry.stream("celeritas-durations")
    durations = celeritas_duration_sampler(rng, n_nodes * GPUS_PER_NODE)
    tasks = iter(durations)

    def task_model(item, nodeid):
        return SimTask(duration=float(next(tasks)), gpu=True)

    run = run_multinode(
        alloc,
        list(range(n_nodes * GPUS_PER_NODE)),
        task_model,
        jobs_per_node=GPUS_PER_NODE,
        gpu_isolation=True,
    )
    # Isolation invariant: every task got a device, all 8 in use per node.
    per_node_devices: dict[str, set] = {}
    for r in run.results:
        per_node_devices.setdefault(r.node, set()).add(r.gpu_index)
    assert all(devs == set(range(8)) for devs in per_node_devices.values())
    return run


def test_fig2_gpu_weak_scaling(benchmark, report_file):
    def experiment():
        return {n: run_scale(n) for n in NODE_COUNTS}

    runs = run_once(benchmark, experiment)

    rows = []
    for n, run in runs.items():
        makespans = run.node_makespans
        rows.append(
            {
                "nodes": n,
                "gpu_tasks": run.n_tasks,
                "mean_makespan": float(makespans.mean()),
                "spread": float(makespans.max() - makespans.min()),
                "overall": run.makespan,
            }
        )
    table = render_table(
        "Fig. 2 - GPU weak scaling with Celeritas (per-node makespans, s)",
        ["nodes", "gpu_tasks", "mean_makespan", "spread", "overall"],
        rows,
        floatfmt="{:.2f}",
    )
    report_file("fig2_gpu_scaling", table)

    overall = [r["overall"] for r in rows]
    # Variance across scales < 10 s (paper: "less than 10 seconds").
    assert max(overall) - min(overall) < 10.0
    # Linear weak scaling: makespan ~ task duration + small overhead.
    for r in rows:
        assert r["overall"] < CELERITAS_TASK_MEAN_S + 30.0
    # Every configuration ran 8 tasks per node.
    assert all(r["gpu_tasks"] == r["nodes"] * 8 for r in rows)
