"""E1 / Fig. 1 — weak scaling on Frontier.

One GNU Parallel instance per node, 128 payload tasks each (hostname +
timestamp to node-local NVMe, then an aggregated transfer to Lustre),
from 1,000 up to 9,000 nodes (1.152 M tasks).

Paper claims reproduced as assertions:

* linear weak scaling: medians stay flat-ish (minutes, not hours);
* half the processes finish in under a minute at every scale;
* 75% finish in under two minutes at 8,000 nodes;
* greater variance at 9,000 nodes from outlier nodes (whisker/tail grows
  at >= 7,000 nodes);
* max completion at 9,000 nodes within the paper's 561 s ballpark.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import box_stats, render_boxplot, render_table
from repro.cluster import FRONTIER, SimMachine
from repro.driver import run_multinode_batch
from repro.sim import Environment
from repro.slurm import Allocation
from repro.workloads.payload import PAYLOAD_STDOUT_BYTES, payload_duration_sampler

NODE_COUNTS = (1000, 3000, 5000, 7000, 8000, 9000)
TASKS_PER_NODE = 128
SEED = 42


def run_scale(n_nodes: int):
    env = Environment()
    machine = SimMachine(env, FRONTIER, seed=SEED)
    alloc = Allocation(machine, n_nodes)
    run = run_multinode_batch(
        alloc,
        tasks_per_node=TASKS_PER_NODE,
        duration_sampler=payload_duration_sampler,
        jobs_per_node=TASKS_PER_NODE,
        stage_out_bytes=PAYLOAD_STDOUT_BYTES * TASKS_PER_NODE,
        nvme_write_bytes=PAYLOAD_STDOUT_BYTES * TASKS_PER_NODE,
    )
    return run


def test_fig1_weak_scaling(benchmark, report_file):
    def experiment():
        return {n: run_scale(n) for n in NODE_COUNTS}

    runs = run_once(benchmark, experiment)

    rows = []
    for n, run in runs.items():
        stats = box_stats(run.completion_times)
        row = {"nodes": n, "tasks": run.n_tasks, **stats.row()}
        row["makespan"] = run.makespan
        rows.append(row)
    table = render_table(
        "Fig. 1 - Weak scaling on Frontier (completion times, seconds)",
        ["nodes", "tasks", "min", "p25", "median", "p75", "max", "makespan"],
        rows,
        floatfmt="{:.1f}",
    )
    table += "\n\n" + render_boxplot(
        "Fig. 1 (box form) - completion-time distribution by node count",
        {n: run.completion_times for n, run in runs.items()},
        unit="s",
    )
    report_file("fig1_weak_scaling", table)

    by_nodes = {r["nodes"]: r for r in rows}

    # 9,000 nodes really is 1.152 M tasks.
    assert by_nodes[9000]["tasks"] == 1_152_000

    # Half the processes complete in under a minute, at every scale.
    for n in NODE_COUNTS:
        assert by_nodes[n]["median"] < 60.0, f"median blew up at {n} nodes"

    # 75% complete in under two minutes with 8,000 nodes.
    assert by_nodes[8000]["p75"] < 120.0

    # Linear weak scaling: median grows sub-2x from 1k to 9k nodes.
    assert by_nodes[9000]["median"] < 2.0 * by_nodes[1000]["median"]

    # Outlier tail at extreme scale: the max at >=7,000 nodes dwarfs the
    # max at 1,000 nodes, and the 9,000-node max is in the paper's range.
    assert max(by_nodes[n]["max"] for n in (7000, 8000, 9000)) > 2 * by_nodes[1000]["max"]
    assert 300.0 < by_nodes[9000]["max"] < 900.0  # paper: 561 s

    # Low overhead headline: 1.152 M tasks complete within ~10 minutes.
    assert by_nodes[9000]["makespan"] < 600.0
