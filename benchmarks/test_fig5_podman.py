"""E5 / Fig. 5 — Podman-HPC container launch rate on a Perlmutter CPU node.

Sweep the ``-j`` jobs parameter (the figure's x-axis) for a fixed set of
engine instances.  Claims:

* the ceiling is ~65 launches/s — two orders of magnitude below Shifter;
* reliability failures (user namespaces, database locking, setgid, task
  tmp directories) appear at larger scales/concurrency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis import launch_rate, render_series
from repro.cluster import PERLMUTTER_CPU, PODMAN_LAUNCH_RATE, SHIFTER_LAUNCH_RATE, SimMachine
from repro.containers import PODMAN_HPC
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask

JOBS_SWEEP = (1, 4, 16, 64)
N_INSTANCES = 4
TASKS_PER_INSTANCE = 120


def measure(jobs: int):
    env = Environment()
    machine = SimMachine(env, PERLMUTTER_CPU, seed=3, with_lustre=False)
    node = machine.node(0)
    procs = [
        SimParallel(node, jobs=jobs, runtime=PODMAN_HPC, name=f"i{i}").run(
            [SimTask(duration=0.0) for _ in range(TASKS_PER_INSTANCE)]
        )
        for i in range(N_INSTANCES)
    ]
    results = []
    for p in procs:
        results.extend(env.run(until=p))
    ok = [r for r in results if r.ok]
    failures = dict(node.launch_failures)
    return launch_rate([r.launch_time for r in ok]), failures, len(results) - len(ok)


def test_fig5_podman_launch_rate(benchmark, report_file):
    def experiment():
        return {j: measure(j) for j in JOBS_SWEEP}

    sweep = run_once(benchmark, experiment)

    rates = {j: r for j, (r, _, _) in sweep.items()}
    chart = render_series(
        "Fig. 5 - Podman-HPC container launches/s vs -j (4 engine instances)",
        list(rates.keys()),
        [round(v, 1) for v in rates.values()],
        x_label="-j jobs",
        y_label="launches/s",
    )
    _, fail_modes, n_failed = sweep[max(JOBS_SWEEP)]
    summary = (
        f"\nPodman ceiling: {max(rates.values()):.1f}/s (paper: ~65/s)\n"
        f"Failures at -j{max(JOBS_SWEEP)}: {n_failed} "
        f"by mode: {fail_modes or '{}'}"
    )
    report_file("fig5_podman", chart + summary)

    # Ceiling ~65/s, regardless of -j.
    for j, rate in rates.items():
        assert rate <= PODMAN_LAUNCH_RATE * 1.10, f"-j{j} beat the db lock?"
    assert max(rates.values()) == pytest.approx(PODMAN_LAUNCH_RATE, rel=0.10)

    # Two orders of magnitude below Shifter.
    assert SHIFTER_LAUNCH_RATE / max(rates.values()) > 50

    # Reliability issues appear at larger concurrency, with the reported modes.
    assert n_failed > 0
    assert set(fail_modes) <= {"user_namespace", "db_lock", "setgid", "tmpdir"}
