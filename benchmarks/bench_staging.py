#!/usr/bin/env python3
"""Staging-cache throughput runner: the data plane's before/after pair.

Measures jobs/s through ``RemoteBackend`` + ``LocalTransport`` when every
job ``--transferfile``s the *same* multi-MiB input to a small roster:

* ``staging_uncached``: ``--staging-cache off`` — each job re-pushes the
  shared input, the pre-cache behavior;
* ``staging_cached``: the content-addressed cache on — the input is
  staged once per host and every later job hits;
* ``staging_cached_ahead``: cache plus ``--stage-ahead`` prefetch, the
  fully-overlapped configuration;
* ``staging_speedup``: ``cached / uncached`` jobs/s — the
  machine-independent headline the threshold gate checks, so the floor
  holds on a fast tmpfs runner and a slow shared one alike.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_staging.py --label after \
        --out BENCH_pr7.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Parallel  # noqa: E402

#: Shared input size: large enough that the per-job push dominates the
#: uncached run, small enough to stay friendly to tiny CI runners.
PAYLOAD = 16 << 20

#: One slot per host: the uncached baseline re-pushes the shared input
#: per job, so same-host concurrency would race a pusher's O_TRUNC
#: against another job's read — the exact hazard the cache removes.  The
#: baseline must be correct to be comparable.
ROSTER = "1/bh1,1/bh2,1/bh3,1/bh4"


def _run_once(n: int, *, staging_cache: bool, stage_ahead: int = 0) -> dict:
    """One engine run in a fresh tree; returns (rate, staging stats)."""
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory() as td:
        os.chdir(td)
        try:
            os.mkdir("in")
            with open(os.path.join("in", "shared.dat"), "wb") as fh:
                fh.write(os.urandom(PAYLOAD))
            t0 = time.perf_counter()
            summary = Parallel(
                "test -s in/shared.dat # {}",
                sshlogin=[ROSTER],
                transfer_files=["in/shared.dat"],
                staging_cache=staging_cache,
                stage_ahead=stage_ahead,
            ).run(range(n))
            dt = time.perf_counter() - t0
        finally:
            os.chdir(cwd)
    assert summary.n_succeeded == n, summary.n_failed
    return {"rate": n / dt, "staging": dict(summary.staging)}


def bench_variant(n: int, repeats: int, *, staging_cache: bool,
                  stage_ahead: int = 0) -> dict:
    runs = [
        _run_once(n, staging_cache=staging_cache, stage_ahead=stage_ahead)
        for _ in range(repeats)
    ]
    rates = [r["rate"] for r in runs]
    out = {
        "n": n, "repeats": repeats, "payload_bytes": PAYLOAD,
        "staging_cache": staging_cache, "stage_ahead": stage_ahead,
        "jobs_per_s": statistics.median(rates),
        "jobs_per_s_best": max(rates),
    }
    staging = runs[0]["staging"]
    for key in ("files_staged", "cache_hits", "bytes_moved",
                "bytes_staged_avoided", "prefetched_jobs"):
        if key in staging:
            out[key] = staging[key]
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--label", default="run",
                    help="entry name in the output JSON (e.g. before/after)")
    ap.add_argument("--out", default=None,
                    help="JSON file to merge results into (default: stdout)")
    ap.add_argument("--quick", action="store_true",
                    help="smaller problem sizes (CI smoke run)")
    ns = ap.parse_args(argv)

    n, repeats = (24, 2) if ns.quick else (60, 3)
    uncached = bench_variant(n, repeats, staging_cache=False)
    cached = bench_variant(n, repeats, staging_cache=True)
    ahead = bench_variant(n, repeats, staging_cache=True, stage_ahead=4)
    results = {
        "staging_uncached": uncached,
        "staging_cached": cached,
        "staging_cached_ahead": ahead,
        "staging_speedup": {
            "speedup": cached["jobs_per_s"] / uncached["jobs_per_s"],
            "metric_note": "cached/uncached jobs_per_s, machine-independent",
        },
    }
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "results": results,
    }
    for name, r in results.items():
        rate = r.get("jobs_per_s") or r.get("speedup") or 0.0
        print(f"{ns.label:>8s}  {name:<22s} {rate:12.2f}")
    if ns.out:
        doc = {}
        if os.path.exists(ns.out):
            with open(ns.out, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        doc[ns.label] = entry
        with open(ns.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[merged into {ns.out}]")
    else:
        json.dump(entry, sys.stdout, indent=1)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
