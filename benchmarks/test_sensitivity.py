"""Calibration-sensitivity analysis.

Our simulator's absolute numbers come from calibrated constants; the
paper's *conclusions* must not hinge on their exact values.  This bench
sweeps the two most influential constants ±30% and checks that every
headline claim survives:

* dispatch rate (470/s) ±30% — single-instance rate scales with it, the
  multi-instance ceiling stays pinned at the fork rate;
* fork rate (6,400/s) ±30% — the saturated launch rate tracks it, and
  Shifter's relative overhead stays in the 10-30% band;
* the engine-vs-WMS verdict (>10x per-task advantage) holds across the
  whole grid.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis import launch_rate, render_table, sweep
from repro.baselines import analytic_overhead, fit_scan_cost
from repro.cluster import NodeSpec, PERLMUTTER_CPU_NODE
from repro.cluster.machine import SimMachine
from repro.cluster.machines import MachineSpec
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask, batch_makespan

import numpy as np

SCALES = (0.7, 1.0, 1.3)


def measure(dispatch_scale: float, fork_scale: float) -> dict:
    node_spec = NodeSpec(
        name="sens", cores=256, fork_rate=6400.0 * fork_scale
    )
    spec = MachineSpec(name="sens", node=node_spec, total_nodes=4)
    dispatch_rate = 470.0 * dispatch_scale

    def rate_with(n_instances: int) -> float:
        env = Environment()
        machine = SimMachine(env, spec, with_lustre=False)
        node = machine.node(0)
        procs = [
            SimParallel(node, jobs=16, dispatch_rate=dispatch_rate,
                        name=f"i{k}").run(
                [SimTask(duration=0.0) for _ in range(250)]
            )
            for k in range(n_instances)
        ]
        launches = []
        for p in procs:
            launches.extend(r.launch_time for r in env.run(until=p))
        return launch_rate(launches)

    single = rate_with(1)
    saturated = rate_with(32)
    # Engine per-task cost at 50k launch-only tasks on 391 nodes.
    engine_makespan = batch_makespan(
        np.zeros(128), jobs=128, dispatch_rate=dispatch_rate,
        fork_rate=node_spec.fork_rate,
    )
    return {
        "single_rate": single,
        "saturated_rate": saturated,
        "engine_128_tasks_s": engine_makespan,
    }


def test_sensitivity_of_headline_claims(benchmark, report_file):
    def experiment():
        return sweep(
            lambda dispatch_scale, fork_scale: measure(dispatch_scale, fork_scale),
            {"dispatch_scale": list(SCALES), "fork_scale": list(SCALES)},
        )

    rows = run_once(benchmark, experiment)
    table = render_table(
        "Sensitivity - headline metrics under +/-30% calibration error",
        ["dispatch_scale", "fork_scale", "single_rate", "saturated_rate",
         "engine_128_tasks_s"],
        rows,
        floatfmt="{:.2f}",
    )
    report_file("sensitivity", table)

    wms_cost = fit_scan_cost()
    wms_per_task_100k = analytic_overhead(100_000, wms_cost) / 100_000

    for row in rows:
        ds, fs = row["dispatch_scale"], row["fork_scale"]
        # Single-instance rate tracks the dispatch rate linearly.
        assert row["single_rate"] == pytest.approx(470.0 * ds, rel=0.06)
        # Saturated rate tracks the fork ceiling, not the dispatcher.
        assert row["saturated_rate"] == pytest.approx(6400.0 * fs, rel=0.06)
        # The engine-vs-WMS verdict is calibration-proof: even with the
        # dispatcher slowed 30% (per-task cost ~3 ms) the engine stays
        # >5x below the WMS's ~18 ms/task; at nominal calibration >8x.
        engine_per_task = row["engine_128_tasks_s"] / 128
        assert engine_per_task < wms_per_task_100k / 5
        if ds >= 1.0:
            assert engine_per_task < wms_per_task_100k / 8

    # Monotonicity: more dispatch rate never hurts the single instance.
    singles = {r["dispatch_scale"]: r["single_rate"]
               for r in rows if r["fork_scale"] == 1.0}
    assert singles[0.7] < singles[1.0] < singles[1.3]
