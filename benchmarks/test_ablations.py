"""Ablations for the design choices called out in DESIGN.md §5.

* cyclic vs block input sharding across nodes (the Listing-1 driver);
* rsync ``-X`` argument batching vs one-file-per-rsync;
* prefetch depth in the Darshan pipeline (0 = no prefetch, 1 = paper's);
* one engine instance with a huge ``-j`` vs many instances (Fig. 3's
  structural insight: the dispatcher, not the slot count, is the
  single-instance bottleneck).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import launch_rate, render_table
from repro.cluster import DTN_CLUSTER, PERLMUTTER_CPU, SimMachine
from repro.dtn import run_dtn_transfer
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask, batch_makespan
from repro.storage import Filesystem, RsyncCostModel, uniform_files


# ---------------------------------------------------------- sharding ablation
def test_ablation_cyclic_vs_block_sharding(benchmark, report_file):
    """When task cost correlates with input position, cyclic sharding
    balances nodes; block sharding piles the expensive lines on one node."""
    n_nodes, per_node = 16, 64
    n = n_nodes * per_node
    # Line cost grows linearly with position (e.g. later months = more logs).
    costs = np.linspace(0.01, 1.0, n)
    # Few slots per node, so a node's makespan tracks its shard's total
    # work (with plentiful slots the max single task dominates and the
    # sharding strategy is irrelevant — that regime is not the ablation).
    jobs = 4

    def experiment():
        def makespan_for(shards):
            return max(
                batch_makespan(np.asarray(shard), jobs=jobs) for shard in shards
            )

        cyclic = [costs[i::n_nodes] for i in range(n_nodes)]
        block = [costs[i * per_node : (i + 1) * per_node] for i in range(n_nodes)]
        return makespan_for(cyclic), makespan_for(block)

    cyclic_ms, block_ms = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - input sharding (position-correlated task costs)",
        ["strategy", "makespan_s"],
        [
            {"strategy": "cyclic (NR % NNODE, paper)", "makespan_s": cyclic_ms},
            {"strategy": "block (contiguous)", "makespan_s": block_ms},
        ],
    )
    report_file("ablation_sharding", table)
    assert cyclic_ms < block_ms  # cyclic wins under cost gradients


# ------------------------------------------------------- -X batching ablation
def test_ablation_rsync_argument_batching(benchmark, report_file):
    """GNU Parallel -X (many files per rsync) vs -j32 with one file per
    rsync process: batching amortizes the 0.3 s startup."""
    files = uniform_files(2000, 256 * 1024, prefix="/gpfs/small")
    cost = RsyncCostModel(startup_s=0.3, per_file_s=0.02, stream_bw=150e6)

    def run(run_cost):
        env = Environment()
        machine = SimMachine(env, DTN_CLUSTER, with_lustre=False)
        src = Filesystem(env, "src", 1e12, 1e12, metadata_rate=1e5)
        dst = Filesystem(env, "dst", 1e12, 1e12, metadata_rate=1e5)
        src.add_files(files)
        report = run_dtn_transfer(
            machine, src, dst, files, n_nodes=1, streams_per_node=32, cost=run_cost
        )
        return report.duration

    def experiment():
        batched = run(cost)
        # One rsync per file through the same 32 slots: every file pays
        # the 0.3 s process startup instead of amortizing it per batch.
        per_file_startup = RsyncCostModel(
            startup_s=0.0,
            per_file_s=cost.per_file_s + cost.startup_s,
            stream_bw=cost.stream_bw,
        )
        return batched, run(per_file_startup)

    batched, unbatched = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - rsync -X argument batching (2,000 small files, 1 node)",
        ["mode", "duration_s"],
        [
            {"mode": "-j32 -X (32 batched rsyncs)", "duration_s": batched},
            {"mode": "one rsync per file", "duration_s": unbatched},
        ],
    )
    report_file("ablation_rsync_batching", table)
    assert batched < unbatched  # startup amortization wins


# ----------------------------------------------------- prefetch-depth ablation
def test_ablation_prefetch_depth(benchmark, report_file):
    """Pipeline depth swept 0..3 with the generic staging executor: depth 1
    (the paper's design) captures the whole win; deeper lookahead has no
    headroom because one copy already hides behind one processing stage."""
    from repro.storage import Filesystem, StagingConfig, run_staging_pipeline

    GB = 1024**3

    def run_depth(depth):
        env = Environment()
        shared = Filesystem(env, "lustre", 1e13, 1e13, max_flows=512)
        local = Filesystem(env, "nvme", 5.5 * GB, 3.5 * GB)
        cfg = StagingConfig(
            n_datasets=5, dataset_bytes=1320 * GB, compute_s=64 * 60.0,
            shared_client_bw=1.0 * GB, copy_bw=0.5 * GB, depth=depth,
        )
        return run_staging_pipeline(env, shared, local, cfg)

    def experiment():
        return {d: run_depth(d) for d in (0, 1, 2, 3)}

    reports = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - staging prefetch depth (Darshan calibration)",
        ["depth", "total_minutes", "lustre_stages", "peak_local_datasets"],
        [
            {"depth": d, "total_minutes": r.total_time / 60,
             "lustre_stages": r.shared_fs_stages,
             "peak_local_datasets": r.peak_local_datasets}
            for d, r in reports.items()
        ],
        floatfmt="{:.1f}",
    )
    report_file("ablation_prefetch_depth", table)

    # Paper's numbers: 430 min unstaged, 358 min with depth 1 (~17%).
    assert reports[0].total_time / 60 == pytest.approx(430, rel=0.02)
    assert reports[1].total_time / 60 == pytest.approx(358, rel=0.02)
    # Depth >= 2 buys nothing once copies hide behind processing.
    for d in (2, 3):
        assert reports[d].total_time == pytest.approx(
            reports[1].total_time, rel=0.01
        )
    # But deeper prefetch costs more NVMe residency.
    assert reports[3].peak_local_datasets >= reports[1].peak_local_datasets


# -------------------------------------------- job-granularity ablation (queue)
def test_ablation_per_task_jobs_vs_one_allocation(benchmark, report_file):
    """The paper's §IV argument quantified: submitting every task as its
    own (node-exclusive) Slurm job wastes the machine; one allocation with
    per-node engine instances packs cores and finishes ~wave-count faster."""
    import numpy as np

    from repro.cluster import FRONTIER, MachineSpec
    from repro.driver import run_multinode_batch
    from repro.slurm import Allocation, QueuedJob, schedule_fifo_backfill

    n_tasks, task_s, n_nodes = 1280, 30.0, 10

    def experiment():
        # (a) one job per task: node-exclusive 30 s jobs through the queue.
        jobs = [QueuedJob(i, 1, task_s, walltime_s=task_s) for i in range(n_tasks)]
        queue = schedule_fifo_backfill(jobs, total_nodes=n_nodes)
        # (b) one 10-node allocation, 128 tasks packed per node.
        calm = MachineSpec(name="calm10", node=FRONTIER.node, total_nodes=64,
                           alloc_delay_mean=2.0, straggler_prob=0.0)
        env = Environment()
        machine = SimMachine(env, calm, with_lustre=False, seed=21)
        run = run_multinode_batch(
            Allocation(machine, n_nodes),
            tasks_per_node=n_tasks // n_nodes,
            duration_sampler=lambda rng, n: np.full(n, task_s),
            jobs_per_node=128,
        )
        return queue.makespan, run.makespan

    queue_makespan, engine_makespan = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - 1,280 x 30s tasks on 10 nodes: per-task jobs vs one allocation",
        ["strategy", "makespan_s"],
        [
            {"strategy": "1,280 node-exclusive Slurm jobs (FIFO+backfill)",
             "makespan_s": queue_makespan},
            {"strategy": "1 allocation + per-node engine (-j128)",
             "makespan_s": engine_makespan},
        ],
        floatfmt="{:.1f}",
    )
    report_file("ablation_job_granularity", table)
    # Per-task jobs serialize into ~128 capacity waves.
    assert queue_makespan == pytest.approx(128 * 30.0, rel=0.02)
    # The engine packs all 128 per-node tasks concurrently: ~1 task time.
    assert engine_makespan < 45.0
    assert queue_makespan / engine_makespan > 50


# ------------------------------------------------------ resilience ablation
def test_ablation_retries_under_failure_injection(benchmark, report_file):
    """Error handling at scale: with a 10% per-task crash rate, --retries
    recovers essentially everything for a modest makespan cost — the
    engine-level resilience the paper's workflows lean on."""

    def run(retries):
        env = Environment()
        machine = SimMachine(env, PERLMUTTER_CPU, seed=13, with_lustre=False)
        inst = SimParallel(machine.node(0), jobs=64, retries=retries)
        proc = inst.run(
            [SimTask(duration=0.5, fail_prob=0.10) for _ in range(2000)]
        )
        results = env.run(until=proc)
        ok = sum(1 for r in results if r.ok)
        return ok / len(results), env.now

    def experiment():
        return {r: run(r) for r in (1, 2, 4)}

    sweep = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - --retries under 10% task-failure injection (2,000 tasks)",
        ["retries", "success_rate", "makespan_s"],
        [
            {"retries": r, "success_rate": ok, "makespan_s": t}
            for r, (ok, t) in sweep.items()
        ],
    )
    report_file("ablation_retries", table)

    ok1, t1 = sweep[1]
    ok4, t4 = sweep[4]
    assert 0.85 <= ok1 <= 0.95          # ~10% lost without retries
    assert ok4 > 0.999                   # retries recover everything
    assert t4 < t1 * 1.5                 # at modest makespan cost


# ------------------------------------------------- instances-vs-big-j ablation
def test_ablation_instances_vs_big_j(benchmark, report_file):
    """One instance with -j256 cannot exceed ~470/s; 8 instances with
    -j32 each reach ~3,760/s: the dispatcher is the bottleneck, not slots."""

    def run(n_instances, jobs):
        env = Environment()
        machine = SimMachine(env, PERLMUTTER_CPU, with_lustre=False)
        node = machine.node(0)
        procs = [
            SimParallel(node, jobs=jobs, name=f"i{k}").run(
                [SimTask(duration=0.0) for _ in range(500)]
            )
            for k in range(n_instances)
        ]
        launches = []
        for p in procs:
            launches.extend(r.launch_time for r in env.run(until=p))
        return launch_rate(launches)

    def experiment():
        return run(1, 256), run(8, 32)

    one_big, many_small = run_once(benchmark, experiment)
    table = render_table(
        "Ablation - one instance -j256 vs 8 instances -j32 (launch rate)",
        ["configuration", "launches_per_s"],
        [
            {"configuration": "1 instance, -j256", "launches_per_s": one_big},
            {"configuration": "8 instances, -j32", "launches_per_s": many_small},
        ],
        floatfmt="{:.0f}",
    )
    report_file("ablation_instances", table)
    assert one_big == pytest.approx(470, rel=0.05)
    assert many_small > 5 * one_big
