"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints the
rows/series, writes them under ``benchmarks/results/``, and asserts the
paper's *shape* claims (who wins, saturation points, crossovers).  Run
with::

    pytest benchmarks/ --benchmark-only

Wall-clock timing of each regeneration is captured by pytest-benchmark
(``rounds=1`` for the heavy simulations; real-engine microbenchmarks use
normal multi-round timing).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture()
def report_file():
    """A writer that saves rendered experiment output and echoes it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return write


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every regenerated table/figure into the terminal output.

    Benchmark prints are captured by pytest; this hook replays the saved
    experiment reports so ``pytest benchmarks/ --benchmark-only | tee ...``
    leaves a self-contained record of the paper-vs-measured rows.
    """
    if not os.path.isdir(RESULTS_DIR):
        return
    tr = terminalreporter
    tr.section("regenerated paper tables and figures (benchmarks/results/)")
    for name in sorted(os.listdir(RESULTS_DIR)):
        if not name.endswith(".txt"):
            continue
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "r", encoding="utf-8") as fh:
            tr.write_line("")
            tr.write_line(f"--- {name} ---")
            for line in fh.read().rstrip("\n").splitlines():
                tr.write_line(line)
