"""E8 / §II-III — orchestration overhead: engine vs a workflow system.

The paper's headline: the Swift/T-scheduled BLAST workflow in WfBench [7]
spent 500 s of pure orchestration on 50,000 launch-only tasks and up to
5,000 s on 100,000, while GNU Parallel ran 1.152 M real tasks across
9,000 Frontier nodes in 561 s total.

We run launch-only (zero-duration) tasks through both systems:

* the WMS baseline (calibrated to [7]'s 500 s @ 50k point; its 100k
  value is then a model prediction);
* the engine, single-node and multi-node (driver-sharded).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.baselines import analytic_overhead, bag_of_tasks, fit_scan_cost, run_workflow_system
from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_multinode_batch
from repro.sim import Environment
from repro.slurm import Allocation

TASK_COUNTS = (10_000, 50_000, 100_000)

#: For the per-scale comparison the WfBench numbers are *pure
#: orchestration* overhead (launch-only tasks, allocation already up), so
#: the engine side runs on a machine without allocation/straggler noise.
#: The paper-scale 561 s run keeps the full Frontier model.
FRONTIER_ORCH = MachineSpec(
    name="frontier-orch",
    node=FRONTIER.node,
    total_nodes=FRONTIER.total_nodes,
    alloc_delay_mean=1e-9,
    straggler_prob=0.0,
)


def wms_overhead(n: int, cost) -> float:
    env = Environment()
    return run_workflow_system(env, bag_of_tasks(n), cost).makespan


def engine_multinode_makespan(
    n_tasks: int, n_nodes: int, spec: MachineSpec = FRONTIER_ORCH
) -> float:
    env = Environment()
    machine = SimMachine(env, spec, seed=11)
    alloc = Allocation(machine, n_nodes)
    run = run_multinode_batch(
        alloc,
        tasks_per_node=n_tasks // n_nodes,
        duration_sampler=lambda rng, n: np.zeros(n),  # launch-only
        jobs_per_node=128,
    )
    return run.makespan


def test_e8_overhead_vs_workflow_system(benchmark, report_file):
    cost = fit_scan_cost()  # calibrated: 500 s @ 50k tasks

    def experiment():
        wms = {n: wms_overhead(n, cost) for n in TASK_COUNTS}
        engine = {
            n: engine_multinode_makespan(n, max(1, n // 128)) for n in TASK_COUNTS
        }
        extreme = engine_multinode_makespan(1_152_000, 9000, spec=FRONTIER)
        return wms, engine, extreme

    wms, engine, extreme = run_once(benchmark, experiment)

    rows = [
        {
            "tasks": n,
            "wms_overhead_s": wms[n],
            "engine_makespan_s": engine[n],
            "engine/wms": engine[n] / wms[n],
        }
        for n in TASK_COUNTS
    ]
    table = render_table(
        "E8 - Launch-only orchestration overhead: WMS baseline vs engine",
        ["tasks", "wms_overhead_s", "engine_makespan_s", "engine/wms"],
        rows,
        floatfmt="{:.2f}",
    )
    table += (
        f"\nEngine at paper scale: 1.152M tasks on 9,000 nodes -> "
        f"{extreme:.0f} s (paper: 561 s)"
        f"\nWMS reference points [7]: 500 s @ 50k (calibrated), "
        f"5,000 s @ 100k (measured; our model predicts {wms[100_000]:.0f} s)"
    )
    report_file("e8_overhead_vs_wms", table)

    # Calibration point reproduced.
    assert wms[50_000] == pytest.approx(500, rel=0.05)
    # Superlinear WMS blow-up: doubling tasks >3x overhead.
    assert wms[100_000] > 3 * wms[50_000]
    # Pure orchestration: the engine is >10x cheaper than the WMS at every
    # scale (sharded dispatch at 470/s/node vs a centralized engine).
    for n in TASK_COUNTS:
        assert engine[n] < 0.1 * wms[n], f"engine not <10% of WMS at {n} tasks"
    # Paper-scale run: 1.152M tasks in the 561 s ballpark — ~11x more tasks
    # than [7]'s 100k point at ~11% of its reported 5,000 s overhead.
    assert 200 < extreme < 900
    assert extreme < 0.15 * 5000.0
    assert extreme / 1_152_000 < (wms[100_000] / 100_000) / 10
    # Analytic model agrees with the simulated WMS engine.
    assert wms[50_000] == pytest.approx(analytic_overhead(50_000, cost), rel=0.02)
