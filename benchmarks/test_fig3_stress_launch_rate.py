"""E3 / Fig. 3 + E11 — launch-rate stress test on a Perlmutter CPU node.

Sweep the number of concurrent GNU Parallel instances launching no-op
tasks and measure the aggregate sustained launch rate.  Claims:

* a single instance launches ~470 processes/s;
* the aggregate saturates at ~6,400 processes/s (the node fork ceiling);
* derived full-utilization floors: 545 ms/task (1 instance, 256 threads)
  and 40 ms/task (saturated node).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import full_utilization_task_floor, launch_rate, render_series
from repro.cluster import (
    ENGINE_DISPATCH_RATE,
    NODE_FORK_RATE,
    PERLMUTTER_CPU,
    SimMachine,
)
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask

INSTANCE_COUNTS = (1, 2, 4, 8, 16, 32)
TASKS_PER_INSTANCE = 600


def measure_rate(n_instances: int) -> float:
    env = Environment()
    machine = SimMachine(env, PERLMUTTER_CPU, with_lustre=False)
    node = machine.node(0)
    jobs_per_instance = max(1, 256 // n_instances)
    procs = [
        SimParallel(node, jobs=jobs_per_instance, name=f"inst{i}").run(
            [SimTask(duration=0.0) for _ in range(TASKS_PER_INSTANCE)]
        )
        for i in range(n_instances)
    ]
    launches: list[float] = []
    for p in procs:
        launches.extend(r.launch_time for r in env.run(until=p))
    return launch_rate(launches)


def test_fig3_launch_rate_sweep(benchmark, report_file):
    def experiment():
        return {n: measure_rate(n) for n in INSTANCE_COUNTS}

    rates = run_once(benchmark, experiment)

    chart = render_series(
        "Fig. 3 - Tasks launched per second vs engine instances (Perlmutter)",
        list(rates.keys()),
        [round(v, 1) for v in rates.values()],
        x_label="instances",
        y_label="launches/s",
    )
    floors = (
        f"\nDerived full-utilization task-duration floors (256 threads):\n"
        f"  single instance : {full_utilization_task_floor(256, rates[1]):.3f} s"
        f"  (paper: 0.545 s)\n"
        f"  saturated node  : {full_utilization_task_floor(256, rates[32]):.3f} s"
        f"  (paper: 0.040 s)"
    )
    report_file("fig3_stress_launch_rate", chart + floors)

    # Single instance ~470/s.
    assert rates[1] == pytest.approx(ENGINE_DISPATCH_RATE, rel=0.05)
    # Monotone non-decreasing with instance count.
    vals = list(rates.values())
    assert all(b >= a * 0.98 for a, b in zip(vals, vals[1:]))
    # Saturation at the fork ceiling ~6,400/s.
    assert rates[32] == pytest.approx(NODE_FORK_RATE, rel=0.05)
    # Doubling instances stops helping once saturated.
    assert rates[32] < rates[16] * 1.15

    # E11: utilization floors match the paper's 545 ms / 40 ms.
    assert full_utilization_task_floor(256, rates[1]) == pytest.approx(0.545, abs=0.03)
    assert full_utilization_task_floor(256, rates[32]) == pytest.approx(0.040, abs=0.004)
