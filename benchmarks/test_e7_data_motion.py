"""E7 / §IV-E — massive parallel file transfer on the 8-node DTN cluster.

``find | driver | parallel -j32 -X rsync -R -Ha`` → 256 concurrent rsync
streams across 8 DTN nodes, against two baselines:

* a single sequential rsync stream (paper: ~200x slower);
* a workflow-system data-transfer layer (per-file session setup, modest
  concurrency; paper: >10x slower than the parallel rsync method).

Calibration: the end-to-end path (source PFS -> WAN -> dest PFS) is set
to the paper's measured aggregate (8 x 2,385 Mb/s ≈ 2.4 GB/s); the claim
under test is that 256 streams *saturate* that path while the baselines
leave it idle.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis import render_table, speedup
from repro.cluster import DTN_CLUSTER, SimMachine
from repro.dtn import run_dtn_transfer, run_sequential_transfer
from repro.sim import Environment
from repro.storage import Filesystem, RsyncCostModel, lognormal_tree

N_FILES = 40_000
MEAN_SIZE = 1024**2  # 1 MB mean, lognormal: a petabyte archive's shape
#: End-to-end path capacity in bytes/s: 8 nodes x 2,385 Mb/s (the paper's
#: measured per-node rate) = 19,080 Mb/s = 2.385e9 B/s.
PATH_BW = 8 * 2385e6 / 8.0

RSYNC_COST = RsyncCostModel(startup_s=0.3, per_file_s=0.07, stream_bw=150e6)
#: Workflow-system staging: per-file control-channel round trips (session
#: setup, checksum registration, catalog update — ~0.45 s/file is
#: mid-range for GridFTP-style layers) and slower streams.
WMS_COST = RsyncCostModel(startup_s=1.0, per_file_s=0.45, stream_bw=50e6)


def setup(seed=2):
    env = Environment()
    machine = SimMachine(env, DTN_CLUSTER, with_lustre=False, seed=seed)
    src = Filesystem(env, "gpfs", PATH_BW, PATH_BW, metadata_rate=1e5)
    dst = Filesystem(env, "lustre", PATH_BW, PATH_BW, metadata_rate=1e5)
    files = lognormal_tree(N_FILES, mean_size=MEAN_SIZE, seed=seed)
    src.add_files(files)
    return machine, src, dst, files


def test_e7_data_motion(benchmark, report_file):
    def experiment():
        m1, s1, d1, files = setup()
        par = run_dtn_transfer(m1, s1, d1, files, n_nodes=8, streams_per_node=32,
                               cost=RSYNC_COST)
        m2, s2, d2, files2 = setup()
        seq = run_sequential_transfer(m2, s2, d2, files2, cost=RSYNC_COST)
        m3, s3, d3, files3 = setup()
        wms = run_dtn_transfer(m3, s3, d3, files3, n_nodes=8, streams_per_node=8,
                               cost=WMS_COST)
        return par, seq, wms

    par, seq, wms = run_once(benchmark, experiment)

    rows = [
        {"method": "parallel rsync (8x32)", "streams": 256,
         "duration_s": par.duration, "per_node_Mb_s": par.per_node_mbit_s,
         "speedup_vs_seq": speedup(seq.duration, par.duration)},
        {"method": "wms transfer (8x8)", "streams": 64,
         "duration_s": wms.duration, "per_node_Mb_s": wms.per_node_mbit_s,
         "speedup_vs_seq": speedup(seq.duration, wms.duration)},
        {"method": "sequential rsync", "streams": 1,
         "duration_s": seq.duration, "per_node_Mb_s": seq.aggregate_mbit_s,
         "speedup_vs_seq": 1.0},
    ]
    table = render_table(
        "E7 - DTN data motion (40k-file lognormal tree)",
        ["method", "streams", "duration_s", "per_node_Mb_s", "speedup_vs_seq"],
        rows,
        floatfmt="{:.1f}",
    )
    report_file("e7_data_motion", table)

    # Everything arrived.
    assert par.n_files == N_FILES

    # Per-node throughput in the paper's ballpark (2,385 Mb/s per node);
    # the drain-out tail (last big files on a few streams) costs some of
    # the steady-state rate, so a generous band is used.
    assert par.per_node_mbit_s == pytest.approx(2385, rel=0.35)
    # Saturation claim: the 256 streams keep the shared path mostly busy.
    path_mbit_s = PATH_BW * 8 / 1e6
    assert par.aggregate_mbit_s > 0.55 * path_mbit_s

    # ~200x over sequential (order preserved: 100-400x accepted).
    sp = speedup(seq.duration, par.duration)
    assert 100 <= sp <= 400, f"sequential speedup {sp:.0f}x out of range"

    # >10x over the workflow-system transfer layer.
    assert speedup(wms.duration, par.duration) > 10
