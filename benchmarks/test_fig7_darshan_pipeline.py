"""E6 / Fig. 7 — the Darshan staged NVMe-prefetch pipeline.

Five datasets; stage 1 processes from Lustre while dataset 2 prefetches;
stages 2-5 process from NVMe, prefetch ahead, and delete behind.  Claims:

* Lustre stage ≈ 86 min, NVMe stages ≈ 68 min each;
* total 358 min vs 430 min all-Lustre baseline — ≈17% improvement;
* only one dataset is ever processed straight from Lustre (fewer "hits").

Also includes the ablation from DESIGN.md §5: no-prefetch (process each
dataset from Lustre) vs the pipeline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis import render_table
from repro.sim import Environment
from repro.storage import make_lustre, make_nvme
from repro.workloads.darshan import DarshanPipelineConfig, run_staged_pipeline


def run_pipeline():
    env = Environment()
    lustre = make_lustre(env)
    nvme = make_nvme(env)
    return run_staged_pipeline(env, lustre, nvme, DarshanPipelineConfig())


def test_fig7_staged_pipeline(benchmark, report_file):
    report = run_once(benchmark, run_pipeline)

    rows = [
        {
            "stage": i + 1,
            "source": "lustre" if i == 0 else "nvme",
            "minutes": t / 60.0,
        }
        for i, t in enumerate(report.stage_times)
    ]
    rows.append({"stage": "total", "source": "pipeline", "minutes": report.total_time / 60})
    rows.append(
        {"stage": "total", "source": "all-lustre", "minutes": report.baseline_all_lustre / 60}
    )
    table = render_table(
        "Fig. 7 - Darshan staged pipeline (per-stage minutes)",
        ["stage", "source", "minutes"],
        rows,
        floatfmt="{:.1f}",
    )
    table += (
        f"\nImprovement vs all-Lustre: {report.improvement:.1%} (paper: ~17%)"
        f"\nDirect Lustre processing stages: {report.lustre_reads} of "
        f"{len(report.stage_times)}"
    )
    report_file("fig7_darshan_pipeline", table)

    minutes = [t / 60 for t in report.stage_times]
    assert minutes[0] == pytest.approx(86, rel=0.05)       # paper: 86 min
    for m in minutes[1:]:
        assert m == pytest.approx(68, rel=0.05)            # paper: 68 min
    assert report.total_time / 60 == pytest.approx(358, rel=0.05)   # paper: 358
    assert report.baseline_all_lustre / 60 == pytest.approx(430, rel=0.05)
    assert report.improvement == pytest.approx(0.17, abs=0.02)      # paper: 17%
    assert report.lustre_reads == 1
