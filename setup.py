from setuptools import setup

# Thin shim for offline environments without PEP 517 build isolation
# (`python setup.py develop`); configuration lives in pyproject.toml.
setup(entry_points={"console_scripts": ["pyparallel=repro.core.cli:main"]})
