"""Nightly soak: rerun the raciest suites at high iteration counts.

Concurrency bugs in the scheduler/worker-pool/remote layers are
probabilistic — a single CI pass proves little.  These tests repeat the
chaos and worker-pool scenarios ``SOAK_ITERS`` times (default 25; the
nightly workflow raises it) and additionally shell out to the full chaos
suites so every assertion in them gets re-rolled.

Deselected by default (``-m 'not soak'`` in addopts); run with::

    SOAK_ITERS=100 python -m pytest tests/soak -m soak -q
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import Parallel
from repro.core.template import CommandTemplate
from repro.faults import FaultPlan, FaultSpec, FaultyTransport
from repro.remote import RemoteBackend, SimTransport, parse_sshlogin

pytestmark = pytest.mark.soak

SOAK_ITERS = int(os.environ.get("SOAK_ITERS", "25"))
SRC_DIR = str(Path(__file__).parents[2] / "src")


def _pytest(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-x", *args],
        capture_output=True, text=True, env=env,
        cwd=str(Path(__file__).parents[2]),
    )


@pytest.mark.parametrize("round_", range(max(1, SOAK_ITERS // 25)))
def test_chaos_suite_repeats_clean(round_):
    proc = _pytest(["tests/chaos", "-p", "no:randomly"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.parametrize("round_", range(max(1, SOAK_ITERS // 25)))
def test_worker_pool_suite_repeats_clean(round_):
    proc = _pytest(["tests/core/test_worker_pool.py"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_remote_host_death_soak():
    # The headline chaos scenario, re-rolled with a different victim
    # budget and seed every iteration.
    for i in range(SOAK_ITERS):
        st = SimTransport()
        ft = FaultyTransport(st, host_down_after={"n2": i % 7})
        backend = RemoteBackend(
            parse_sshlogin("2/n1,2/n2,2/n3"), ft,
            template=CommandTemplate("echo {}"),
        )
        summary = Parallel(
            "echo {}", backend=backend, sshlogin=["2/n1,2/n2,2/n3"],
            ban_after=2,
        ).run([str(j) for j in range(24)])
        assert summary.ok, f"iteration {i}: {summary}"
        assert summary.n_succeeded == 24


def test_transient_fault_storm_soak():
    for i in range(SOAK_ITERS):
        plan = FaultPlan(seed=i, random_faults=[
            (0.2, FaultSpec("connect_timeout")),
            (0.05, FaultSpec("drop")),
        ])
        ft = FaultyTransport(SimTransport(), plan=plan)
        backend = RemoteBackend(
            parse_sshlogin("2/a,2/b,2/c,2/d"), ft,
            template=CommandTemplate("echo {}"),
        )
        summary = Parallel(
            "echo {}", backend=backend, sshlogin=["2/a,2/b,2/c,2/d"],
        ).run([str(j) for j in range(30)])
        assert summary.ok, f"iteration {i}"


def test_local_engine_churn_soak():
    # Rapid engine reuse: prepare/run/teardown cycles must not leak
    # state between runs (pool renewal, cancellation events, joblogs).
    engine = Parallel("echo {}", sshlogin=["2/x,2/y"], jobs=2)
    for i in range(SOAK_ITERS):
        summary = engine.run([str(j) for j in range(8)])
        assert summary.ok, f"iteration {i}"
