"""Generic staged-prefetch pipeline with configurable depth."""

import pytest

from repro.errors import StorageError
from repro.sim import Environment
from repro.storage import Filesystem, StagingConfig, run_staging_pipeline

GB = 1024**3

# The Darshan calibration expressed generically: shared-FS stage 86 min,
# local stage 68 min, 44-minute copies.
CFG = dict(
    n_datasets=5,
    dataset_bytes=1320 * GB,
    compute_s=64 * 60.0,
    shared_client_bw=1.0 * GB,
    copy_bw=0.5 * GB,
)


def run(depth, n_datasets=5):
    env = Environment()
    shared = Filesystem(env, "shared", 1e13, 1e13, max_flows=512)
    local = Filesystem(env, "local", 5.5 * GB, 3.5 * GB)
    cfg = StagingConfig(**{**CFG, "n_datasets": n_datasets, "depth": depth})
    return run_staging_pipeline(env, shared, local, cfg)


def test_depth0_matches_all_shared_baseline():
    report = run(depth=0)
    assert report.shared_fs_stages == 5
    assert report.total_time / 60 == pytest.approx(430, rel=0.02)


def test_depth1_matches_paper_pipeline():
    report = run(depth=1)
    assert report.shared_fs_stages == 1
    assert report.total_time / 60 == pytest.approx(358, rel=0.02)
    assert report.stage_times[0] / 60 == pytest.approx(86, rel=0.03)
    for t in report.stage_times[1:]:
        assert t / 60 == pytest.approx(68, rel=0.03)


def test_depth2_no_faster_when_copies_hide():
    d1 = run(depth=1)
    d2 = run(depth=2)
    # Copies (44 min) already hide behind 68-min stages: extra lookahead
    # cannot shorten the critical path.
    assert d2.total_time == pytest.approx(d1.total_time, rel=0.01)


def test_deeper_prefetch_helps_when_copies_are_slow():
    def run_slow(depth):
        env = Environment()
        shared = Filesystem(env, "shared", 1e13, 1e13)
        local = Filesystem(env, "local", 1e13, 1e13)
        cfg = StagingConfig(
            n_datasets=6, dataset_bytes=100 * GB, compute_s=60.0,
            shared_client_bw=1.0 * GB,
            copy_bw=0.5 * GB,  # 200 s copy vs 160 s local stage: copies lag
            depth=depth,
        )
        return run_staging_pipeline(env, shared, local, cfg)

    d1 = run_slow(1)
    d3 = run_slow(3)
    assert d3.total_time < d1.total_time  # lookahead pays off here


def test_capacity_respected():
    report = run(depth=1)
    assert report.peak_local_datasets <= 2  # depth + processing slot
    report3 = run(depth=3)
    assert report3.peak_local_datasets <= 4


def test_single_dataset():
    report = run(depth=1, n_datasets=1)
    assert report.shared_fs_stages == 1
    assert len(report.stage_times) == 1


def test_validation():
    with pytest.raises(StorageError):
        StagingConfig(n_datasets=0, dataset_bytes=1, compute_s=1,
                      shared_client_bw=1, copy_bw=1)
    with pytest.raises(StorageError):
        StagingConfig(n_datasets=1, dataset_bytes=1, compute_s=1,
                      shared_client_bw=1, copy_bw=1, depth=-1)
