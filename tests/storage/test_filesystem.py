"""Filesystem model: namespace, bandwidth sharing, metadata costs."""

import pytest

from repro.errors import StorageError
from repro.sim import Environment
from repro.storage import FileEntry, Filesystem, make_lustre, make_nvme


def test_namespace_add_exists_size_remove():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)
    fs.add_file("/a/b", 10)
    assert fs.exists("/a/b")
    assert fs.size_of("/a/b") == 10
    fs.remove("/a/b")
    assert not fs.exists("/a/b")


def test_size_of_missing_raises():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)
    with pytest.raises(StorageError):
        fs.size_of("/missing")


def test_remove_missing_raises():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)
    with pytest.raises(StorageError):
        fs.remove("/missing")


def test_negative_size_rejected():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)
    with pytest.raises(StorageError):
        fs.add_file("/x", -1)
    with pytest.raises(StorageError):
        FileEntry("/x", -1)


def test_list_files_prefix_and_sorted():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)
    fs.add_files([FileEntry("/b/2", 2), FileEntry("/a/1", 1), FileEntry("/b/1", 3)])
    assert [e.path for e in fs.list_files("/b")] == ["/b/1", "/b/2"]
    assert fs.total_bytes == 6
    assert fs.file_count == 3


def test_read_write_timed_by_bandwidth():
    env = Environment()
    fs = Filesystem(env, "t", read_bw=100.0, write_bw=50.0)
    done = {}

    def proc():
        yield fs.read(1000.0)
        done["read"] = env.now
        yield fs.write(1000.0)
        done["write"] = env.now

    env.process(proc())
    env.run()
    assert done["read"] == pytest.approx(10.0)
    assert done["write"] == pytest.approx(10.0 + 20.0)


def test_concurrent_writers_share_bandwidth():
    env = Environment()
    fs = Filesystem(env, "t", read_bw=100.0, write_bw=100.0)
    ends = []

    def writer():
        yield fs.write(500.0)
        ends.append(env.now)

    env.process(writer())
    env.process(writer())
    env.run()
    assert ends == [pytest.approx(10.0), pytest.approx(10.0)]


def test_metadata_ops_serialize():
    env = Environment()
    fs = Filesystem(env, "t", 1e9, 1e9, metadata_rate=10.0)
    ends = []

    def proc():
        yield fs.metadata_op()
        ends.append(env.now)

    for _ in range(5):
        env.process(proc())
    env.run()
    # 10 ops/s -> one every 0.1 s, serialized.
    assert ends == [pytest.approx(0.1 * (i + 1)) for i in range(5)]


def test_create_combines_metadata_and_write():
    env = Environment()
    fs = Filesystem(env, "t", 1e9, 100.0, metadata_rate=10.0)

    def proc():
        yield from fs.create("/new", 500)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(0.1 + 5.0)
    assert fs.exists("/new")


def test_counters():
    env = Environment()
    fs = Filesystem(env, "t", 100.0, 100.0)

    def proc():
        yield fs.read(1)
        yield fs.write(1)
        yield fs.metadata_op()

    env.process(proc())
    env.run()
    assert (fs.n_reads, fs.n_writes, fs.n_metadata_ops) == (1, 1, 1)


def test_presets():
    env = Environment()
    lustre = make_lustre(env)
    nvme = make_nvme(env)
    assert lustre.read_link.max_flows == 512
    assert nvme.read_link.max_flows is None
    assert lustre.name == "lustre"
