"""rsync model: incremental semantics, relative paths, cost structure."""

import pytest

from repro.errors import StorageError
from repro.sim import Environment, FairShareLink
from repro.storage import (
    FileEntry,
    Filesystem,
    RsyncCostModel,
    rsync_process,
    uniform_files,
)

FAST = RsyncCostModel(startup_s=0.0, per_file_s=0.0, stream_bw=1e12)


def make_pair(env, bw=1e9):
    src = Filesystem(env, "src", bw, bw)
    dst = Filesystem(env, "dst", bw, bw)
    return src, dst


def test_transfers_all_files_and_preserves_paths():
    env = Environment()
    src, dst = make_pair(env)
    files = uniform_files(5, 100, prefix="/proj/data")
    src.add_files(files)
    p = env.process(rsync_process(env, src, dst, files, cost=FAST))
    stats = env.run(until=p)
    assert stats.files_transferred == 5
    assert dst.exists("/proj/data/f00000000.bin")  # -R relative paths
    assert dst.total_bytes == 500


def test_non_relative_flattens_to_basename():
    env = Environment()
    src, dst = make_pair(env)
    files = [FileEntry("/deep/tree/file.bin", 10)]
    src.add_files(files)
    p = env.process(rsync_process(env, src, dst, files, cost=FAST, relative=False))
    env.run(until=p)
    assert dst.exists("file.bin")
    assert not dst.exists("/deep/tree/file.bin")


def test_incremental_skips_identical_destination_files():
    env = Environment()
    src, dst = make_pair(env)
    files = uniform_files(4, 100)
    src.add_files(files)
    dst.add_files(files[:2])  # already present, same size
    p = env.process(rsync_process(env, src, dst, files, cost=FAST))
    stats = env.run(until=p)
    assert stats.files_skipped == 2
    assert stats.files_transferred == 2
    assert stats.bytes_transferred == 200


def test_size_mismatch_retransfers():
    env = Environment()
    src, dst = make_pair(env)
    files = [FileEntry("/f", 100)]
    src.add_files(files)
    dst.add_file("/f", 50)  # stale partial copy
    p = env.process(rsync_process(env, src, dst, files, cost=FAST))
    stats = env.run(until=p)
    assert stats.files_transferred == 1


def test_missing_source_raises():
    env = Environment()
    src, dst = make_pair(env)
    p = env.process(rsync_process(env, src, dst, [FileEntry("/ghost", 1)], cost=FAST))
    with pytest.raises(StorageError):
        env.run(until=p)


def test_delete_source_mode():
    env = Environment()
    src, dst = make_pair(env)
    files = uniform_files(3, 10)
    src.add_files(files)
    p = env.process(
        rsync_process(env, src, dst, files, cost=FAST, delete_source=True)
    )
    env.run(until=p)
    assert src.file_count == 0 and dst.file_count == 3


def test_startup_and_per_file_costs_accrue():
    env = Environment()
    src, dst = make_pair(env, bw=1e15)
    files = uniform_files(10, 1)
    src.add_files(files)
    cost = RsyncCostModel(startup_s=2.0, per_file_s=0.5, stream_bw=1e15)
    p = env.process(rsync_process(env, src, dst, files, cost=cost))
    stats = env.run(until=p)
    # 2 s startup + 10 * 0.5 s per-file (data time negligible).
    assert stats.duration == pytest.approx(7.0, abs=0.01)


def test_stream_bandwidth_ceiling():
    env = Environment()
    src, dst = make_pair(env, bw=1e12)
    files = [FileEntry("/big", 1000)]
    src.add_files(files)
    cost = RsyncCostModel(startup_s=0.0, per_file_s=0.0, stream_bw=100.0)
    p = env.process(rsync_process(env, src, dst, files, cost=cost))
    stats = env.run(until=p)
    assert stats.duration == pytest.approx(10.0)
    assert stats.throughput == pytest.approx(100.0)


def test_nic_throttling():
    env = Environment()
    src, dst = make_pair(env, bw=1e12)
    nic = FairShareLink(env, rate=50.0)
    files = [FileEntry("/big", 1000)]
    src.add_files(files)
    p = env.process(
        rsync_process(env, src, dst, files, cost=FAST, nic=nic)
    )
    stats = env.run(until=p)
    assert stats.duration == pytest.approx(20.0)


def test_parallel_rsyncs_share_destination_bandwidth():
    env = Environment()
    src = Filesystem(env, "src", 1e12, 1e12)
    dst = Filesystem(env, "dst", 1e12, 100.0)
    a = uniform_files(1, 500, prefix="/a")
    b = uniform_files(1, 500, prefix="/b")
    src.add_files(a)
    src.add_files(b)
    pa = env.process(rsync_process(env, src, dst, a, cost=FAST))
    pb = env.process(rsync_process(env, src, dst, b, cost=FAST))
    env.run()
    # Two 500-byte writes share 100 B/s -> both finish at 10 s.
    assert env.now == pytest.approx(10.0)
