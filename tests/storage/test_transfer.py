"""Real-filesystem transfer primitives: streams, sizes, pruning."""

import os

import pytest

from repro.errors import StagingError
from repro.storage.transfer import (
    MAX_STREAMS,
    STREAM_CHUNK,
    copy_file,
    plan_streams,
    remote_relpath,
    remove_files,
)


class TestPlanStreams:
    def test_small_payload_single_stream(self):
        assert plan_streams(0) == 1
        assert plan_streams(1) == 1
        assert plan_streams(STREAM_CHUNK - 1) == 1

    def test_one_stream_per_chunk(self):
        assert plan_streams(STREAM_CHUNK) == 1
        assert plan_streams(2 * STREAM_CHUNK) == 2
        assert plan_streams(3 * STREAM_CHUNK + 5) == 3

    def test_capped_at_max(self):
        assert plan_streams(100 * STREAM_CHUNK) == MAX_STREAMS

    def test_negative_is_one(self):
        assert plan_streams(-7) == 1


class TestCopyFile:
    def test_returns_source_size(self, tmp_path):
        src = tmp_path / "a.bin"
        src.write_bytes(b"x" * 1234)
        dest = tmp_path / "sub" / "a.bin"
        assert copy_file(str(src), str(dest)) == 1234
        assert dest.read_bytes() == b"x" * 1234

    def test_missing_source_raises_staging_error(self, tmp_path):
        with pytest.raises(StagingError):
            copy_file(str(tmp_path / "nope"), str(tmp_path / "d"))

    def test_same_path_noop(self, tmp_path):
        src = tmp_path / "a.bin"
        src.write_bytes(b"hello")
        assert copy_file(str(src), str(src)) == 5
        assert src.read_bytes() == b"hello"

    def test_multi_stream_copy_is_byte_identical(self, tmp_path):
        # > 2 chunks with an uneven tail: spans cover the whole payload.
        payload = os.urandom(2 * STREAM_CHUNK + 12345)
        src = tmp_path / "big.bin"
        src.write_bytes(payload)
        dest = tmp_path / "out" / "big.bin"
        assert copy_file(str(src), str(dest)) == len(payload)
        assert dest.read_bytes() == payload

    def test_explicit_streams_override(self, tmp_path):
        payload = os.urandom(STREAM_CHUNK // 2)  # auto-plan would pick 1
        src = tmp_path / "mid.bin"
        src.write_bytes(payload)
        dest = tmp_path / "mid.out"
        assert copy_file(str(src), str(dest), streams=3) == len(payload)
        assert dest.read_bytes() == payload

    def test_streamed_copy_preserves_mode(self, tmp_path):
        payload = os.urandom(2 * STREAM_CHUNK)
        src = tmp_path / "exe.bin"
        src.write_bytes(payload)
        os.chmod(src, 0o755)
        dest = tmp_path / "exe.out"
        copy_file(str(src), str(dest))
        assert os.stat(dest).st_mode & 0o777 == 0o755

    def test_overwrites_larger_existing_dest(self, tmp_path):
        payload = os.urandom(2 * STREAM_CHUNK)
        src = tmp_path / "small.bin"
        src.write_bytes(payload)
        dest = tmp_path / "dest.bin"
        dest.write_bytes(b"z" * (3 * STREAM_CHUNK))  # stale, larger
        copy_file(str(src), str(dest))
        assert dest.read_bytes() == payload


class TestRemoveFiles:
    def test_removes_and_counts(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.write_text("1")
        b.write_text("2")
        assert remove_files([str(a), str(b), str(tmp_path / "ghost")]) == 2
        assert not a.exists() and not b.exists()

    def test_prunes_empty_parents_up_to_root(self, tmp_path):
        root = tmp_path / "work"
        leaf = root / "in" / "deep" / "f.txt"
        leaf.parent.mkdir(parents=True)
        leaf.write_text("x")
        assert remove_files([str(leaf)], root=str(root)) == 1
        assert not (root / "in").exists()
        assert root.exists()  # the root itself is never pruned

    def test_stops_at_nonempty_parent(self, tmp_path):
        root = tmp_path / "work"
        d = root / "in"
        d.mkdir(parents=True)
        (d / "keep.txt").write_text("keep")
        (d / "gone.txt").write_text("x")
        remove_files([str(d / "gone.txt")], root=str(root))
        assert (d / "keep.txt").exists()
        assert d.exists()

    def test_sibling_root_prefix_not_pruned(self, tmp_path):
        # root "d" must never prune inside sibling "d2" even though
        # "d2".startswith("d"): containment is component-wise.
        root = tmp_path / "d"
        root.mkdir()
        sib = tmp_path / "d2" / "sub"
        sib.mkdir(parents=True)
        f = sib / "f.txt"
        f.write_text("x")
        remove_files([str(f)], root=str(root))
        assert sib.exists()  # outside root: left alone

    def test_no_root_no_pruning(self, tmp_path):
        d = tmp_path / "in"
        d.mkdir()
        f = d / "f.txt"
        f.write_text("x")
        remove_files([str(f)])
        assert d.exists()


class TestRemoteRelpath:
    def test_strips_leading_slash_and_dot(self):
        assert remote_relpath("/data/a.txt") == "data/a.txt"
        assert remote_relpath("./in/x") == "in/x"

    def test_rejects_escapes(self):
        with pytest.raises(StagingError):
            remote_relpath("../x")
        with pytest.raises(StagingError):
            remote_relpath("a/../../x")

    def test_empty_rejected(self):
        with pytest.raises(StagingError):
            remote_relpath("/")
