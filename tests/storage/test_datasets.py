"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.storage.datasets import lognormal_tree, uniform_files


def test_lognormal_tree_count_and_mean():
    files = lognormal_tree(5000, mean_size=1_000_000, seed=1)
    assert len(files) == 5000
    sizes = np.array([f.size for f in files])
    # Lognormal with sigma=2 has huge variance; mean within a factor ~2.
    assert 0.5e6 < sizes.mean() < 2.0e6
    assert (sizes >= 1).all()


def test_lognormal_tree_heavy_tail():
    files = lognormal_tree(5000, mean_size=1_000_000, seed=1)
    sizes = np.sort([f.size for f in files])
    # Top 1% of files hold a large share of the bytes.
    top = sizes[-len(sizes) // 100 :].sum()
    assert top / sizes.sum() > 0.2


def test_lognormal_tree_deterministic_and_unique_paths():
    a = lognormal_tree(100, seed=3)
    b = lognormal_tree(100, seed=3)
    assert a == b
    assert len({f.path for f in a}) == 100


def test_lognormal_tree_prefix():
    files = lognormal_tree(10, prefix="/my/root", seed=0)
    assert all(f.path.startswith("/my/root/") for f in files)


def test_lognormal_tree_validation():
    with pytest.raises(ValueError):
        lognormal_tree(-1)


def test_uniform_files():
    files = uniform_files(3, 42, prefix="/p", suffix=".log")
    assert [f.size for f in files] == [42, 42, 42]
    assert files[0].path == "/p/f00000000.log"
    with pytest.raises(ValueError):
        uniform_files(1, -5)
