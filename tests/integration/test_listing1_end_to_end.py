"""End-to-end reproduction of Listing 1's driver flow with real processes.

The paper's multi-node pattern, run locally: "nodes" are concurrent
engine instances, each consuming its awk-style cyclic shard of a shared
input file and running the payload via the pyparallel CLI machinery —
the full chain (driver sharding → engine → payload → output collection)
exercised for real.
"""

import threading

from repro import Parallel
from repro.driver import shard_cyclic
from repro.workloads.payload import PAYLOAD_SHELL


N_NODES = 4
N_INPUTS = 32


def test_listing1_flow_produces_all_outputs(tmp_path):
    inputs_file = tmp_path / "inputs.txt"
    inputs_file.write_text("".join(f"task{i}\n" for i in range(N_INPUTS)))

    all_lines: list[str] = []
    lock = threading.Lock()
    errors: list[Exception] = []

    def node(nodeid: int):
        # awk -v NNODE=.. -v NODEID=.. 'NR % NNODE == NODEID'
        lines = inputs_file.read_text().splitlines()
        shard = list(shard_cyclic(lines, N_NODES, nodeid))
        # | parallel -j<cores> ./payload.sh {}
        try:
            summary = Parallel(PAYLOAD_SHELL, jobs=4).run(shard)
            assert summary.ok
            with lock:
                all_lines.extend(r.stdout.strip() for r in summary.results)
        except Exception as exc:  # surface failures to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=node, args=(i,)) for i in range(N_NODES)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert len(all_lines) == N_INPUTS

    # Every payload line is "<hostname> <timestamp> <tag>" with a unique tag.
    tags = set()
    for line in all_lines:
        host, ts, tag = line.split()
        float(ts)
        tags.add(tag)
    assert tags == {f"task{i}" for i in range(N_INPUTS)}


def test_listing1_shards_disjoint_under_concurrency(tmp_path):
    """No input is processed twice even with all nodes running at once."""
    lines = [str(i) for i in range(101)]
    seen: list[str] = []
    lock = threading.Lock()

    def node(nodeid: int):
        shard = list(shard_cyclic(lines, N_NODES, nodeid))
        p = Parallel(lambda x: x, jobs=8)
        summary = p.run(shard)
        with lock:
            seen.extend(r.value for r in summary.results)

    threads = [threading.Thread(target=node, args=(i,)) for i in range(N_NODES)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert sorted(seen, key=int) == lines
