"""Spawn-path parity: posix and popen must be byte-for-byte identical.

The posix_spawn fast path (see ``repro.core.backends.spawn``) is a pure
latency optimisation — every user-visible behaviour (``--keep-order``
ordering, ``--tag`` prefixes, exit codes, stderr routing, timeout kills)
must match the Popen reference path exactly.  These tests run the same
workload through both paths and diff the collected output.
"""

import pytest

from repro import Parallel
from repro.core.backends.local import LocalShellBackend
from repro.core.backends.spawn import spawn_supported
from repro.core.options import Options

pytestmark = pytest.mark.skipif(
    not spawn_supported(), reason="posix_spawn unavailable on this platform"
)

PATHS = ("posix", "popen")


def run_collect(command, inputs, **option_fields):
    """Run and return (summary, concatenated formatted output)."""
    chunks = []
    engine = Parallel(
        command, output=lambda _res, text: chunks.append(text), **option_fields
    )
    summary = engine.run(inputs)
    return summary, "".join(chunks)


# ----------------------------------------------------------------- routing
def test_spawn_path_routing_matrix():
    backend = LocalShellBackend()
    try:
        backend.prepare_run(Options(spawn_path="posix"))
        assert backend.spawn_path == "posix"
        backend.prepare_run(Options(spawn_path="popen"))
        assert backend.spawn_path == "popen"
        # auto picks posix where supported...
        backend.prepare_run(Options(spawn_path="auto"))
        assert backend.spawn_path == "posix"
        # ...but --wd needs a child cwd, which posix_spawn cannot set.
        backend.prepare_run(Options(spawn_path="auto", workdir="."))
        assert backend.spawn_path == "popen"
    finally:
        backend.close()


# ------------------------------------------------------------ output parity
@pytest.mark.parametrize(
    "flags",
    [
        {"keep_order": True},
        {"keep_order": True, "tag": True},
        {"keep_order": True, "tagstring": "[{#}]"},
    ],
    ids=["keep-order", "keep-order+tag", "keep-order+tagstring"],
)
def test_formatted_output_identical_across_paths(flags):
    outputs = {}
    for path in PATHS:
        summary, text = run_collect(
            "printf '%s\\n%s\\n' one-{} two-{}", range(1, 9),
            jobs=4, spawn_path=path, **flags,
        )
        assert summary.ok
        outputs[path] = text
    assert outputs["posix"] == outputs["popen"]
    assert "one-3" in outputs["posix"] and "two-8" in outputs["posix"]


def test_tag_without_keep_order_same_line_set():
    # Completion order is scheduling-dependent, so compare the sorted
    # line multiset instead of the byte stream.
    lines = {}
    for path in PATHS:
        summary, text = run_collect(
            "echo {}", range(1, 13), jobs=4, tag=True, spawn_path=path
        )
        assert summary.ok
        lines[path] = sorted(text.splitlines())
    assert lines["posix"] == lines["popen"]


def test_exit_codes_and_stderr_identical_across_paths():
    per_path = {}
    for path in PATHS:
        rows = []
        engine = Parallel(
            "sh -c 'echo out-{}; echo err-{} >&2; exit $(( {} % 2 ))'",
            output=lambda res, text: rows.append(
                (res.seq, res.exit_code, text, res.stderr)
            ),
            jobs=3, keep_order=True, spawn_path=path,
        )
        summary = engine.run(range(1, 7))
        assert summary.n_failed == 3  # odd seqs exit 1
        per_path[path] = rows
    assert per_path["posix"] == per_path["popen"]


def test_timeout_kill_identical_across_paths():
    states = {}
    for path in PATHS:
        summary, _text = run_collect(
            "sh -c 'sleep 5; echo late-{}'", [1, 2],
            jobs=2, timeout=0.2, spawn_path=path,
        )
        assert not summary.ok
        states[path] = sorted(
            (r.seq, r.state.value, r.stdout) for r in summary.results
        )
    assert states["posix"] == states["popen"]
