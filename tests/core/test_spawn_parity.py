"""Spawn-path parity: posix and popen must be byte-for-byte identical.

The posix_spawn fast path (see ``repro.core.backends.spawn``) is a pure
latency optimisation — every user-visible behaviour (``--keep-order``
ordering, ``--tag`` prefixes, exit codes, stderr routing, timeout kills)
must match the Popen reference path exactly.  These tests run the same
workload through both paths and diff the collected output.

The cross-shard matrix at the bottom extends the same contract to
``--dispatchers N``: sharding the dispatch loop over worker processes is
also a pure throughput device, so every (dispatchers, spawn-path) cell
must reproduce the single-dispatcher byte stream exactly — including
``--joblog`` rows, ``--tag`` prefixes and ``--halt`` outcomes.
"""

import pytest

from repro import Parallel
from repro.core.backends.local import LocalShellBackend
from repro.core.backends.spawn import spawn_supported
from repro.core.joblog import read_joblog
from repro.core.options import Options

pytestmark = pytest.mark.skipif(
    not spawn_supported(), reason="posix_spawn unavailable on this platform"
)

PATHS = ("posix", "popen")
#: Shard counts for the cross-shard parity matrix (1 = the baseline
#: in-process dispatcher every other cell must match byte-for-byte).
DISPATCHERS = (1, 2, 4)
MATRIX_PATHS = ("auto", "popen")


def run_collect(command, inputs, **option_fields):
    """Run and return (summary, concatenated formatted output)."""
    chunks = []
    engine = Parallel(
        command, output=lambda _res, text: chunks.append(text), **option_fields
    )
    summary = engine.run(inputs)
    return summary, "".join(chunks)


# ----------------------------------------------------------------- routing
def test_spawn_path_routing_matrix():
    backend = LocalShellBackend()
    try:
        backend.prepare_run(Options(spawn_path="posix"))
        assert backend.spawn_path == "posix"
        backend.prepare_run(Options(spawn_path="popen"))
        assert backend.spawn_path == "popen"
        # auto picks posix where supported...
        backend.prepare_run(Options(spawn_path="auto"))
        assert backend.spawn_path == "posix"
        # ...but --wd needs a child cwd, which posix_spawn cannot set.
        backend.prepare_run(Options(spawn_path="auto", workdir="."))
        assert backend.spawn_path == "popen"
    finally:
        backend.close()


# ------------------------------------------------------------ output parity
@pytest.mark.parametrize(
    "flags",
    [
        {"keep_order": True},
        {"keep_order": True, "tag": True},
        {"keep_order": True, "tagstring": "[{#}]"},
    ],
    ids=["keep-order", "keep-order+tag", "keep-order+tagstring"],
)
def test_formatted_output_identical_across_paths(flags):
    outputs = {}
    for path in PATHS:
        summary, text = run_collect(
            "printf '%s\\n%s\\n' one-{} two-{}", range(1, 9),
            jobs=4, spawn_path=path, **flags,
        )
        assert summary.ok
        outputs[path] = text
    assert outputs["posix"] == outputs["popen"]
    assert "one-3" in outputs["posix"] and "two-8" in outputs["posix"]


def test_tag_without_keep_order_same_line_set():
    # Completion order is scheduling-dependent, so compare the sorted
    # line multiset instead of the byte stream.
    lines = {}
    for path in PATHS:
        summary, text = run_collect(
            "echo {}", range(1, 13), jobs=4, tag=True, spawn_path=path
        )
        assert summary.ok
        lines[path] = sorted(text.splitlines())
    assert lines["posix"] == lines["popen"]


def test_exit_codes_and_stderr_identical_across_paths():
    per_path = {}
    for path in PATHS:
        rows = []
        engine = Parallel(
            "sh -c 'echo out-{}; echo err-{} >&2; exit $(( {} % 2 ))'",
            output=lambda res, text: rows.append(
                (res.seq, res.exit_code, text, res.stderr)
            ),
            jobs=3, keep_order=True, spawn_path=path,
        )
        summary = engine.run(range(1, 7))
        assert summary.n_failed == 3  # odd seqs exit 1
        per_path[path] = rows
    assert per_path["posix"] == per_path["popen"]


def test_timeout_kill_identical_across_paths():
    states = {}
    for path in PATHS:
        summary, _text = run_collect(
            "sh -c 'sleep 5; echo late-{}'", [1, 2],
            jobs=2, timeout=0.2, spawn_path=path,
        )
        assert not summary.ok
        states[path] = sorted(
            (r.seq, r.state.value, r.stdout) for r in summary.results
        )
    assert states["posix"] == states["popen"]


# ------------------------------------------------------- cross-shard matrix
#: A workload exercising stdout, stderr and mixed exit codes at once.
MIXED_CMD = "sh -c 'echo out-{}; echo err-{} >&2; exit $(( {} % 2 ))'"


def _stable_joblog_rows(path):
    """Joblog reduced to its run-invariant columns, in seq order.

    Start times and runtimes are wall-clock (volatile across runs by
    definition); seq, exit status, signal and the rendered command are
    the contract the matrix pins.
    """
    return sorted(
        (e.seq, e.exitval, e.signal, e.command) for e in read_joblog(path)
    )


def _matrix_cell(n_disp, path, tmp_path, flags):
    """One (dispatchers, spawn-path) run; returns its comparable outcome."""
    joblog = tmp_path / f"d{n_disp}-{path}.log"
    rows = []
    engine = Parallel(
        MIXED_CMD,
        output=lambda res, text: rows.append(
            (res.seq, res.exit_code, text, res.stderr)
        ),
        jobs=4, spawn_path=path, dispatchers=n_disp,
        joblog=str(joblog), **flags,
    )
    summary = engine.run(range(1, 9))
    return {
        "rows": rows,
        "n_failed": summary.n_failed,
        "joblog": _stable_joblog_rows(str(joblog)),
    }


@pytest.mark.parametrize("path", MATRIX_PATHS)
@pytest.mark.parametrize(
    "flags",
    [
        {"keep_order": True},
        {"keep_order": True, "tag": True},
        {"keep_order": True, "tagstring": "[{#}]"},
    ],
    ids=["keep-order", "keep-order+tag", "keep-order+tagstring"],
)
def test_dispatcher_matrix_byte_identical(tmp_path, path, flags):
    baseline = _matrix_cell(1, path, tmp_path, flags)
    assert baseline["n_failed"] == 4  # odd seqs exit 1
    for n_disp in DISPATCHERS[1:]:
        cell = _matrix_cell(n_disp, path, tmp_path, flags)
        assert cell["rows"] == baseline["rows"], (
            f"--dispatchers {n_disp} --spawn-path {path} diverged"
        )
        assert cell["n_failed"] == baseline["n_failed"]
        assert cell["joblog"] == baseline["joblog"]


@pytest.mark.parametrize("n_disp", DISPATCHERS)
@pytest.mark.parametrize("path", MATRIX_PATHS)
def test_dispatcher_matrix_halt_now_fail(tmp_path, n_disp, path):
    # Serial submission makes --halt now,fail=1 deterministic: the first
    # failure (seq 2) halts before seq 3 dispatches, in every cell.
    joblog = tmp_path / f"halt-{n_disp}-{path}.log"
    rows = []
    engine = Parallel(
        "sh -c 'exit $(( {} == 2 ))'",
        output=lambda res, text: rows.append((res.seq, res.exit_code, text)),
        jobs=1, keep_order=True, halt="now,fail=1",
        spawn_path=path, dispatchers=n_disp, joblog=str(joblog),
    )
    summary = engine.run(range(1, 7))
    assert not summary.ok
    assert summary.n_failed == 1
    assert rows == [(1, 0, ""), (2, 1, "")]
    assert _stable_joblog_rows(str(joblog)) == [
        (1, 0, 0, "sh -c 'exit $(( 1 == 2 ))'"),
        (2, 1, 0, "sh -c 'exit $(( 2 == 2 ))'"),
    ]


#: Frame sizes for the rpc-batch parity matrix.  1 = per-job messages
#: (the pre-batching wire shape every other cell must reproduce).
RPC_BATCHES = (1, 8, 64)


@pytest.mark.parametrize("rpc_batch", RPC_BATCHES)
def test_rpc_batch_matrix_byte_identical(tmp_path, rpc_batch):
    """Frame batching is a pure wire optimisation: every (rpc_batch,
    dispatchers) cell must reproduce the unbatched single-dispatcher
    byte stream — output rows, failure counts and sealed joblog alike.
    """
    flags = {"keep_order": True, "tag": True}
    baseline = _matrix_cell(1, "auto", tmp_path, {**flags, "rpc_batch": 1})
    assert baseline["n_failed"] == 4
    for n_disp in DISPATCHERS:
        cell = _matrix_cell(
            n_disp, "auto", tmp_path, {**flags, "rpc_batch": rpc_batch}
        )
        assert cell["rows"] == baseline["rows"], (
            f"--rpc-batch {rpc_batch} --dispatchers {n_disp} diverged"
        )
        assert cell["n_failed"] == baseline["n_failed"]
        assert cell["joblog"] == baseline["joblog"]


def test_rpc_batch_auto_matches_explicit(tmp_path):
    # The "auto" frame-size heuristic must be invisible in the output.
    flags = {"keep_order": True}
    auto = _matrix_cell(2, "auto", tmp_path, {**flags, "rpc_batch": "auto"})
    explicit = _matrix_cell(2, "auto", tmp_path, {**flags, "rpc_batch": 8})
    assert auto["rows"] == explicit["rows"]
    assert auto["joblog"] == explicit["joblog"]


def test_dispatchers_resolution_matrix():
    backend = LocalShellBackend()
    try:
        backend.prepare_run(Options(dispatchers=2))
        assert backend.dispatchers == 2
        assert backend.spawn_path == "posix"
        # popen inside the workers is still sharded dispatch.
        backend.prepare_run(Options(dispatchers=2, spawn_path="popen"))
        assert backend.dispatchers == 2
        assert backend.spawn_path == "popen"
        # auto = one in-process dispatcher (sharding is opt-in)...
        backend.prepare_run(Options(dispatchers="auto"))
        assert backend.dispatchers == 1
        # ...and unsupported combinations resolve back to one.
        for unsupported in (
            Options(dispatchers=2, workdir="."),
            Options(dispatchers=2, linebuffer=True),
            Options(dispatchers=2, pipe_mode=True),
        ):
            backend.prepare_run(unsupported)
            assert backend.dispatchers == 1
    finally:
        backend.close()
