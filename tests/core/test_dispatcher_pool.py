"""DispatcherPool unit tests: dispatch, concurrency, kill paths, lifecycle.

Shard-death failover lives in ``tests/chaos/test_dispatcher_death.py``;
this file covers the pool's steady-state contract.
"""

import os
import threading
import time

import pytest

from repro.core.backends.pool import DispatcherPool, pool_supported
from repro.errors import OptionsError
from repro.core.options import Options

pytestmark = pytest.mark.skipif(
    not pool_supported(), reason="sharded dispatch requires POSIX"
)


@pytest.fixture
def pool():
    pool = DispatcherPool(2)
    pool.start()
    yield pool
    pool.close()


def test_roundtrip_captures_everything(pool):
    reply = pool.run("echo out; echo err >&2; exit 5")
    assert reply.kind == "done"
    assert reply.returncode == 5
    assert reply.stdout == b"out\n"
    assert reply.stderr == b"err\n"
    assert reply.end >= reply.start > 0
    assert reply.spawn_dur >= 0
    assert reply.pid > 0
    assert reply.shard in (0, 1)


def test_concurrent_runs_spread_over_shards(pool):
    replies = []
    lock = threading.Lock()

    def go(i):
        r = pool.run(f"echo job-{i}")
        with lock:
            replies.append(r)

    threads = [threading.Thread(target=go, args=(i,)) for i in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(replies) == 12
    assert all(r.returncode == 0 for r in replies)
    assert sorted(r.stdout for r in replies) == sorted(
        f"job-{i}\n".encode() for i in range(12)
    )
    # Least-loaded selection under 12 concurrent jobs uses both shards.
    assert {r.shard for r in replies} == {0, 1}


def test_timeout_kills_job_group(pool):
    t0 = time.time()
    reply = pool.run("sleep 30", timeout=0.3)
    elapsed = time.time() - t0
    assert reply.timed_out
    assert reply.returncode == -15  # SIGTERM, Popen convention
    assert elapsed < 5  # killed, not waited out


def test_kill_all_terminates_in_flight_jobs(pool):
    replies = []

    def go():
        replies.append(pool.run("sleep 30"))

    threads = [threading.Thread(target=go) for _ in range(2)]
    for t in threads:
        t.start()
    deadline = time.time() + 5.0
    while sum(pool.shard_loads()) < 2 and time.time() < deadline:
        time.sleep(0.005)
    pool.kill_all()
    for t in threads:
        t.join(timeout=10)
    assert len(replies) == 2
    assert all(r.returncode == -15 for r in replies)


def test_cancelled_event_closes_dispatch_race(pool):
    cancelled = threading.Event()
    cancelled.set()  # cancellation arrived "during" dispatch
    t0 = time.time()
    reply = pool.run("sleep 30", cancelled=cancelled)
    assert time.time() - t0 < 5
    assert reply.returncode == -15


def test_worker_env_is_baked_in():
    pool = DispatcherPool(1, env={**os.environ, "POOL_PROOF": "42"})
    pool.start()
    try:
        reply = pool.run("echo $POOL_PROOF")
        assert reply.stdout == b"42\n"
    finally:
        pool.close()


def test_popen_worker_leg_same_results():
    pool = DispatcherPool(2, use_posix=False)
    pool.start()
    try:
        reply = pool.run("echo out; echo err >&2; exit 5")
        assert (reply.returncode, reply.stdout, reply.stderr) == (
            5, b"out\n", b"err\n",
        )
    finally:
        pool.close()


def test_close_is_idempotent_and_final():
    pool = DispatcherPool(2)
    pool.start()
    assert pool.run("echo x").returncode == 0
    pool.close()
    pool.close()  # second close is a no-op
    assert not pool.alive
    assert pool.run("echo nope").kind == "lost"


def test_shard_pids_are_live_processes(pool):
    assert len(pool.shard_pids) == 2
    for pid in pool.shard_pids:
        os.kill(pid, 0)  # raises if the worker is not alive


def test_invalid_shard_count_rejected():
    with pytest.raises(ValueError):
        DispatcherPool(0)


# ---------------------------------------------------- options resolution
def test_options_dispatchers_forms():
    assert Options().dispatchers == "auto"
    assert Options().effective_dispatchers() == 1
    assert Options(dispatchers=4).effective_dispatchers() == 4
    assert Options(dispatchers="4").effective_dispatchers() == 4
    for bad in (0, -1, "bogus", "0"):
        with pytest.raises(OptionsError):
            Options(dispatchers=bad)
