"""Precompiled-template render plan: fast paths must stay exact."""

import pytest

from repro.core.template import CommandTemplate
from repro.errors import TemplateError


def test_static_pipe_template_is_flagged_and_cached():
    t = CommandTemplate("wc -l", implicit_append=False)
    assert t.is_static
    a = t.render(("",), seq=1, slot=1)
    b = t.render(("ignored",), seq=99, slot=3)
    assert a == b == "wc -l"
    assert a is b  # the constant renders to one cached object


def test_templates_with_tokens_are_not_static():
    assert not CommandTemplate("echo {}").is_static
    assert not CommandTemplate("echo {#}", implicit_append=False).is_static
    assert not CommandTemplate("echo").is_static  # implicit {} appended


def test_percent_literal_survives_format_plan():
    t = CommandTemplate("convert {} -scale 50% out.png", implicit_append=True)
    assert t.render(("x.jpg",)) == "convert x.jpg -scale 50% out.png"
    t2 = CommandTemplate("printf %s {}", implicit_append=False)
    assert t2.render(("v",)) == "printf %s v"
    t3 = CommandTemplate("100%% {}", implicit_append=False)
    assert t3.render(("v",)) == "100%% v"


def test_fastpath_matches_expected_on_assorted_templates():
    cases = [
        ("echo {}", ("a b",), "echo a b"),
        ("cp {1} {2}", ("src.txt", "dst.txt"), "cp src.txt dst.txt"),
        (
            "gzip {.}.log {/} {//} {/.}",
            ("/var/log/app.log",),
            "gzip /var/log/app.log app.log /var/log app",
        ),
        ("run {#} on {%} with {}", ("x",), "run 7 on 3 with x"),
        ("{1/.}_{2}.png", ("/d/photo.jpg", "50"), "photo_50.png"),
    ]
    for text, args, expected in cases:
        t = CommandTemplate(text, implicit_append=False)
        assert t.render(args, seq=7, slot=3) == expected


def test_quote_only_quotes_input_tokens():
    t = CommandTemplate("echo {#} {%} {}")
    out = t.render(("a b; rm -rf /",), seq=2, slot=1, quote=True)
    assert out == "echo 2 1 'a b; rm -rf /'"


def test_multi_source_join_still_works():
    t = CommandTemplate("echo {}")
    assert t.render(("a", "b")) == "echo a b"


def test_argv_mode_precomputes_static_words():
    t = CommandTemplate(["cp", "-v", "{}", "{.}.bak"])
    argv = t.render_argv(("file.txt",))
    assert argv == ["cp", "-v", "file.txt", "file.bak"]
    # Static words come back as the same precomputed objects every render.
    argv2 = t.render_argv(("other.txt",))
    assert argv[0] is argv2[0] and argv[1] is argv2[1]


def test_argv_mode_implicit_append_tracks_tokens():
    t = CommandTemplate(["echo"])
    assert t.has_any_token  # the appended {} is visible to introspection
    assert t.render_argv(("x",)) == ["echo", "x"]


def test_positional_out_of_range_still_raises():
    t = CommandTemplate("echo {3}", implicit_append=False)
    with pytest.raises(TemplateError):
        t.render(("a", "b"))
