"""Option parsing and validation."""

import pytest

from repro.core.options import HaltSpec, Options
from repro.errors import OptionsError


# ---------------------------------------------------------------- HaltSpec
def test_halt_default_never():
    spec = HaltSpec.parse(None)
    assert spec.when == "never" and not spec.active


def test_halt_never_literal():
    assert not HaltSpec.parse("never").active


def test_halt_now_fail_1():
    spec = HaltSpec.parse("now,fail=1")
    assert spec.when == "now" and spec.what == "fail"
    assert spec.threshold == 1.0 and not spec.percent


def test_halt_soon_fail_percent():
    spec = HaltSpec.parse("soon,fail=30%")
    assert spec.when == "soon" and spec.percent
    assert spec.threshold == pytest.approx(0.3)


def test_halt_success_count():
    spec = HaltSpec.parse("now,success=3")
    assert spec.what == "success" and spec.threshold == 3.0


def test_halt_when_defaults_to_now():
    assert HaltSpec.parse("fail=2").when == "now"


@pytest.mark.parametrize("bad", ["garbage", "now,fail=0", "now,fail=-1",
                                 "now,fail=200%", "later,fail=1", "now,fail="])
def test_halt_bad_specs(bad):
    with pytest.raises(OptionsError):
        HaltSpec.parse(bad)


# ----------------------------------------------------------------- Options
def test_options_defaults_sane():
    opts = Options()
    assert opts.jobs >= 1
    assert not opts.keep_order
    assert opts.halt_spec.when == "never"


def test_options_negative_jobs_rejected():
    with pytest.raises(OptionsError):
        Options(jobs=-1)


def test_options_jobs_zero_resolution():
    opts = Options(jobs=0)
    assert opts.effective_jobs(10) == 10
    with pytest.raises(OptionsError):
        opts.effective_jobs(None)


def test_options_bad_timeout():
    with pytest.raises(OptionsError):
        Options(timeout=0)


def test_options_bad_delay():
    with pytest.raises(OptionsError):
        Options(delay=-0.1)


def test_options_bad_retries():
    with pytest.raises(OptionsError):
        Options(retries=-2)


def test_resume_requires_joblog():
    with pytest.raises(OptionsError):
        Options(resume=True)


def test_resume_failed_implies_resume():
    opts = Options(resume_failed=True, joblog="/tmp/x.log")
    assert opts.resume


def test_tagstring_implies_tag():
    opts = Options(tagstring="T{#}")
    assert opts.tag


def test_dispatchers_accepts_auto_and_counts():
    assert Options().dispatchers == "auto"
    assert Options(dispatchers=2).effective_dispatchers() == 2
    assert Options(dispatchers=" 8 ").effective_dispatchers() == 8
    # auto = one in-process dispatcher; sharding is opt-in.
    assert Options(dispatchers="auto").effective_dispatchers() == 1


def test_dispatchers_rejects_bad_forms():
    for bad in (0, -3, "none", "1.5", "-2"):
        with pytest.raises(OptionsError):
            Options(dispatchers=bad)


def test_rpc_batch_accepts_auto_and_counts():
    assert Options().rpc_batch == "auto"
    assert Options(rpc_batch=8).effective_rpc_batch() == 8
    assert Options(rpc_batch="16").effective_rpc_batch() == 16
    # auto scales with the in-flight window: frames larger than the slot
    # count can never fill, so small -j keeps frames small.
    assert Options(rpc_batch="auto", jobs=4).effective_rpc_batch() == 4
    assert Options(rpc_batch="auto", jobs=500).effective_rpc_batch() == 32


def test_rpc_batch_rejects_bad_forms():
    for bad in (0, -1, "none", "1.5"):
        with pytest.raises(OptionsError):
            Options(rpc_batch=bad)


def test_keep_results_accepts_auto_all_and_counts():
    assert Options().keep_results == "auto"
    assert Options().effective_keep_results() == 10_000
    assert Options(keep_results="all").effective_keep_results() is None
    assert Options(keep_results=0).effective_keep_results() == 0
    assert Options(keep_results="250").effective_keep_results() == 250


def test_keep_results_rejects_bad_forms():
    for bad in (-1, "some", "1.5"):
        with pytest.raises(OptionsError):
            Options(keep_results=bad)
