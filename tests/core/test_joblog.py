"""Joblog format compatibility and resume bookkeeping."""

from repro.core.job import JobResult, JobState
from repro.core.joblog import (
    JOBLOG_HEADER,
    JoblogWriter,
    completed_seqs,
    read_joblog,
)


def result(seq, code=0, cmd="echo x", stdout="x\n"):
    return JobResult(
        seq=seq, args=("x",), command=cmd, exit_code=code,
        stdout=stdout, start_time=100.0, end_time=101.5, slot=1,
        host="node1", state=JobState.SUCCEEDED if code == 0 else JobState.FAILED,
    )


def test_header_written(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path):
        pass
    assert open(path).readline().rstrip("\n") == JOBLOG_HEADER


def test_roundtrip(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(1))
        w.write(result(2, code=3))
    entries = read_joblog(path)
    assert [e.seq for e in entries] == [1, 2]
    assert entries[0].ok and not entries[1].ok
    assert entries[0].host == "node1"
    assert entries[0].runtime == 1.5
    assert entries[1].exitval == 3
    assert entries[0].command == "echo x"


def test_field_order_matches_gnu_parallel(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(7, cmd="sleep 1"))
    line = open(path).readlines()[1].rstrip("\n").split("\t")
    assert line[0] == "7"  # Seq
    assert line[1] == "node1"  # Host
    assert float(line[2]) == 100.0  # Starttime
    assert float(line[3]) == 1.5  # JobRuntime
    assert line[6] == "0"  # Exitval
    assert line[8] == "sleep 1"  # Command


def test_tabs_and_newlines_in_command_sanitized(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(1, cmd="echo\ta\nb"))
    entries = read_joblog(path)
    assert entries[0].command == "echo a b"


def test_append_mode_preserves_history(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(1))
    with JoblogWriter(path, append=True) as w:
        w.write(result(2))
    assert [e.seq for e in read_joblog(path)] == [1, 2]


def test_overwrite_mode_truncates(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(1))
    with JoblogWriter(path) as w:
        w.write(result(9))
    assert [e.seq for e in read_joblog(path)] == [9]


def test_read_missing_file():
    assert read_joblog("/nonexistent/joblog") == []


def test_read_skips_malformed_lines(tmp_path):
    path = tmp_path / "log"
    path.write_text(JOBLOG_HEADER + "\n1\tbad\nnot\ta\tvalid\tline\n")
    assert read_joblog(str(path)) == []


def test_completed_seqs_resume_skips_all_attempted(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path) as w:
        w.write(result(1))
        w.write(result(2, code=1))
    # plain --resume: skip both success and failure
    assert completed_seqs(path, include_failed=True) == {1, 2}
    # --resume-failed: skip only successes
    assert completed_seqs(path, include_failed=False) == {1}
