"""Buffered ``JoblogWriter`` flush batching (torn-tail-safe)."""

import time

from repro.core.job import JobResult
from repro.core.joblog import JOBLOG_HEADER, JoblogWriter, read_joblog


def _result(seq):
    return JobResult(seq=seq, args=(str(seq),), command=f"echo {seq}",
                     exit_code=0, start_time=1.0, end_time=2.0)


def test_records_buffer_until_batch_size(tmp_path):
    path = str(tmp_path / "log")
    w = JoblogWriter(path, flush_every=100, flush_interval=3600.0)
    try:
        for seq in range(1, 6):
            w.write(_result(seq))
        # Below both thresholds: nothing past the header reaches the file.
        with open(path) as fh:
            assert fh.read().strip() == JOBLOG_HEADER
        w.flush()
        assert [e.seq for e in read_joblog(path)] == [1, 2, 3, 4, 5]
    finally:
        w.close()


def test_batch_size_triggers_flush(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path, flush_every=3, flush_interval=3600.0) as w:
        for seq in range(1, 4):
            w.write(_result(seq))
        assert [e.seq for e in read_joblog(path)] == [1, 2, 3]


def test_time_interval_triggers_flush(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path, flush_every=10**6, flush_interval=0.05) as w:
        w.write(_result(1))
        time.sleep(0.06)
        w.write(_result(2))  # interval elapsed: both records flushed
        assert [e.seq for e in read_joblog(path)] == [1, 2]


def test_close_flushes_everything(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path, flush_every=10**6, flush_interval=3600.0) as w:
        for seq in range(1, 8):
            w.write(_result(seq))
    assert [e.seq for e in read_joblog(path)] == list(range(1, 8))


def test_flush_every_one_is_unbuffered(tmp_path):
    path = str(tmp_path / "log")
    w = JoblogWriter(path, flush_every=1)
    try:
        w.write(_result(1))
        assert [e.seq for e in read_joblog(path)] == [1]
    finally:
        w.close()


def test_append_after_buffered_run_seals_torn_tail(tmp_path):
    path = str(tmp_path / "log")
    with JoblogWriter(path, flush_every=1) as w:
        w.write(_result(1))
    # Simulate a crash mid-write: a flush tore the final record.
    with open(path, "a") as fh:
        fh.write("2\tlocal\t1.0")  # no newline, half the columns
    with JoblogWriter(path, append=True, flush_every=2) as w:
        w.write(_result(3))
    entries = read_joblog(path)
    assert [e.seq for e in entries] == [1, 3]  # torn record skipped, sealed
