"""StreamingMedian must match ``statistics.median`` on any stream."""

import random
import statistics

import pytest

from repro.core.runstats import StreamingMedian


def test_empty_stream_raises():
    with pytest.raises(ValueError):
        StreamingMedian().median()
    assert len(StreamingMedian()) == 0
    assert not StreamingMedian()


def test_single_and_pair():
    m = StreamingMedian()
    m.push(3.0)
    assert m.median() == 3.0
    m.push(5.0)
    assert m.median() == 4.0


def test_matches_statistics_median_prefixwise():
    rng = random.Random(42)
    values = [rng.uniform(0, 100) for _ in range(500)]
    m = StreamingMedian()
    for i, v in enumerate(values, start=1):
        m.push(v)
        assert len(m) == i
        assert m.median() == pytest.approx(statistics.median(values[:i]))


def test_sorted_and_reversed_streams():
    for stream in (list(range(100)), list(reversed(range(100)))):
        m = StreamingMedian()
        for i, v in enumerate(stream, start=1):
            m.push(float(v))
        assert m.median() == pytest.approx(statistics.median(stream))


def test_duplicates():
    m = StreamingMedian()
    for _ in range(10):
        m.push(7.0)
    assert m.median() == 7.0
