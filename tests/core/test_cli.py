"""The pyparallel command-line front end."""

import io
import sys

import pytest

from repro.core.cli import main, split_command_line


def run_cli(argv, stdin_text=""):
    """Run main() capturing stdout; returns (exit_code, stdout)."""
    old_out, old_in = sys.stdout, sys.stdin
    sys.stdout = io.StringIO()
    sys.stdin = io.StringIO(stdin_text)
    try:
        code = main(argv)
        return code, sys.stdout.getvalue()
    finally:
        sys.stdout, sys.stdin = old_out, old_in


# -------------------------------------------------------------- splitting
def test_split_no_separator():
    head, sources = split_command_line(["-j2", "echo", "{}"])
    assert head == ["-j2", "echo", "{}"]
    assert sources == []


def test_split_single_source():
    head, sources = split_command_line(["echo", "{}", ":::", "a", "b"])
    assert head == ["echo", "{}"]
    assert sources == [(":::", ["a", "b"])]


def test_split_multiple_sources():
    head, sources = split_command_line(
        ["cmd", ":::", "a", "::::", "f.txt", ":::+", "x", "y"]
    )
    assert head == ["cmd"]
    assert [s for s, _ in sources] == [":::", "::::", ":::+"]


# ------------------------------------------------------------------ runs
def test_basic_echo():
    code, out = run_cli(["-j2", "-k", "echo", "{}", ":::", "a", "b", "c"])
    assert code == 0
    assert out.splitlines() == ["a", "b", "c"]


def test_two_sources_cartesian():
    code, out = run_cli(["-k", "echo", "{1}-{2}", ":::", "a", "b", ":::", "1", "2"])
    assert code == 0
    assert out.splitlines() == ["a-1", "a-2", "b-1", "b-2"]


def test_linked_sources():
    code, out = run_cli(
        ["-k", "--link", "echo", "{1}{2}", ":::", "a", "b", ":::", "1", "2"]
    )
    assert code == 0
    assert out.splitlines() == ["a1", "b2"]


def test_stdin_input():
    code, out = run_cli(["-k", "echo", "got", "{}"], stdin_text="x\ny\n")
    assert code == 0
    assert out.splitlines() == ["got x", "got y"]


def test_arg_file(tmp_path):
    f = tmp_path / "args.txt"
    f.write_text("p\nq\n")
    code, out = run_cli(["-k", "echo", "{}", "::::", str(f)])
    assert code == 0
    assert out.splitlines() == ["p", "q"]


def test_dash_a_arg_file(tmp_path):
    f = tmp_path / "args.txt"
    f.write_text("m\nn\n")
    code, out = run_cli(["-k", "-a", str(f), "echo", "{}"])
    assert code == 0
    assert out.splitlines() == ["m", "n"]


def test_exit_code_counts_failures():
    code, _ = run_cli(["exit", "{}", ":::", "0", "1", "1"])
    assert code == 2


def test_dry_run_prints_commands():
    code, out = run_cli(["--dry-run", "-k", "rm", "-rf", "{}", ":::", "x"])
    assert code == 0
    assert out.strip() == "rm -rf x"


def test_tag_prefixes_output():
    code, out = run_cli(["--tag", "-k", "echo", "hello", "# {}", ":::", "T1"])
    assert code == 0
    assert out.splitlines() == ["T1\thello"]


def test_joblog_and_resume(tmp_path):
    log = str(tmp_path / "jl")
    code, _ = run_cli(["--joblog", log, "echo", "{}", ":::", "a", "b"])
    assert code == 0
    assert len(open(log).read().splitlines()) == 3
    # resume skips both
    code, out = run_cli(
        ["--joblog", log, "--resume", "-k", "echo", "{}", ":::", "a", "b"]
    )
    assert code == 0
    assert out == ""


def test_no_command_errors():
    with pytest.raises(SystemExit):
        run_cli([":::", "a"])


def test_bad_halt_spec_reports_error(capsys):
    code, _ = run_cli(["--halt", "bogus", "echo", "{}", ":::", "a"])
    assert code == 255


def test_seq_and_slot_tokens():
    code, out = run_cli(["-j1", "-k", "echo", "{#}/{%}", ":::", "a", "b"])
    assert code == 0
    assert out.splitlines() == ["1/1", "2/1"]


def test_pipe_mode_cli():
    code, out = run_cli(["--pipe", "-N", "2", "wc -l"], stdin_text="1\n2\n3\n4\n5\n")
    assert code == 0
    assert sum(int(x) for x in out.split()) == 5


def test_jobs_percentage_form_cli():
    code, out = run_cli(["-j", "100%", "-k", "echo", "{}", ":::", "a"])
    assert code == 0 and out.strip() == "a"


def test_colsep_cli():
    code, out = run_cli(["--colsep", ",", "-k", "echo", "{2}/{1}", ":::", "a,b"])
    assert code == 0 and out.strip() == "b/a"


def test_max_args_cli():
    code, out = run_cli(["-n", "2", "-k", "echo", "{}", ":::", "a", "b", "c"])
    assert code == 0
    assert out.splitlines() == ["a b", "c"]


def test_quote_cli():
    code, out = run_cli(["-q", "-k", "echo", "{}", ":::", "a;b"])
    assert code == 0 and out.strip() == "a;b"


def test_retry_delay_flag_parses_and_runs():
    code, out = run_cli(["--retries", "2", "--retry-delay", "0.01", "-k",
                         "echo", "{}", ":::", "a", "b"])
    assert code == 0
    assert out.splitlines() == ["a", "b"]


def test_fault_plan_flag_injects_crashes(tmp_path):
    from repro.faults import FaultPlan, FaultSpec

    plan = tmp_path / "plan.json"
    plan.write_text(FaultPlan(by_seq={1: FaultSpec("crash")}).to_json())
    code, out = run_cli(["--fault-plan", str(plan), "--retries", "2", "-k",
                         "echo", "{}", ":::", "a", "b"])
    assert code == 1  # seq 1 crashes every attempt; exit code counts failures
    assert out.splitlines() == ["b"]


def test_fault_plan_inline_json_with_retries_converges(tmp_path):
    from repro.faults import FaultPlan, FaultSpec

    inline = FaultPlan(by_seq={2: FaultSpec("flaky", times=1)}).to_json()
    code, out = run_cli(["--fault-plan", inline, "--retries", "2", "-k",
                         "echo", "{}", ":::", "a", "b", "c"])
    assert code == 0
    assert out.splitlines() == ["a", "b", "c"]


def test_rpc_batch_flag_parses_and_runs():
    code, out = run_cli(
        ["-k", "--rpc-batch", "8", "echo", "{}", ":::", "a", "b", "c"]
    )
    assert code == 0
    assert out.splitlines() == ["a", "b", "c"]


def test_keep_results_flag_parses_and_runs():
    code, out = run_cli(
        ["-k", "--keep-results", "2", "echo", "{}", ":::", "a", "b", "c"]
    )
    assert code == 0
    assert out.splitlines() == ["a", "b", "c"]  # output plane unaffected


def test_keep_results_all_literal():
    code, out = run_cli(
        ["-k", "--keep-results", "all", "echo", "{}", ":::", "x"]
    )
    assert code == 0
    assert out.splitlines() == ["x"]


def test_rpc_batch_bad_value_reports_error(capsys):
    code = main(["--rpc-batch", "zero", "echo", "{}", ":::", "a"])
    assert code != 0
