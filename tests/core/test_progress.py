"""Progress reporting (--bar analog)."""

import io

import pytest

from repro import Parallel
from repro.core.progress import Progress, ProgressBar


# ---------------------------------------------------------------- Progress
def test_fraction_and_eta():
    p = Progress(done=25, failed=0, total=100, elapsed=5.0)
    assert p.fraction == 0.25
    assert p.rate == 5.0
    assert p.eta_s == pytest.approx(15.0)


def test_unknown_total():
    p = Progress(done=10, failed=1, total=None, elapsed=2.0)
    assert p.fraction is None and p.eta_s is None
    assert p.rate == 5.0


def test_zero_done_no_eta():
    assert Progress(0, 0, 10, 1.0).eta_s is None


def test_fraction_capped_at_one():
    assert Progress(15, 0, 10, 1.0).fraction == 1.0


# -------------------------------------------------------------- ProgressBar
def test_bar_format_contents():
    bar = ProgressBar(io.StringIO(), width=10)
    line = bar.format(Progress(done=5, failed=2, total=10, elapsed=2.0))
    assert "50%" in line
    assert "5/10" in line
    assert "2 failed" in line
    assert "ETA" in line
    assert line.startswith("[#####-----]")


def test_bar_format_unbounded():
    bar = ProgressBar(io.StringIO())
    line = bar.format(Progress(done=7, failed=0, total=None, elapsed=1.0))
    assert "7 done" in line


def test_bar_throttles_renders():
    out = io.StringIO()
    bar = ProgressBar(out, min_interval=3600)  # effectively one render
    for i in range(1, 50):
        bar(Progress(done=i, failed=0, total=100, elapsed=0.001 * i))
    assert bar.renders == 1


def test_bar_always_renders_completion():
    out = io.StringIO()
    bar = ProgressBar(out, min_interval=3600)
    bar(Progress(done=1, failed=0, total=2, elapsed=0.1))
    bar(Progress(done=2, failed=0, total=2, elapsed=0.2))
    assert bar.renders == 2
    assert out.getvalue().endswith("\n")


# ------------------------------------------------------------- integration
def test_engine_invokes_progress_for_every_completion():
    snapshots = []
    p = Parallel(lambda x: x, jobs=2, progress=snapshots.append)
    p.run(list("abcde"))
    assert len(snapshots) == 5
    assert snapshots[-1].done == 5
    assert all(s.total == 5 for s in snapshots)
    assert [s.done for s in snapshots] == sorted(s.done for s in snapshots)


def test_engine_progress_counts_failures():
    snapshots = []
    Parallel("exit {}", jobs=1, progress=snapshots.append).run(["0", "1"])
    assert snapshots[-1].failed == 1


def test_engine_progress_with_bar_smoke():
    out = io.StringIO()
    summary = Parallel("true # {}", jobs=4,
                       progress=ProgressBar(out, min_interval=0)).run(range(8))
    assert summary.ok
    assert "8/8" in out.getvalue()


def test_progress_total_with_max_args_short_final_group():
    # 7 inputs packed -n 3 → jobs of 3+3+1: the total must be ceil(7/3)=3,
    # not floor (3 jobs finishing against a total of 2 pushes --eta/--bar
    # past 100%).
    snapshots = []
    p = Parallel("true # {}", jobs=2, max_args=3, progress=snapshots.append)
    summary = p.run(range(7))
    assert summary.ok
    assert len(snapshots) == 3
    assert all(s.total == 3 for s in snapshots)
    assert snapshots[-1].fraction == 1.0
