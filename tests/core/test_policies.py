"""Halt tracking and retry decisions."""

from repro.core.job import Job, JobState
from repro.core.options import HaltSpec
from repro.core.policies import HaltTracker, should_retry


def make_tracker(spec, total=None):
    return HaltTracker(HaltSpec.parse(spec), total_jobs=total)


def test_never_policy_never_triggers():
    t = make_tracker("never")
    for _ in range(100):
        assert not t.record(JobState.FAILED)
    assert not t.triggered


def test_now_fail_1_triggers_on_first_failure():
    t = make_tracker("now,fail=1")
    assert not t.record(JobState.SUCCEEDED)
    assert t.record(JobState.FAILED)
    assert t.triggered and t.kill_running
    assert "fail" in t.reason


def test_soon_fail_2_waits_for_second():
    t = make_tracker("soon,fail=2")
    assert not t.record(JobState.FAILED)
    assert t.record(JobState.FAILED)
    assert t.triggered and not t.kill_running


def test_percent_threshold_uses_total():
    t = make_tracker("now,fail=50%", total=4)
    assert not t.record(JobState.FAILED)
    assert t.record(JobState.FAILED)  # 2/4 = 50%


def test_percent_without_total_never_triggers():
    t = make_tracker("now,fail=50%", total=None)
    for _ in range(10):
        assert not t.record(JobState.FAILED)


def test_success_policy():
    t = make_tracker("now,success=1")
    assert not t.record(JobState.FAILED)
    assert t.record(JobState.SUCCEEDED)


def test_done_policy_counts_both():
    t = make_tracker("now,done=3")
    t.record(JobState.SUCCEEDED)
    t.record(JobState.FAILED)
    assert t.record(JobState.SUCCEEDED)


def test_timed_out_counts_as_failure():
    t = make_tracker("now,fail=1")
    assert t.record(JobState.TIMED_OUT)


def test_should_retry_success_never():
    job = Job(seq=1, args=("a",), attempt=1)
    assert not should_retry(job, 0, retries=5)


def test_should_retry_disabled_by_default():
    job = Job(seq=1, args=("a",), attempt=1)
    assert not should_retry(job, 1, retries=0)


def test_should_retry_total_attempts_semantics():
    """--retries 3 means at most 3 total runs (GNU Parallel semantics)."""
    job = Job(seq=1, args=("a",), attempt=1)
    assert should_retry(job, 1, retries=3)
    job.attempt = 2
    assert should_retry(job, 1, retries=3)
    job.attempt = 3
    assert not should_retry(job, 1, retries=3)


def test_retries_one_means_run_once():
    job = Job(seq=1, args=("a",), attempt=1)
    assert not should_retry(job, 1, retries=1)
