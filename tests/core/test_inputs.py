"""Input-source composition semantics."""

import threading

import pytest

from repro.core.inputs import (
    QueueSource,
    combine,
    from_file,
    from_items,
    link,
    normalize,
    shuffled,
)
from repro.errors import InputSourceError


def test_from_items_stringifies():
    assert list(from_items([1, "a", 2.5])) == [("1",), ("a",), ("2.5",)]


def test_from_file_reads_lines(tmp_path):
    p = tmp_path / "inputs.txt"
    p.write_text("alpha\nbeta\n\n  gamma  \n")
    assert list(from_file(p)) == [("alpha",), ("beta",), ("gamma",)]


def test_from_file_no_strip(tmp_path):
    p = tmp_path / "inputs.txt"
    p.write_text("  padded  \n")
    assert list(from_file(p, strip=False)) == [("  padded  ",)]


def test_combine_single_source():
    assert list(combine([["a", "b"]])) == [("a",), ("b",)]


def test_combine_cartesian_last_varies_fastest():
    got = list(combine([["a", "b"], ["1", "2"]]))
    assert got == [("a", "1"), ("a", "2"), ("b", "1"), ("b", "2")]


def test_combine_three_sources():
    got = list(combine([["a"], ["x", "y"], ["1", "2"]]))
    assert got == [("a", "x", "1"), ("a", "x", "2"), ("a", "y", "1"), ("a", "y", "2")]


def test_combine_empty_later_source_yields_nothing():
    assert list(combine([["a", "b"], []])) == []


def test_combine_streams_first_source():
    def unbounded():
        i = 0
        while True:
            yield i
            i += 1

    gen = combine([unbounded(), ["x", "y"]])
    first_four = [next(gen) for _ in range(4)]
    assert first_four == [("0", "x"), ("0", "y"), ("1", "x"), ("1", "y")]


def test_combine_requires_sources():
    with pytest.raises(InputSourceError):
        list(combine([]))


def test_link_zips():
    got = list(link([["a", "b"], ["1", "2"]]))
    assert got == [("a", "1"), ("b", "2")]


def test_link_shorter_source_wraps():
    got = list(link([["a", "b", "c"], ["1", "2"]]))
    assert got == [("a", "1"), ("b", "2"), ("c", "1")]


def test_link_first_shorter_wraps_too():
    got = list(link([["a"], ["1", "2", "3"]]))
    assert got == [("a", "1"), ("a", "2"), ("a", "3")]


def test_link_empty_source_is_error():
    with pytest.raises(InputSourceError):
        list(link([["a"], []]))


def test_shuffled_deterministic():
    items = list(range(50))
    a = list(shuffled(items, seed=7))
    b = list(shuffled(items, seed=7))
    assert a == b
    assert sorted(int(g[0]) for g in a) == items
    assert a != [(str(i),) for i in items]  # actually shuffled


def test_shuffled_default_seed_stable():
    a = list(shuffled(range(20)))
    b = list(shuffled(range(20)))
    assert a == b


def test_normalize_passes_tuples_through():
    assert list(normalize([("a", "b"), "c", 3])) == [("a", "b"), ("c",), ("3",)]


# ------------------------------------------------------------- QueueSource
def test_queue_source_streams_until_closed():
    q = QueueSource()
    got = []

    def consumer():
        for group in q:
            got.append(group)

    t = threading.Thread(target=consumer)
    t.start()
    q.put("one")
    q.put("two")
    q.close()
    t.join(timeout=5)
    assert not t.is_alive()
    assert got == [("one",), ("two",)]


def test_queue_source_put_after_close_rejected():
    q = QueueSource()
    q.close()
    with pytest.raises(InputSourceError):
        q.put("late")


def test_queue_source_close_idempotent():
    q = QueueSource()
    q.close()
    q.close()
    assert q.closed
    assert list(q) == []


# --------------------------------------------------------------- ceil_div
def test_ceil_div_exact_and_remainder():
    from repro.core.inputs import ceil_div

    assert ceil_div(6, 3) == 2
    assert ceil_div(7, 3) == 3  # short final group still counts as a job
    assert ceil_div(1, 5) == 1
    assert ceil_div(0, 4) == 0


def test_ceil_div_matches_float_ceil():
    import math

    from repro.core.inputs import ceil_div

    for n in range(0, 50):
        for d in range(1, 9):
            assert ceil_div(n, d) == math.ceil(n / d)
