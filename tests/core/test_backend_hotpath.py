"""Hot-path backend changes: session isolation, env caching, throttling."""

import os

import pytest

from repro import Options, Parallel
from repro.core.backends.local import LocalShellBackend
from repro.core.scheduler import _MemAvailableProbe


# ----------------------------------------------------- start_new_session
@pytest.mark.skipif(os.name != "posix", reason="POSIX sessions only")
def test_jobs_run_in_their_own_session():
    """Each job runs in its own session (and process group) — the property
    kill-by-group and --halt now depend on, now via start_new_session
    instead of a preexec_fn."""
    our_sid = os.getsid(0)
    summary = Parallel(
        'python3 -c "import os; print(os.getsid(0))" # {}',
        jobs=1,
    ).run(["x"])
    assert summary.ok
    job_sid = int(summary.results[0].stdout.strip())
    assert job_sid != our_sid  # detached from the dispatcher's session


@pytest.mark.skipif(not hasattr(os, "setpriority"), reason="needs setpriority")
def test_nice_applied_without_preexec_fn():
    summary = Parallel(
        'python3 -c "import os,time; time.sleep(0.3); print(os.nice(0))" # {}',
        jobs=1, nice=5,
    ).run(["x"])
    assert summary.ok
    assert summary.results[0].stdout.strip() == "5"


# --------------------------------------------------------- env per run
def test_env_reaches_jobs():
    summary = Parallel('echo "$REPRO_TEST_VAR-{}"', jobs=2,
                       env={"REPRO_TEST_VAR": "v1"}).run(["a", "b"])
    assert summary.ok
    assert sorted(r.stdout.strip() for r in summary.results) == ["v1-a", "v1-b"]


def test_merged_env_is_computed_once_per_run():
    b = LocalShellBackend()
    opts = Options(jobs=1, env={"K": "V"})
    b.prepare_run(opts)
    e1 = b._env_for(opts)
    e2 = b._env_for(opts)
    assert e1 is e2  # cached object, not a fresh os.environ copy per job
    assert e1["K"] == "V"
    # A different Options object (a new run) rebuilds the merge.
    opts2 = Options(jobs=1, env={"K": "W"})
    e3 = b._env_for(opts2)
    assert e3 is not e1 and e3["K"] == "W"


def test_empty_env_inherits_without_copy():
    b = LocalShellBackend()
    opts = Options(jobs=1)
    b.prepare_run(opts)
    assert b._env_for(opts) is None  # None = inherit, zero copying


def test_env_composes_with_fault_wrapper():
    from repro.faults import FaultPlan, FaultyBackend

    backend = FaultyBackend(LocalShellBackend(), FaultPlan())
    summary = Parallel('echo "$REPRO_FW-{}"', jobs=1, backend=backend,
                       env={"REPRO_FW": "wrapped"}).run(["z"])
    assert summary.ok
    assert summary.results[0].stdout.strip() == "wrapped-z"


# ------------------------------------------------------- memfree probe
@pytest.mark.skipif(not os.path.exists("/proc/meminfo"), reason="needs procfs")
def test_mem_probe_reads_and_caches_fd():
    probe = _MemAvailableProbe()
    try:
        first = probe()
        assert 0 < first < 2**63
        fh = probe._fh
        assert fh is not None
        second = probe()
        assert probe._fh is fh  # same cached handle, rewound not reopened
        assert 0 < second < 2**63
    finally:
        probe.close()
    assert probe._fh is None


def test_mem_probe_unreadable_path_never_throttles():
    probe = _MemAvailableProbe(path="/nonexistent/meminfo")
    assert probe() == 2**63
    probe.close()


def test_memfree_throttle_uses_backoff_and_completes():
    calls = [0]

    def probe():
        calls[0] += 1
        return 10 if calls[0] < 3 else 10**12

    opts = Options(jobs=1, memfree=1024, memfree_probe=probe,
                   throttle_poll_max=0.02)
    summary = Parallel("echo {}", options=opts).run(["a", "b"])
    assert summary.ok
    assert calls[0] >= 3
