"""The multiprocessing backend (CPU-bound callables without the GIL)."""

import os

import pytest

from repro import Parallel
from repro.core.backends import MultiprocessBackend


def square(x):
    return int(x) ** 2


def whoami(_x):
    return os.getpid()


def boom(x):
    raise ValueError(f"bad {x}")


def test_map_through_processes():
    p = Parallel(square, jobs=2, backend="processes")
    assert p.map([1, 2, 3, 4]) == [1, 4, 9, 16]


def test_jobs_actually_run_in_other_processes():
    p = Parallel(whoami, jobs=2, backend="processes")
    pids = set(p.map(range(4)))
    assert os.getpid() not in pids


def test_exception_becomes_failure_with_traceback():
    summary = Parallel(boom, jobs=1, backend="processes").run(["z"])
    assert summary.n_failed == 1
    assert "ValueError" in summary.results[0].stderr


def test_backend_requires_callable():
    with pytest.raises(TypeError):
        MultiprocessBackend("not callable")


def test_backend_reusable_across_runs():
    p = Parallel(square, jobs=2, backend="processes")
    assert p.map([2]) == [4]
    assert p.map([3]) == [9]


def test_results_ordered_and_values_preserved():
    p = Parallel(square, jobs=4, backend="processes")
    summary = p.run(list(range(10)))
    assert summary.ok
    assert [r.value for r in summary.sorted_results()] == [i * i for i in range(10)]
