"""--results directory layout."""

import os

from repro.core.job import JobResult, JobState
from repro.core.results import ResultsWriter, result_dir_for


def result(seq, args, stdout="out\n", stderr=""):
    return JobResult(
        seq=seq, args=args, command="c", exit_code=0, stdout=stdout,
        stderr=stderr, start_time=0, end_time=1, slot=1,
        state=JobState.SUCCEEDED,
    )


def test_layout_single_source(tmp_path):
    root = str(tmp_path / "res")
    w = ResultsWriter(root)
    d = w.write(result(1, ("alpha",)))
    assert d == os.path.join(root, "1", "alpha")
    assert open(os.path.join(d, "stdout")).read() == "out\n"
    assert open(os.path.join(d, "seq")).read() == "1\n"


def test_layout_two_sources_nested(tmp_path):
    root = str(tmp_path / "res")
    w = ResultsWriter(root)
    d = w.write(result(1, ("a", "b")))
    assert d == os.path.join(root, "1", "a", "2", "b")


def test_stderr_captured(tmp_path):
    root = str(tmp_path / "res")
    w = ResultsWriter(root)
    d = w.write(result(1, ("x",), stderr="oops\n"))
    assert open(os.path.join(d, "stderr")).read() == "oops\n"


def test_unsafe_values_sanitized(tmp_path):
    root = str(tmp_path / "res")
    assert result_dir_for(root, ("a/b",)) == os.path.join(root, "1", "a_b")
    assert result_dir_for(root, ("..",)) == os.path.join(root, "1", "_.._")
    w = ResultsWriter(root)
    d = w.write(result(1, ("path/with/slashes",)))
    assert os.path.isdir(d)


def test_multiple_jobs_coexist(tmp_path):
    root = str(tmp_path / "res")
    w = ResultsWriter(root)
    d1 = w.write(result(1, ("a",)))
    d2 = w.write(result(2, ("b",)))
    assert d1 != d2 and os.path.isdir(d1) and os.path.isdir(d2)
