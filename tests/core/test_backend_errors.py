"""Backend error paths: spawn failures, cancellation, backend crashes."""

import pytest

from repro import Options, Parallel
from repro.core.backends import Backend, CallableBackend, LocalShellBackend
from repro.core.job import Job, JobResult, JobState


def test_spawn_failure_is_result_not_exception():
    backend = LocalShellBackend(shell="/no/such/shell")
    summary = Parallel("echo {}", jobs=1, backend=backend).run(["a"])
    assert summary.n_failed == 1
    r = summary.results[0]
    assert r.exit_code == 127
    assert "spawn failed" in r.stderr


def test_cancelled_local_backend_refuses_new_jobs():
    backend = LocalShellBackend()
    backend.cancel_all()
    job = Job(seq=1, args=("x",), command="echo x", attempt=1)
    result = backend.run_job(job, 1, Options(jobs=1))
    assert result.state == JobState.KILLED


def test_cancelled_callable_backend_refuses_new_jobs():
    backend = CallableBackend(lambda x: x)
    backend.cancel_all()
    job = Job(seq=1, args=("x",), command="", attempt=1)
    result = backend.run_job(job, 1, Options(jobs=1))
    assert result.state == JobState.KILLED


def test_callable_backend_rejects_non_callable():
    with pytest.raises(TypeError):
        CallableBackend("not callable")


class ExplodingBackend(Backend):
    """A buggy backend whose run_job raises (engine must not crash)."""

    host = "boom"

    def run_job(self, job, slot, options, timeout=None):
        raise RuntimeError("backend exploded")


def test_backend_exception_becomes_failed_result():
    summary = Parallel("echo {}", jobs=2, backend=ExplodingBackend()).run(["a", "b"])
    assert summary.n_failed == 2
    for r in summary.results:
        assert r.exit_code == 126
        assert "backend error" in r.stderr
        assert r.host == "boom"


def test_local_backend_host_is_machine_hostname():
    import socket

    summary = Parallel("echo {}", jobs=1).run(["x"])
    assert summary.results[0].host == socket.gethostname()


def test_callable_timeout_abandons_runaway_thread():
    import time

    def runaway(_x):
        time.sleep(30)

    backend = CallableBackend(runaway)
    job = Job(seq=1, args=("x",), command="", attempt=1)
    start = time.time()
    result = backend.run_job(job, 1, Options(jobs=1), timeout=0.2)
    assert time.time() - start < 5
    assert result.state == JobState.TIMED_OUT
