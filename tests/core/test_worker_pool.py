"""Persistent dispatch-pool invariants.

The engine must never create a thread per job (the pre-pool design), the
pool must stay within ``jobs_cap``, and every worker must be gone when
``run`` returns — all while the semantics the pool replaced thread-per-job
under (keep-order, retries, halt) stay intact.
"""

import threading
import time

import pytest

from repro import Parallel
from repro.core.options import Options
from repro.core.scheduler import _RetryQueue, _WorkerPool
from repro.core.job import Job


def _pool_threads():
    return [t for t in threading.enumerate() if t.name.startswith("repro-worker")]


# ---------------------------------------------------------- thread counts
def test_no_leaked_workers_after_run():
    assert _pool_threads() == []
    summary = Parallel(lambda x: None, jobs=8).run(range(64))
    assert summary.n_succeeded == 64
    assert _pool_threads() == []


def test_pool_never_exceeds_jobs_cap():
    cap = 3
    peak = [0]
    lock = threading.Lock()
    # Every job rendezvouses with cap-1 peers before finishing: the pool
    # is provably at full occupancy at each barrier trip — no sleeps, and
    # a scheduler that stopped reaching cap concurrency breaks the
    # barrier (bounded timeout) instead of passing vacuously.
    barrier = threading.Barrier(cap)

    def work(_x):
        barrier.wait(timeout=10.0)
        with lock:
            peak[0] = max(peak[0], len(_pool_threads()))

    summary = Parallel(work, jobs=cap).run(range(30))
    assert summary.n_succeeded == 30
    assert peak[0] == cap


def test_no_per_job_thread_creation(monkeypatch):
    """A 100-job run spawns at most jobs_cap threads, not one per job."""
    spawned = []
    real_thread = threading.Thread

    class CountingThread(real_thread):
        def __init__(self, *args, **kwargs):
            spawned.append(kwargs.get("name") or "")
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(threading, "Thread", CountingThread)
    summary = Parallel(lambda x: None, jobs=4).run(range(100))
    assert summary.n_succeeded == 100
    assert len(spawned) <= 4


def test_prestart_spawns_full_pool(monkeypatch):
    spawned = []
    real_thread = threading.Thread

    class CountingThread(real_thread):
        def __init__(self, *args, **kwargs):
            spawned.append(kwargs.get("name") or "")
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(threading, "Thread", CountingThread)
    summary = Parallel(lambda x: None, jobs=4, pool_prestart=True).run(range(8))
    assert summary.n_succeeded == 8
    assert len([n for n in spawned if n.startswith("repro-worker")]) == 4
    assert _pool_threads() == []


def test_lazy_pool_grows_only_with_concurrency():
    """jobs=8 with a single-item input needs exactly one worker."""
    sizes = []

    def work(_x):
        sizes.append(len(_pool_threads()))

    summary = Parallel(work, jobs=8).run(["only"])
    assert summary.n_succeeded == 1
    assert sizes == [1]


# ------------------------------------------------- semantics under the pool
def test_keep_order_with_retries_under_pool():
    attempts = {}
    lock = threading.Lock()

    def work(x):
        with lock:
            attempts[x] = attempts.get(x, 0) + 1
            if x in ("b", "d") and attempts[x] == 1:
                raise RuntimeError("flaky first attempt")
        return x

    emitted = []
    p = Parallel(work, jobs=4, keep_order=True, retries=2,
                 output=lambda r, t: emitted.append(t))
    summary = p.run(list("abcdef"))
    assert summary.ok
    assert emitted == list("abcdef")
    assert attempts["b"] == 2 and attempts["d"] == 2


def test_halt_now_under_pool_kills_and_reports():
    summary = Parallel(
        "if [ {} = bad ]; then exit 1; else sleep 5; fi",
        jobs=4, halt="now,fail=1", halt_grace=2.0,
    ).run(["bad", "a", "b", "c", "d", "e"])
    assert summary.halted
    assert summary.n_failed >= 1
    assert _pool_threads() == []  # pool shut down despite the kill path


def test_retry_starvation_structurally_impossible():
    """Slot release happens only after the completion (and its retry
    re-queue) is processed, so a failed job's retry is dispatched ahead of
    the fresh-input stream — the PR 1 fairness workaround, now structural.
    """
    order = []
    lock = threading.Lock()
    attempts = {}

    def work(x):
        with lock:
            order.append(x)
            attempts[x] = attempts.get(x, 0) + 1
            if x == "0" and attempts[x] == 1:
                raise RuntimeError("fail once")

    summary = Parallel(work, jobs=1, retries=2).run(range(30))
    assert summary.ok
    # The retry of 0 lands immediately after the one prefetched item.
    assert order.index("0", 1) <= 2


# ----------------------------------------------------------- _RetryQueue
def test_retry_queue_orders_by_eligible_at():
    q = _RetryQueue()
    for seq, at in [(1, 5.0), (2, 1.0), (3, 3.0)]:
        q.push(Job(seq=seq, args=(str(seq),), eligible_at=at))
    assert len(q) == 3
    assert q.earliest_at() == 1.0
    assert q.pop_ready(now=10.0).seq == 2
    assert q.pop_ready(now=2.0) is None  # earliest remaining is 3.0
    assert q.pop_ready(now=4.0).seq == 3
    assert q.pop_ready(now=10.0).seq == 1
    assert not q


def test_retry_queue_fifo_within_same_eligibility():
    q = _RetryQueue()
    for seq in range(1, 6):
        q.push(Job(seq=seq, args=(str(seq),), eligible_at=0.0))
    popped = [q.pop_ready(now=1.0).seq for _ in range(5)]
    assert popped == [1, 2, 3, 4, 5]


# ------------------------------------------------------------ _WorkerPool
def test_worker_pool_shutdown_joins_idle_workers():
    import queue

    done = queue.SimpleQueue()
    pool = _WorkerPool(3, lambda job, slot: None, done, prestart=True)
    assert pool.size == 3
    wedged = pool.shutdown(deadline=time.monotonic() + 2.0)
    assert wedged == 0
    assert _pool_threads() == []
