"""Integration tests: the engine running real subprocesses and callables."""

import os
import threading
import time

import pytest

from repro import Options, Parallel, QueueSource, run_parallel
from repro.core.job import JobState


# ------------------------------------------------------------- shell runs
def test_echo_three_inputs():
    summary = Parallel("echo {}", jobs=2).run(["a", "b", "c"])
    assert summary.ok
    assert summary.n_succeeded == 3
    outs = sorted(r.stdout.strip() for r in summary.results)
    assert outs == ["a", "b", "c"]


def test_results_in_input_order_via_sorted():
    summary = Parallel("echo {}", jobs=4).run([str(i) for i in range(10)])
    ordered = summary.sorted_results()
    assert [r.stdout.strip() for r in ordered] == [str(i) for i in range(10)]


def test_exit_codes_captured():
    summary = Parallel("exit {}", jobs=2).run(["0", "1", "7"])
    assert summary.n_failed == 2
    by_arg = {r.args[0]: r.exit_code for r in summary.results}
    assert by_arg == {"0": 0, "1": 1, "7": 7}
    assert summary.exit_code == 2  # GNU Parallel: number of failed jobs


def test_stderr_captured():
    summary = Parallel("echo err-{} 1>&2", jobs=1).run(["x"])
    assert summary.results[0].stderr.strip() == "err-x"


def test_seq_and_slot_rendered():
    summary = Parallel("echo {#}:{%}", jobs=1, keep_order=True).run(["a", "b"])
    outs = [r.stdout.strip() for r in summary.sorted_results()]
    assert outs == ["1:1", "2:1"]


def test_slot_bounded_by_jobs():
    summary = Parallel("echo {%}", jobs=3).run(list(range(20)))
    slots = {int(r.stdout) for r in summary.results}
    assert slots <= {1, 2, 3}


def test_concurrency_actually_happens():
    start = time.time()
    summary = Parallel("sleep 0.3 # {}", jobs=8).run(list(range(8)))
    elapsed = time.time() - start
    assert summary.ok
    assert elapsed < 8 * 0.3  # ran concurrently, not serially


def test_jobs_limit_enforced():
    """With -j1, job spans must not overlap."""
    summary = Parallel("sleep 0.05; echo done", jobs=1).run(["a", "b", "c"])
    spans = sorted((r.start_time, r.end_time) for r in summary.results)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 0.01  # next starts after previous ends


def test_multi_source_cartesian():
    p = Parallel("echo {1}-{2}", jobs=4, keep_order=True)
    summary = p.run_sources([["a", "b"], ["1", "2"]])
    outs = [r.stdout.strip() for r in summary.sorted_results()]
    assert outs == ["a-1", "a-2", "b-1", "b-2"]


def test_multi_source_linked():
    p = Parallel("echo {1}-{2}", jobs=4, keep_order=True, link=True)
    summary = p.run_sources([["a", "b"], ["1", "2"]])
    outs = [r.stdout.strip() for r in summary.sorted_results()]
    assert outs == ["a-1", "b-2"]


def test_dry_run_executes_nothing(tmp_path):
    marker = tmp_path / "marker"
    summary = Parallel(f"touch {marker}", dry_run=True, jobs=1).run(["x"])
    assert summary.ok
    assert not marker.exists()
    assert str(marker) in summary.results[0].stdout


def test_workdir_option(tmp_path):
    summary = Parallel("pwd", jobs=1, workdir=str(tmp_path)).run(["x"])
    assert summary.results[0].stdout.strip() == str(tmp_path)


def test_workdir_dotdotdot_is_per_run_tempdir():
    # --wd '...' = one unique per-run directory, removed after the run.
    summary = Parallel("pwd", jobs=2, workdir="...").run(["a", "b"])
    assert summary.ok
    dirs = {r.stdout.strip() for r in summary.results}
    assert len(dirs) == 1  # shared by the whole run
    wd = dirs.pop()
    assert wd != os.getcwd()
    assert not os.path.exists(wd)  # cleaned up at backend close


def test_env_option():
    summary = Parallel("echo $MYVAR # {}", jobs=1, env={"MYVAR": "hello"}).run(["x"])
    assert summary.results[0].stdout.strip() == "hello"


def test_keep_order_output_stream():
    emitted = []
    p = Parallel(
        "sleep 0.{}; echo {}", jobs=4, keep_order=True,
        output=lambda r, text: emitted.append(text.strip()),
    )
    # Reverse sleep times so completion order is reversed; keep-order must fix it.
    summary = p.run(["3", "2", "1", "0"])
    assert summary.ok
    assert emitted == ["3", "2", "1", "0"]


# ---------------------------------------------------------------- retries
def test_retries_eventually_succeeds(tmp_path):
    flag = tmp_path / "flag"
    # Fails the first time (flag absent), succeeds the second.
    cmd = f"test -f {flag} || {{ touch {flag}; exit 1; }}"
    summary = Parallel(cmd + " # {}", jobs=1, retries=2).run(["x"])
    assert summary.n_succeeded == 1
    assert summary.results[0].attempt == 2


def test_retries_exhausted_counts_failed():
    summary = Parallel("exit 1 # {}", jobs=1, retries=3).run(["x"])
    assert summary.n_failed == 1
    assert summary.results[0].attempt == 3


# ------------------------------------------------------------------- halt
def test_halt_now_fail_1_stops_early():
    # 40 inputs, the 3rd fails; with -j1 and halt now,fail=1 we must not
    # have dispatched all 40.
    inputs = ["0"] * 2 + ["1"] + ["0"] * 37
    summary = Parallel("exit {}", jobs=1, halt="now,fail=1").run(inputs)
    assert summary.halted
    assert summary.n_dispatched < 40
    assert summary.exit_code >= 1


def test_halt_soon_lets_running_finish():
    summary = Parallel("exit {}", jobs=2, halt="soon,fail=1").run(
        ["1", "0", "0", "0", "0", "0"]
    )
    assert summary.halted
    # A failure cannot halt anything until it exits, so jobs may keep
    # starting while the failing subprocess runs — but none may start
    # after its completion has been observed (small epsilon for the
    # post-exit completion-delivery window).
    assert summary.n_dispatched < 6
    fail_end = next(r.end_time for r in summary.results if r.exit_code != 0)
    assert all(r.start_time <= fail_end + 0.05 for r in summary.results)


def test_halt_success_policy():
    summary = Parallel("echo {}", jobs=1, halt="now,success=1").run(list("abcdef"))
    assert summary.halted
    assert summary.n_succeeded == 1


# ---------------------------------------------------------------- timeout
def test_timeout_kills_long_job():
    start = time.time()
    summary = Parallel("sleep 30 # {}", jobs=1, timeout=0.3).run(["x"])
    assert time.time() - start < 10
    assert summary.n_failed == 1
    assert summary.results[0].state == JobState.TIMED_OUT


def test_timeout_spares_quick_job():
    summary = Parallel("echo quick # {}", jobs=1, timeout=5).run(["x"])
    assert summary.ok


# ------------------------------------------------------------------ delay
def test_delay_paces_dispatch():
    summary = Parallel("echo {}", jobs=4, delay=0.15).run(["a", "b", "c"])
    starts = sorted(r.start_time for r in summary.results)
    assert starts[1] - starts[0] >= 0.12
    assert starts[2] - starts[1] >= 0.12


# -------------------------------------------------------------- callables
def test_callable_map():
    assert Parallel(lambda x: int(x) * 2, jobs=4).map([1, 2, 3]) == [2, 4, 6]


def test_callable_multi_arg():
    p = Parallel(lambda a, b: f"{a}+{b}", jobs=2)
    assert p.map([("x", "1"), ("y", "2")]) == ["x+1", "y+2"]


def test_callable_exception_is_failure():
    def boom(x):
        raise ValueError(f"bad {x}")

    summary = Parallel(boom, jobs=1).run(["a"])
    assert summary.n_failed == 1
    assert "ValueError" in summary.results[0].stderr


def test_callable_map_raises_on_failure():
    def sometimes(x):
        if x == "b":
            raise RuntimeError("nope")
        return x

    with pytest.raises(RuntimeError, match="failed"):
        Parallel(sometimes, jobs=2).map(["a", "b", "c"])


def test_callable_value_preserved():
    summary = Parallel(lambda x: {"key": x}, jobs=1).run(["v"])
    assert summary.results[0].value == {"key": "v"}


# ------------------------------------------------------- joblog and resume
def test_joblog_written(tmp_path):
    log = str(tmp_path / "joblog")
    summary = Parallel("echo {}", jobs=2, joblog=log).run(["a", "b"])
    assert summary.ok
    lines = open(log).read().splitlines()
    assert len(lines) == 3  # header + 2 jobs
    assert lines[0].startswith("Seq\t")


def test_resume_skips_completed(tmp_path):
    log = str(tmp_path / "joblog")
    counter = tmp_path / "count"
    cmd = f"echo . >> {counter}; exit {{}}"
    # First run: 'b' fails.
    first = Parallel(cmd, jobs=1, joblog=log).run(["0", "1", "0"])
    assert first.n_failed == 1
    assert len(open(counter).read().splitlines()) == 3
    # Plain --resume: nothing re-runs (failures are NOT retried).
    second = Parallel(cmd, jobs=1, joblog=log, resume=True).run(["0", "1", "0"])
    assert second.n_skipped == 3
    assert second.n_dispatched == 0
    assert len(open(counter).read().splitlines()) == 3


def test_resume_failed_reruns_failures(tmp_path):
    log = str(tmp_path / "joblog")
    first = Parallel("exit {}", jobs=1, joblog=log).run(["0", "1", "0"])
    assert first.n_failed == 1
    second = Parallel("exit 0 # {}", jobs=1, joblog=log, resume_failed=True).run(
        ["0", "1", "0"]
    )
    assert second.n_skipped == 2
    assert second.n_dispatched == 1
    assert second.n_succeeded == 1


# --------------------------------------------------------------- results
def test_results_tree(tmp_path):
    root = str(tmp_path / "res")
    summary = Parallel("echo got-{}", jobs=2, results=root).run(["p", "q"])
    assert summary.ok
    assert open(os.path.join(root, "1", "p", "stdout")).read().strip() == "got-p"
    assert open(os.path.join(root, "1", "q", "stdout")).read().strip() == "got-q"


# ------------------------------------------------------------- streaming
def test_queue_source_streams_through_engine():
    q = QueueSource()
    got = []
    seen = threading.Event()

    def work(x):
        got.append(x)
        seen.set()
        return x

    p = Parallel(work, jobs=2)
    runner = threading.Thread(target=lambda: p.run(q))
    runner.start()
    # Handshake per item: wait until the engine has consumed the previous
    # put before offering the next, proving items stream through a live
    # run rather than being batched up front.
    for i in range(5):
        seen.clear()
        q.put(f"item{i}")
        assert seen.wait(10), f"engine never consumed item{i}"
    q.close()
    runner.join(timeout=10)
    assert not runner.is_alive()
    assert sorted(got) == [f"item{i}" for i in range(5)]


def test_shuf_deterministic_order():
    order1, order2 = [], []
    Parallel(lambda x: order1.append(x), jobs=1, shuf=True, seed=3).run(list("abcdef"))
    Parallel(lambda x: order2.append(x), jobs=1, shuf=True, seed=3).run(list("abcdef"))
    assert order1 == order2
    assert sorted(order1) == list("abcdef")


def test_run_parallel_convenience():
    summary = run_parallel("echo {}", ["z"], jobs=1)
    assert summary.ok and summary.results[0].stdout.strip() == "z"


def test_launch_rate_metric():
    summary = Parallel("true # {}", jobs=8).run(list(range(40)))
    rate = summary.launch_rate(summary.results)
    assert rate > 5  # dozens/s at minimum on any machine
