"""Replacement-string semantics, checked against GNU Parallel's manual."""

import pytest

from repro.core.template import CommandTemplate
from repro.errors import TemplateError


def render(tmpl, *args, seq=1, slot=1):
    return CommandTemplate(tmpl).render(tuple(args), seq=seq, slot=slot)


# ------------------------------------------------------------ basic tokens
def test_plain_substitution():
    assert render("echo {}", "hello") == "echo hello"


def test_extension_removal():
    assert render("gzip {.}", "dir/file.txt") == "gzip dir/file"


def test_extension_removal_only_last_extension():
    assert render("x {.}", "a/b.tar.gz") == "x a/b.tar"


def test_extension_removal_no_extension():
    assert render("x {.}", "plainfile") == "x plainfile"


def test_basename():
    assert render("x {/}", "/path/to/file.txt") == "x file.txt"


def test_dirname():
    assert render("x {//}", "/path/to/file.txt") == "x /path/to"


def test_basename_no_extension():
    assert render("x {/.}", "/path/to/file.txt") == "x file"


def test_seq_token():
    assert render("echo {#}", "a", seq=17) == "echo 17"


def test_slot_token():
    assert render("echo {%}", "a", slot=5) == "echo 5"


def test_gpu_isolation_idiom():
    """The paper's Celeritas idiom: HIP_VISIBLE_DEVICES=$(({%} - 1))."""
    cmd = 'HIP_VISIBLE_DEVICES="$(({%} - 1))" celer-sim {}'
    out = CommandTemplate(cmd).render(("run1.inp.json",), seq=3, slot=7)
    assert out == 'HIP_VISIBLE_DEVICES="$((7 - 1))" celer-sim run1.inp.json'


def test_multiple_tokens_same_command():
    assert (
        render("convert {} {.}.png", "img.jpg") == "convert img.jpg img.png"
    )


# ------------------------------------------------------- positional tokens
def test_positional_tokens():
    out = CommandTemplate("merge {1} {2}").render(("a.txt", "b.txt"))
    assert out == "merge a.txt b.txt"


def test_positional_with_ops():
    out = CommandTemplate("x {2/.} {1//}").render(("/d/a.c", "/e/b.h"))
    assert out == "x b /d"


def test_positional_out_of_range():
    with pytest.raises(TemplateError):
        CommandTemplate("echo {3}").render(("a", "b"))


def test_braces_without_token_left_alone():
    # Shell constructs like ${ts} and {1..12} must not be mangled.
    assert render("echo ${ts} {}", "x") == "echo ${ts} x"
    assert render("echo {1..12} {}", "x") == "echo {1..12} x"


# --------------------------------------------------------- implicit append
def test_implicit_append_when_no_token():
    assert render("echo", "val") == "echo val"


def test_no_implicit_append_when_seq_only():
    # GNU Parallel appends {} only when NO replacement string is present;
    # {#} counts as a replacement string, so nothing is appended here.
    out = render("echo {#}", "val", seq=2)
    assert out == "echo 2"


def test_implicit_append_disabled():
    t = CommandTemplate("echo hi", implicit_append=False)
    assert t.render(("val",)) == "echo hi"


# -------------------------------------------------------------- argv mode
def test_argv_mode_renders_per_word():
    t = CommandTemplate(["cp", "{}", "{.}.bak"])
    assert t.render_argv(("a.txt",)) == ["cp", "a.txt", "a.bak"]


def test_argv_mode_implicit_append():
    t = CommandTemplate(["echo"])
    assert t.render_argv(("x",)) == ["echo", "x"]


def test_argv_mode_render_string_quotes():
    t = CommandTemplate(["echo", "{}"])
    assert t.render(("two words",)) == "echo 'two words'"


def test_render_argv_on_string_template_rejected():
    with pytest.raises(TemplateError):
        CommandTemplate("echo {}").render_argv(("a",))


def test_empty_argv_rejected():
    with pytest.raises(TemplateError):
        CommandTemplate([])


# ----------------------------------------------------------- multi-source
def test_brace_all_args_joined():
    out = CommandTemplate("echo {}").render(("a", "b"))
    assert out == "echo a b"


# ------------------------------------------------------------------ misc
def test_perl_expressions_rejected():
    with pytest.raises(TemplateError):
        CommandTemplate("echo {= s/x/y/ =}")


def test_positional_seq_is_invalid():
    with pytest.raises(TemplateError):
        CommandTemplate("echo {3#}")


def test_uses_slot_flag():
    assert CommandTemplate("echo {%}").uses_slot
    assert not CommandTemplate("echo {}").uses_slot


def test_source_property():
    assert CommandTemplate("echo {}").source == "echo {}"
