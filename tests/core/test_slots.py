"""Slot-pool semantics: the contract behind ``{%}``."""

import threading

import pytest

from repro.core.slots import SlotPool
from repro.errors import OptionsError


def test_capacity_validation():
    with pytest.raises(OptionsError):
        SlotPool(0)


def test_slots_granted_lowest_first():
    pool = SlotPool(4)
    assert [pool.acquire() for _ in range(4)] == [1, 2, 3, 4]


def test_freed_slot_reused_lowest_first():
    pool = SlotPool(3)
    s1, s2, s3 = pool.acquire(), pool.acquire(), pool.acquire()
    pool.release(s2)
    pool.release(s1)
    assert pool.acquire() == 1
    assert pool.acquire() == 2


def test_nonblocking_acquire_returns_none_when_exhausted():
    pool = SlotPool(1)
    pool.acquire()
    assert pool.acquire(blocking=False) is None


def test_release_out_of_range():
    pool = SlotPool(2)
    with pytest.raises(OptionsError):
        pool.release(3)
    with pytest.raises(OptionsError):
        pool.release(0)


def test_double_release_detected():
    pool = SlotPool(2)
    s = pool.acquire()
    pool.release(s)
    with pytest.raises(OptionsError):
        pool.release(s)


def test_in_use_counter():
    pool = SlotPool(3)
    assert pool.in_use == 0
    a = pool.acquire()
    pool.acquire()
    assert pool.in_use == 2
    pool.release(a)
    assert pool.in_use == 1


def test_slot_numbers_never_exceed_capacity_under_contention():
    """With -j8, {%} must always be in 1..8 (GPU isolation relies on it)."""
    pool = SlotPool(8)
    seen = []
    lock = threading.Lock()

    def worker():
        for _ in range(50):
            s = pool.acquire()
            with lock:
                seen.append(s)
            pool.release(s)

    threads = [threading.Thread(target=worker) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen and all(1 <= s <= 8 for s in seen)
