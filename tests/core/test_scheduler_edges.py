"""Scheduler edge cases and run-profile serialization."""

import json
import threading

import pytest

from repro import Parallel, QueueSource
from repro.errors import OptionsError


def test_jobs_zero_with_list_runs_everything_at_once():
    summary = Parallel("sleep 0.2 # {}", jobs=0).run(list(range(6)))
    assert summary.ok
    # All six overlapped: total span well under serial 1.2 s.
    starts = [r.start_time for r in summary.results]
    ends = [r.end_time for r in summary.results]
    assert max(ends) - min(starts) < 1.0


def test_jobs_zero_with_unbounded_source_rejected():
    q = QueueSource()
    q.put("a")
    q.close()

    def unbounded():
        yield from iter(q)

    with pytest.raises(OptionsError):
        Parallel("echo {}", jobs=0).run(unbounded())


def test_halt_with_queue_source_stops_consumption():
    q = QueueSource()
    for i in range(50):
        q.put("1" if i == 2 else "0")
    q.close()
    summary = Parallel("exit {}", jobs=1, halt="now,fail=1").run(iter(q))
    assert summary.halted
    assert summary.n_dispatched < 50


def test_retry_prioritized_over_new_input(tmp_path):
    """A failing job retries before the scheduler moves deep into input."""
    order = []
    lock = threading.Lock()
    attempts = {}

    def work(x):
        with lock:
            order.append(x)
            attempts[x] = attempts.get(x, 0) + 1
            if x == "a" and attempts[x] == 1:
                raise RuntimeError("first attempt fails")

    summary = Parallel(work, jobs=1, retries=2).run(["a", "b", "c", "d"])
    assert summary.ok
    # "a" reappears promptly: retries outrank fresh input, though the one
    # already-prefetched item may legitimately slip ahead of the retry.
    second_a = order.index("a", 1)
    assert second_a <= 3
    assert order.count("a") == 2


def test_results_with_keep_order(tmp_path):
    root = str(tmp_path / "res")
    emitted = []
    p = Parallel("echo {}", jobs=4, keep_order=True, results=root,
                 output=lambda r, t: emitted.append(t.strip()))
    summary = p.run(["z", "y", "x"])
    assert summary.ok
    assert emitted == ["z", "y", "x"]
    assert (tmp_path / "res" / "1" / "y" / "stdout").exists()


def test_summary_to_dict_and_json(tmp_path):
    summary = Parallel("echo {}", jobs=2).run(["a", "b"])
    d = summary.to_dict()
    assert d["n_succeeded"] == 2
    assert [r["seq"] for r in d["results"]] == [1, 2]
    assert d["results"][0]["state"] == "succeeded"
    path = str(tmp_path / "profile.json")
    summary.write_json(path)
    loaded = json.load(open(path))
    assert loaded == d


def test_profile_timeline_is_consistent():
    summary = Parallel("sleep 0.05 # {}", jobs=2).run(list(range(4)))
    d = summary.to_dict()
    for r in d["results"]:
        assert r["end_time"] >= r["start_time"]
        assert r["runtime"] == pytest.approx(r["end_time"] - r["start_time"])


def test_stdout_stream_output(capsys):
    import sys

    summary = Parallel("echo visible-{}", jobs=1, output=sys.stdout).run(["x"])
    assert summary.ok
    assert "visible-x" in capsys.readouterr().out


def test_emit_callback_receives_result_and_text():
    seen = []
    Parallel("echo {}", jobs=1, output=lambda r, t: seen.append((r.seq, t))).run(["q"])
    assert seen == [(1, "q\n")]
