"""Extended GNU Parallel options: -j forms, %-timeout, --colsep, --load."""

import time

import pytest

from repro import Options, Parallel
from repro.core.job import JobState
from repro.core.options import parse_jobs, parse_timeout
from repro.errors import OptionsError


# ------------------------------------------------------------- parse_jobs
def test_parse_jobs_int_passthrough():
    assert parse_jobs(4) == 4
    assert parse_jobs(0) == 0


def test_parse_jobs_string_int():
    assert parse_jobs("8") == 8


def test_parse_jobs_plus_minus():
    assert parse_jobs("+2", cores=16) == 18
    assert parse_jobs("-4", cores=16) == 12
    assert parse_jobs("-100", cores=16) == 1  # floor at 1


def test_parse_jobs_percentage():
    assert parse_jobs("50%", cores=16) == 8
    assert parse_jobs("200%", cores=16) == 32
    assert parse_jobs("1%", cores=16) == 1  # ceil, min 1


@pytest.mark.parametrize("bad", ["x", "-1%", "0%", "++2", ""])
def test_parse_jobs_rejects_garbage(bad):
    with pytest.raises(OptionsError):
        parse_jobs(bad, cores=8)


def test_parse_jobs_negative_int_rejected():
    with pytest.raises(OptionsError):
        parse_jobs(-3)


def test_options_accepts_jobs_string():
    opts = Options(jobs="200%")
    assert isinstance(opts.jobs, int) and opts.jobs >= 2


# ----------------------------------------------------------- parse_timeout
def test_parse_timeout_none():
    assert parse_timeout(None) == (None, None)


def test_parse_timeout_seconds():
    assert parse_timeout(5) == (5.0, None)
    assert parse_timeout("2.5") == (2.5, None)


def test_parse_timeout_percent():
    assert parse_timeout("200%") == (None, 2.0)


@pytest.mark.parametrize("bad", [0, -1, "0%", "-5%", "abc"])
def test_parse_timeout_rejects(bad):
    with pytest.raises(OptionsError):
        parse_timeout(bad)


def test_percentage_timeout_kills_outlier_job():
    """--timeout 300%: jobs 10x slower than the median are killed."""
    # 6 quick jobs establish the median; the 'slow' job then exceeds 300%.
    inputs = ["0.05"] * 6 + ["5"]
    summary = Parallel("sleep {}", jobs=1, timeout="300%").run(inputs)
    states = [r.state for r in summary.sorted_results()]
    assert states[:6] == [JobState.SUCCEEDED] * 6
    assert states[6] == JobState.TIMED_OUT


def test_percentage_timeout_inactive_below_three_samples():
    summary = Parallel("sleep 0.05 # {}", jobs=1, timeout="100%").run(["a", "b"])
    assert summary.ok  # no median yet -> no timeout applied


# ----------------------------------------------------------------- colsep
def test_colsep_splits_line_into_positional_args():
    opts_out = []
    p = Parallel(
        lambda a, b, c: opts_out.append((a, b, c)), jobs=1, colsep=r"\t"
    )
    p.run(["x\ty\tz", "1\t2\t3"])
    assert opts_out == [("x", "y", "z"), ("1", "2", "3")]


def test_colsep_with_shell_template():
    summary = Parallel("echo {2}-{1}", jobs=1, keep_order=True, colsep=",").run(
        ["a,b", "c,d"]
    )
    assert [r.stdout.strip() for r in summary.sorted_results()] == ["b-a", "d-c"]


def test_colsep_regex_validated():
    with pytest.raises(OptionsError):
        Options(colsep="[unclosed")


def test_colsep_leaves_multi_source_groups_alone():
    got = []
    p = Parallel(lambda *a: got.append(a), jobs=1, colsep=",")
    p.run([("a,b", "c")])  # already a 2-source group: untouched
    assert got == [("a,b", "c")]


# ------------------------------------------------------------------- load
def test_load_throttle_blocks_until_load_drops():
    load_values = iter([9.0, 9.0, 0.5])  # two high readings, then OK
    last = [0.5]
    calls = [0]

    def probe():
        calls[0] += 1
        last[0] = next(load_values, last[0])
        return last[0]

    opts = Options(jobs=1, max_load=1.0, load_probe=probe)
    start = time.time()
    summary = Parallel("echo {}", options=opts).run(["a"])
    assert summary.ok
    # Dispatch stalled until the third probe said OK; the exponential
    # backoff waits 5 ms + 10 ms between probes before that.
    assert calls[0] >= 3
    assert time.time() - start >= 0.014


def test_load_validation():
    with pytest.raises(OptionsError):
        Options(max_load=0)


# ------------------------------------------------------------------ quote
def test_quote_protects_hostile_arguments(tmp_path):
    marker = tmp_path / "pwned"
    hostile = f"x; touch {marker}"
    unsafe = Parallel("echo {}", jobs=1).run([hostile])
    assert marker.exists()  # without -q the shell runs the injected command
    marker.unlink()
    safe = Parallel("echo {}", jobs=1, quote=True).run([hostile])
    assert not marker.exists()
    assert safe.results[0].stdout.strip() == hostile


def test_quote_preserves_spaces():
    summary = Parallel("echo {}", jobs=1, quote=True).run(["two words"])
    assert summary.results[0].stdout.strip() == "two words"


def test_quote_leaves_seq_slot_plain():
    summary = Parallel("echo {#} {%} {}", jobs=1, quote=True).run(["a b"])
    assert summary.results[0].stdout.strip() == "1 1 a b"


# ---------------------------------------------------------------- max_args
def test_max_args_packs_arguments():
    summary = Parallel("echo {}", jobs=1, keep_order=True, max_args=3).run(
        ["a", "b", "c", "d", "e"]
    )
    outs = [r.stdout.strip() for r in summary.sorted_results()]
    assert outs == ["a b c", "d e"]
    assert summary.n_dispatched == 2


def test_max_args_positional_tokens():
    summary = Parallel("echo {2}-{1}", jobs=1, keep_order=True, max_args=2).run(
        ["a", "b", "c", "d"]
    )
    outs = [r.stdout.strip() for r in summary.sorted_results()]
    assert outs == ["b-a", "d-c"]


def test_max_args_with_callable():
    got = []
    Parallel(lambda *a: got.append(a), jobs=1, max_args=2).run(["1", "2", "3"])
    assert got == [("1", "2"), ("3",)]


def test_max_args_validation():
    with pytest.raises(OptionsError):
        Options(max_args=0)


def test_max_args_percent_halt_total_adjusted():
    # 6 inputs packed in 2s -> 3 jobs; halting at fail=34% needs just one.
    summary = Parallel("exit 1 # {}", jobs=1, max_args=2,
                       halt="soon,fail=34%").run(["a"] * 6)
    assert summary.halted
