"""pidfd reap-ladder tests: the fast leg, and every rung of the fallback.

The reaper collects exit statuses either via ``os.pidfd_open`` + the
shared selector (one epoll wakeup per exit; Linux >= 5.3) or by polling
``waitpid(WNOHANG)`` on processes whose pipes have closed.  The ladder is
probed at call time through ``os``, so these tests force each rung by
monkeypatching ``os.pidfd_open`` and assert results are identical on all
of them.
"""

import errno
import os
import platform
import time

import pytest

from repro.core.backends.reaper import PipeReaper, pidfd_supported
from repro.core.backends.spawn import SpawnLauncher, spawn_supported

pytestmark = pytest.mark.skipif(
    not spawn_supported(), reason="posix_spawn unavailable on this platform"
)


def _kernel_at_least(major: int, minor: int) -> bool:
    if platform.system() != "Linux":
        return False
    try:
        parts = platform.release().split(".")
        return (int(parts[0]), int(parts[1])) >= (major, minor)
    except (ValueError, IndexError):
        return False


def _run_batch(reaper, launcher, commands):
    """Spawn every command through the reaper; return comparable results."""
    handles = []
    for command in commands:
        pid, out_r, err_r = launcher.spawn(command)
        handles.append(reaper.register(pid, out_r, err_r))
    results = []
    for handle in handles:
        assert handle.wait(10), "reaper failed to collect a job"
        results.append(
            (handle.returncode, bytes(handle.stdout_buf), bytes(handle.stderr_buf))
        )
    return results


BATCH = [
    "echo one",
    "echo two-err >&2; exit 3",
    "printf no-newline",
    "kill -TERM $$",
]
EXPECTED = [
    (0, b"one\n", b""),
    (3, b"", b"two-err\n"),
    (0, b"no-newline", b""),
    (-15, b"", b""),
]


@pytest.fixture
def launcher():
    launcher = SpawnLauncher()
    yield launcher
    launcher.close()


# ------------------------------------------------------------- pidfd leg
@pytest.mark.skipif(
    not _kernel_at_least(5, 3), reason="pidfd_open needs Linux >= 5.3"
)
@pytest.mark.skipif(
    not pidfd_supported(), reason="pidfd_open denied (seccomp?)"
)
def test_pidfd_leg_used_and_correct(launcher):
    reaper = PipeReaper()
    try:
        assert _run_batch(reaper, launcher, BATCH) == EXPECTED
        assert reaper.pidfd_enabled, "kernel supports pidfd but leg unused"
    finally:
        reaper.close()


@pytest.mark.skipif(
    not _kernel_at_least(5, 3), reason="pidfd_open needs Linux >= 5.3"
)
@pytest.mark.skipif(
    not pidfd_supported(), reason="pidfd_open denied (seccomp?)"
)
def test_pidfd_collects_without_polling_delay(launcher):
    # One exit must land well inside a zombie-poll period: with pidfds
    # the wakeup is the exit itself, not a poll tick.
    reaper = PipeReaper()
    try:
        pid, out_r, err_r = launcher.spawn("true")
        handle = reaper.register(pid, out_r, err_r)
        assert handle.wait(10)
        assert handle.returncode == 0
        assert reaper.pidfd_enabled
    finally:
        reaper.close()


# -------------------------------------------------------- fallback rungs
def test_fallback_when_pidfd_open_missing(monkeypatch, launcher):
    if hasattr(os, "pidfd_open"):
        monkeypatch.delattr(os, "pidfd_open")
    reaper = PipeReaper()
    try:
        assert _run_batch(reaper, launcher, BATCH) == EXPECTED
        assert not reaper.pidfd_enabled
    finally:
        reaper.close()


def test_fallback_when_pidfd_open_raises(monkeypatch, launcher):
    def denied(pid, flags=0):
        raise OSError(errno.ENOSYS, "pidfd_open not available")

    monkeypatch.setattr(os, "pidfd_open", denied, raising=False)
    reaper = PipeReaper()
    try:
        assert _run_batch(reaper, launcher, BATCH) == EXPECTED
        # The first failure disables the leg for the whole reaper...
        assert not reaper.pidfd_enabled
    finally:
        reaper.close()


def test_first_oserror_disables_leg_permanently(monkeypatch, launcher):
    calls = []

    def denied(pid, flags=0):
        calls.append(pid)
        raise OSError(errno.EPERM, "seccomp says no")

    monkeypatch.setattr(os, "pidfd_open", denied, raising=False)
    reaper = PipeReaper()
    try:
        assert _run_batch(reaper, launcher, ["echo a", "echo b", "echo c"]) == [
            (0, b"a\n", b""), (0, b"b\n", b""), (0, b"c\n", b""),
        ]
        # ENOSYS/EPERM are process-wide conditions: probed exactly once.
        assert len(calls) == 1
    finally:
        reaper.close()


def test_forced_fallback_matches_pidfd_results(launcher):
    # Same workload through both legs of a real (unmonkeypatched) ladder.
    forced = PipeReaper(use_pidfd=False)
    auto = PipeReaper()
    try:
        assert (
            _run_batch(forced, launcher, BATCH)
            == _run_batch(auto, launcher, BATCH)
            == EXPECTED
        )
        assert not forced.pidfd_enabled
    finally:
        forced.close()
        auto.close()


def test_on_done_callback_fires_after_completion(launcher):
    done = []
    reaper = PipeReaper()
    try:
        pid, out_r, err_r = launcher.spawn("echo cb")
        handle = reaper.register(
            pid, out_r, err_r,
            on_done=lambda h: done.append((h.done, h.returncode)),
        )
        assert handle.wait(10)
        deadline = time.time() + 2.0
        while not done and time.time() < deadline:
            time.sleep(0.005)
        # The callback runs after the event is set, with the status final.
        assert done == [(True, 0)]
    finally:
        reaper.close()


def test_broken_on_done_callback_does_not_kill_loop(launcher):
    def boom(_handle):
        raise RuntimeError("sink bug")

    reaper = PipeReaper()
    try:
        pid, out_r, err_r = launcher.spawn("echo x")
        handle = reaper.register(pid, out_r, err_r, on_done=boom)
        assert handle.wait(10)
        # The loop survived the callback's exception and still collects.
        pid, out_r, err_r = launcher.spawn("echo y")
        again = reaper.register(pid, out_r, err_r)
        assert again.wait(10)
        assert bytes(again.stdout_buf) == b"y\n"
        assert reaper.alive
    finally:
        reaper.close()
