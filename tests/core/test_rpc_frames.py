"""Control-plane frame protocol: codec, batching, interning, counters.

The sharded dispatch pool (``repro.core.backends.pool``) amortizes its
per-job IPC by packing spawn/result/kill records into length-prefixed
struct frames.  These tests pin the codec (exact round-trips, including
awkward strings), the batching mechanics (flush on size, flush on idle
deadline, batch=1 degenerating to per-job shipping), template interning
parity (worker-side render == parent-side render), and the stats
counters the RUN_END summary reports.
"""

import os
import pickle

import pytest

from repro.core.backends.pool import (
    FK_KILL,
    FK_RESULT,
    FK_SPAWN,
    FRAME_MAGIC,
    DispatcherPool,
    iter_result_records,
    iter_spawn_records,
    pack_frame,
    pack_result_record,
    pack_spawn_record,
    pool_supported,
)

pytestmark = pytest.mark.skipif(
    not pool_supported(), reason="sharded dispatch requires POSIX"
)


# ------------------------------------------------------------------- codec
def test_spawn_record_roundtrip_raw_command():
    cmds = [
        "echo hi",
        "sh -c 'printf \"%s\\n\" \"a b\"'",
        "echo ü-ñ-字",
        "echo multi\nline",
        "",
    ]
    records = [
        pack_spawn_record(token=i + 1, seq=10 * i, slot=i, command=c)
        for i, c in enumerate(cmds)
    ]
    frame = pack_frame(FK_SPAWN, records)
    out = list(iter_spawn_records(frame))
    assert [(t, s, sl) for t, s, sl, _, _ in out] == [
        (i + 1, 10 * i, i) for i in range(len(cmds))
    ]
    assert [c for _, _, _, c, _ in out] == cmds
    assert all(a is None for _, _, _, _, a in out)


def test_spawn_record_roundtrip_interned_args():
    argsets = [
        ("a",),
        ("a b", "c"),
        (),
        ("ü\n", "tab\there"),
    ]
    records = [
        pack_spawn_record(token=i, seq=i, slot=0, args=a)
        for i, a in enumerate(argsets)
    ]
    out = list(iter_spawn_records(pack_frame(FK_SPAWN, records)))
    assert [a for _, _, _, _, a in out] == argsets
    assert all(c is None for _, _, _, c, _ in out)


def test_spawn_record_surrogates_roundtrip():
    # os.fsdecode of a non-UTF8 filename yields lone surrogates; the
    # frame codec must carry them without raising.
    weird = os.fsdecode(b"f\xffile")
    (rec,) = list(
        iter_spawn_records(
            pack_frame(FK_SPAWN, [pack_spawn_record(1, 1, 0, command=weird)])
        )
    )
    assert rec[3] == weird


def test_result_record_roundtrip():
    rec = pack_result_record(
        token=7, rc=-9, out=b"std\x00out", err=b"", start=1.5, end=2.25,
        spawn_dur=0.002, pid=4242,
    )
    frame = pack_frame(FK_RESULT, [rec])
    ((token, rc, out, err, start, end, spawn_dur, pid),) = list(
        iter_result_records(frame)
    )
    assert (token, rc, out, err) == (7, -9, b"std\x00out", b"")
    assert (start, end, spawn_dur, pid) == (1.5, 2.25, 0.002, 4242)


def test_frame_magic_disambiguates_from_pickle():
    # Both message kinds share one pipe; the first byte must tell them
    # apart.  Pickle protocol >= 2 always begins 0x80.
    frame = pack_frame(FK_KILL, [])
    assert frame[0] == FRAME_MAGIC
    for proto in (2, pickle.HIGHEST_PROTOCOL):
        assert pickle.dumps(("kill_all",), proto)[0] == 0x80
        assert pickle.dumps(("kill_all",), proto)[0] != FRAME_MAGIC


# ------------------------------------------------------------ batched pool
def test_batched_pool_runs_and_amortizes():
    pool = DispatcherPool(2, batch=8)
    pool.start()
    try:
        import threading

        replies = {}

        def one(i):
            replies[i] = pool.run(f"echo batched-{i}")

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(20)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.kind == "done" and r.returncode == 0
                   for r in replies.values())
        assert sorted(r.stdout for r in replies.values()) == sorted(
            f"batched-{i}\n".encode() for i in range(20)
        )
        stats = pool.stats()
        assert stats["batch"] == 8
        assert stats["jobs_sent"] == 20
        assert stats["results_recv"] == 20
        # Concurrent submission must have coalesced at least some frames.
        assert stats["frames_sent"] <= stats["jobs_sent"]
        assert stats["jobs_per_frame"] >= 1.0
    finally:
        pool.close()


def test_batch_one_ships_per_job_frames():
    pool = DispatcherPool(1, batch=1)
    pool.start()
    try:
        for i in range(5):
            assert pool.run(f"echo solo-{i}").returncode == 0
        stats = pool.stats()
        assert stats["frames_sent"] == stats["jobs_sent"] == 5
        assert stats["jobs_per_frame"] == 1.0
    finally:
        pool.close()


def test_idle_deadline_flushes_partial_frame():
    # One lone job with a huge batch size must still ship (and finish)
    # via the ~200 µs idle flusher, not wait for a full frame.
    pool = DispatcherPool(1, batch=64)
    pool.start()
    try:
        reply = pool.run("echo lonely", timeout=10)
        assert reply.kind == "done"
        assert reply.stdout == b"lonely\n"
        assert not reply.timed_out
    finally:
        pool.close()


def test_timeout_kill_under_batching():
    pool = DispatcherPool(1, batch=16)
    pool.start()
    try:
        reply = pool.run("sleep 30", timeout=0.3)
        assert reply.timed_out
        assert reply.returncode != 0
    finally:
        pool.close()


def test_interned_template_renders_worker_side():
    from repro.core.template import CommandTemplate

    tmpl = CommandTemplate("echo tpl-{} s{#} l{%}")
    pool = DispatcherPool(1, batch=4)
    pool.start()
    try:
        pool.intern_template(tmpl.source, quote=False)
        assert pool.interned
        for seq, arg in ((3, "alpha"), (9, "two words")):
            parent_render = tmpl.render((arg,), seq=seq, slot=1, quote=False)
            reply = pool.run(
                parent_render, args=(arg,), seq=seq, slot=1, timeout=10
            )
            assert reply.kind == "done"
            # Worker-side render must equal the parent's render.
            expected = (
                parent_render.replace("echo ", "", 1) + "\n"
            ).encode()
            assert reply.stdout == expected
        assert pool.stats()["interned"] is True
    finally:
        pool.close()


def test_uninterned_args_fall_back_to_raw_command():
    # args= without a prior intern_template must not break: the raw
    # command string still travels in the record.
    pool = DispatcherPool(1, batch=4)
    pool.start()
    try:
        reply = pool.run("echo raw-7", args=("7",), seq=1, slot=0, timeout=10)
        assert reply.kind == "done"
        assert reply.stdout == b"raw-7\n"
    finally:
        pool.close()
