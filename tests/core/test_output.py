"""Output sequencing (--keep-order) and tagging (--tag)."""

from repro.core.job import JobResult, JobState
from repro.core.options import Options
from repro.core.output import OutputSequencer, format_output


def result(seq, stdout="", args=("x",), slot=1):
    return JobResult(
        seq=seq, args=args, command="c", exit_code=0, stdout=stdout,
        start_time=0, end_time=1, slot=slot, state=JobState.SUCCEEDED,
    )


def collect():
    out = []
    return out, lambda r, text: out.append((r.seq, text))


def test_unordered_emits_immediately():
    out, emit = collect()
    seq = OutputSequencer(emit, Options(keep_order=False))
    seq.push(result(3, "three\n"))
    seq.push(result(1, "one\n"))
    assert [s for s, _ in out] == [3, 1]


def test_keep_order_holds_until_contiguous():
    out, emit = collect()
    seq = OutputSequencer(emit, Options(keep_order=True))
    seq.push(result(2, "two\n"))
    assert out == []
    assert seq.pending == 1
    seq.push(result(1, "one\n"))
    assert [s for s, _ in out] == [1, 2]
    assert seq.pending == 0


def test_keep_order_long_scramble():
    out, emit = collect()
    seq = OutputSequencer(emit, Options(keep_order=True))
    for s in [5, 3, 1, 4, 2, 7, 6]:
        seq.push(result(s))
    assert [s for s, _ in out] == [1, 2, 3, 4, 5, 6, 7]


def test_keep_order_with_skipped_seqs():
    out, emit = collect()
    seq = OutputSequencer(emit, Options(keep_order=True))
    seq.push(result(3))
    seq.skip(1)
    seq.skip(2)
    assert [s for s, _ in out] == [3]


def test_skip_after_later_push():
    out, emit = collect()
    seq = OutputSequencer(emit, Options(keep_order=True))
    seq.push(result(2))
    assert out == []
    seq.skip(1)
    assert [s for s, _ in out] == [2]


def test_format_plain_passthrough():
    assert format_output(result(1, "hello\n"), Options()) == "hello\n"


def test_format_tag_prefixes_every_line():
    opts = Options(tag=True)
    text = format_output(result(1, "l1\nl2\n", args=("inputA",)), opts)
    assert text == "inputA\tl1\ninputA\tl2\n"


def test_format_tag_multi_args_tab_joined():
    opts = Options(tag=True)
    text = format_output(result(1, "x\n", args=("a", "b")), opts)
    assert text == "a\tb\tx\n"


def test_format_tagstring_template():
    opts = Options(tagstring="job{#}")
    text = format_output(result(4, "out\n"), opts)
    assert text == "job4\tout\n"


def test_format_tagstring_with_input_token():
    opts = Options(tagstring="<{}>")
    text = format_output(result(1, "out\n", args=("f.txt",)), opts)
    assert text == "<f.txt>\tout\n"


def test_format_tag_empty_output():
    assert format_output(result(1, ""), Options(tag=True)) == ""
